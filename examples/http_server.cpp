// A miniature web server on the full protocol inventory: ARP resolution,
// then HTTP/1.0 over the user-level TCP library, over Ethernet with DPF
// demultiplexing — the "web server" workload the paper's scheduling
// discussion brings up (Section VI-4).
//
// Build & run:  ./build/examples/http_server
#include <cstdio>
#include <cstring>

#include "proto/arp.hpp"
#include "proto/eth_link.hpp"
#include "proto/http.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"

using namespace ash;
using proto::ArpService;
using proto::EthLink;
using proto::HttpResponse;
using proto::Ipv4Addr;
using proto::MacAddr;
using proto::TcpConfig;
using proto::TcpConnection;
using sim::Process;
using sim::Task;
using sim::us;

namespace {

const Ipv4Addr kServerIp = Ipv4Addr::of(192, 168, 7, 1);
const Ipv4Addr kClientIp = Ipv4Addr::of(192, 168, 7, 2);
const MacAddr kServerMac{{{2, 0, 0, 0, 7, 1}}};
const MacAddr kClientMac{{{2, 0, 0, 0, 7, 2}}};

TcpConfig tcp_cfg(bool client, std::uint16_t client_port) {
  TcpConfig c;
  c.local_ip = client ? kClientIp : kServerIp;
  c.remote_ip = client ? kServerIp : kClientIp;
  c.local_port = client ? client_port : 80;
  c.remote_port = client ? 80 : client_port;
  c.iss = client ? 100 : 900;
  c.mss = 1456;
  return c;
}

/// Each connection gets its own DPF endpoint, discriminated by the
/// client's ephemeral port (several links on one device must not shadow
/// each other — first-match DPF priority).
EthLink::Config server_link_cfg(std::uint16_t client_port) {
  EthLink::Config cfg{kServerMac, kClientMac};
  cfg.extra_atoms = {dpf::atom_be16(34, client_port)};  // TCP source port
  return cfg;
}

EthLink::Config client_link_cfg(const MacAddr& server_mac,
                                std::uint16_t client_port) {
  EthLink::Config cfg{kClientMac, server_mac};
  cfg.extra_atoms = {dpf::atom_be16(36, client_port)};  // TCP dest port
  return cfg;
}

}  // namespace

int main() {
  sim::Simulator simulator;
  sim::Node& server = simulator.add_node("server");
  sim::Node& client = simulator.add_node("client");
  net::EthernetDevice nic_s(server), nic_c(client);
  nic_s.connect(nic_c);

  int requests_served = 0;
  bool page_ok = false;

  server.kernel().spawn("httpd", [&](Process& self) -> Task {
    // Answer ARP while the HTTP side comes up.
    ArpService arp(self, nic_s, {kServerMac, kServerIp});
    co_await arp.serve(us(3000.0));

    // One connection per request, HTTP/1.0 style.
    for (int i = 0; i < 2; ++i) {
      const auto client_port = static_cast<std::uint16_t>(4000 + i);
      EthLink link(self, nic_s, server_link_cfg(client_port));
      TcpConnection conn(link, tcp_cfg(false, client_port));
      const bool accepted = co_await conn.accept();
      if (!accepted) co_return;
      const auto path = co_await proto::http_serve_one(
          conn, [](const std::string& p)
                    -> std::optional<std::vector<std::uint8_t>> {
            if (p == "/motd") {
              const char* body =
                  "ASHs: the fast path belongs to the application.\n";
              return std::vector<std::uint8_t>(body,
                                               body + std::strlen(body));
            }
            return std::nullopt;
          });
      if (path.has_value()) {
        ++requests_served;
        std::printf("[server] served GET %s\n", path->c_str());
      }
    }
  });

  client.kernel().spawn("client", [&](Process& self) -> Task {
    co_await self.sleep_for(us(500.0));
    // Resolve the server's MAC first (the full boot story).
    ArpService arp(self, nic_c, {kClientMac, kClientIp});
    const auto mac = co_await arp.resolve(kServerIp, us(20000.0));
    if (!mac.has_value()) {
      std::printf("[client] ARP resolution failed\n");
      co_return;
    }
    std::printf("[client] ARP: %u.%u.%u.%u is at "
                "%02x:%02x:%02x:%02x:%02x:%02x\n",
                kServerIp.value >> 24 & 0xff, kServerIp.value >> 16 & 0xff,
                kServerIp.value >> 8 & 0xff, kServerIp.value & 0xff,
                mac->bytes[0], mac->bytes[1], mac->bytes[2], mac->bytes[3],
                mac->bytes[4], mac->bytes[5]);

    int i = 0;
    for (const char* path : {"/motd", "/missing"}) {
      const auto client_port = static_cast<std::uint16_t>(4000 + i++);
      EthLink link(self, nic_c, client_link_cfg(*mac, client_port));
      TcpConnection conn(link, tcp_cfg(true, client_port));
      const bool connected = co_await conn.connect();
      if (!connected) co_return;
      const auto resp = co_await proto::http_get(conn, path);
      if (resp.has_value()) {
        std::printf("[client] GET %s -> %d %s (%zu bytes)\n", path,
                    resp->status, resp->reason.c_str(), resp->body.size());
        if (resp->status == 200) {
          page_ok = std::string(resp->body.begin(), resp->body.end())
                        .find("fast path") != std::string::npos;
        }
      }
    }
  });

  simulator.run(us(3e6));
  std::printf("\nserved %d request(s); page content %s\n", requests_served,
              page_ok ? "verified" : "NOT verified");
  return requests_served == 2 && page_ok ? 0 : 1;
}
