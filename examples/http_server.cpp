// A miniature web server on the full protocol inventory: ARP resolution,
// then HTTP/1.0 over TCP, over Ethernet with DPF demultiplexing — the
// "web server" workload the paper's scheduling discussion brings up
// (Section VI-4).
//
// The server side runs on the event-driven TcpEngine: ONE link binding,
// one listener on port 80, per-connection TCBs spawned by inbound SYNs —
// the c10k shape, scaled down to two requests. The client side keeps the
// paper-shaped blocking TcpConnection library, so the two TCP
// implementations interoperate over the wire in this example.
//
// Build & run:  ./build/examples/http_server
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>

#include "proto/arp.hpp"
#include "proto/eth_link.hpp"
#include "proto/http.hpp"
#include "proto/tcp_engine.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"

using namespace ash;
using proto::ArpService;
using proto::EthLink;
using proto::HttpResponse;
using proto::Ipv4Addr;
using proto::MacAddr;
using proto::TcpConfig;
using proto::TcpConnection;
using proto::TcpEngine;
using sim::Process;
using sim::Task;
using sim::us;

namespace {

const Ipv4Addr kServerIp = Ipv4Addr::of(192, 168, 7, 1);
const Ipv4Addr kClientIp = Ipv4Addr::of(192, 168, 7, 2);
const MacAddr kServerMac{{{2, 0, 0, 0, 7, 1}}};
const MacAddr kClientMac{{{2, 0, 0, 0, 7, 2}}};

TcpConfig client_tcp_cfg(std::uint16_t client_port) {
  TcpConfig c;
  c.local_ip = kClientIp;
  c.remote_ip = kServerIp;
  c.local_port = client_port;
  c.remote_port = 80;
  c.iss = 100;
  c.mss = 1456;
  return c;
}

/// Each client connection gets its own DPF endpoint, discriminated by its
/// ephemeral port (several links on one device must not shadow each
/// other — first-match DPF priority).
EthLink::Config client_link_cfg(const MacAddr& server_mac,
                                std::uint16_t client_port) {
  EthLink::Config cfg{kClientMac, server_mac};
  cfg.extra_atoms = {dpf::atom_be16(36, client_port)};  // TCP dest port
  return cfg;
}

std::optional<std::vector<std::uint8_t>> page(const std::string& p) {
  if (p == "/motd") {
    const char* body = "ASHs: the fast path belongs to the application.\n";
    return std::vector<std::uint8_t>(body, body + std::strlen(body));
  }
  return std::nullopt;
}

}  // namespace

int main() {
  sim::Simulator simulator;
  sim::Node& server = simulator.add_node("server");
  sim::Node& client = simulator.add_node("client");
  net::EthernetDevice nic_s(server), nic_c(client);
  nic_s.connect(nic_c);

  int requests_served = 0;
  bool page_ok = false;

  server.kernel().spawn("httpd", [&](Process& self) -> Task {
    // One link claims every IPv4 frame for this node; the engine demuxes
    // flows by port. (The per-connection DPF endpoints of the blocking
    // design are gone — that is the point.)
    EthLink link(self, nic_s, EthLink::Config{kServerMac, kClientMac});

    TcpEngine::Config ecfg;
    ecfg.local_ip = kServerIp;
    ecfg.mss = 1456;
    TcpEngine engine(link, ecfg);

    std::unordered_map<TcpEngine::ConnId, std::string> requests;
    bool done = false;

    TcpEngine::ListenConfig lc;
    lc.callbacks.on_readable = [&](TcpEngine::ConnId id) {
      std::string& acc = requests[id];
      std::uint8_t buf[512];
      for (;;) {
        const std::size_t n = engine.read(id, buf, sizeof buf);
        if (n == 0) break;
        acc.append(reinterpret_cast<const char*>(buf), n);
      }
      if (!proto::http_request_complete(acc)) return;
      const auto path = proto::http_parse_request(acc);
      std::optional<std::vector<std::uint8_t>> content;
      if (path.has_value()) content = page(*path);
      const std::string wire = proto::http_format_response(path, content);
      engine.write(id, {reinterpret_cast<const std::uint8_t*>(wire.data()),
                        wire.size()});
      engine.close(id);  // HTTP/1.0: response framed by FIN
      requests.erase(id);
      if (path.has_value()) {
        ++requests_served;
        std::printf("[server] served GET %s\n", path->c_str());
      }
    };
    lc.callbacks.on_closed = [&](TcpEngine::ConnId id) {
      requests.erase(id);
      if (requests_served >= 2 && engine.open_connections() <= 1) {
        done = true;  // both requests answered and torn all the way down
      }
    };
    engine.listen(80, lc);

    // Answer ARP while the engine's SYN queue absorbs early clients.
    ArpService arp(self, nic_s, {kServerMac, kServerIp});
    co_await arp.serve(us(3000.0));

    co_await engine.run(done, self.node().now() + us(2.5e6));
  });

  client.kernel().spawn("client", [&](Process& self) -> Task {
    co_await self.sleep_for(us(500.0));
    // Resolve the server's MAC first (the full boot story).
    ArpService arp(self, nic_c, {kClientMac, kClientIp});
    const auto mac = co_await arp.resolve(kServerIp, us(20000.0));
    if (!mac.has_value()) {
      std::printf("[client] ARP resolution failed\n");
      co_return;
    }
    std::printf("[client] ARP: %u.%u.%u.%u is at "
                "%02x:%02x:%02x:%02x:%02x:%02x\n",
                kServerIp.value >> 24 & 0xff, kServerIp.value >> 16 & 0xff,
                kServerIp.value >> 8 & 0xff, kServerIp.value & 0xff,
                mac->bytes[0], mac->bytes[1], mac->bytes[2], mac->bytes[3],
                mac->bytes[4], mac->bytes[5]);

    int i = 0;
    for (const char* path : {"/motd", "/missing"}) {
      const auto client_port = static_cast<std::uint16_t>(4000 + i++);
      EthLink link(self, nic_c, client_link_cfg(*mac, client_port));
      TcpConnection conn(link, client_tcp_cfg(client_port));
      const bool connected = co_await conn.connect();
      if (!connected) co_return;
      const auto resp = co_await proto::http_get(conn, path);
      if (resp.has_value()) {
        std::printf("[client] GET %s -> %d %s (%zu bytes)\n", path,
                    resp->status, resp->reason.c_str(), resp->body.size());
        if (resp->status == 200) {
          page_ok = std::string(resp->body.begin(), resp->body.end())
                        .find("fast path") != std::string::npos;
        }
      }
    }
  });

  simulator.run(us(3e6));
  std::printf("\nserved %d request(s); page content %s\n", requests_served,
              page_ok ? "verified" : "NOT verified");
  return requests_served == 2 && page_ok ? 0 : 1;
}
