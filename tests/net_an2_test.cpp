#include "net/an2.hpp"

#include <gtest/gtest.h>

#include "sim/kernel.hpp"
#include "sim/simulator.hpp"

namespace ash::net {
namespace {

using sim::Cycles;
using sim::Node;
using sim::NodeConfig;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

struct TwoNodes {
  Simulator sim;
  Node* a;
  Node* b;
  An2Device* dev_a;
  An2Device* dev_b;

  explicit TwoNodes(const An2Config& cfg = {}, NodeConfig node_cfg = {}) {
    a = &sim.add_node("a", node_cfg);
    b = &sim.add_node("b", node_cfg);
    dev_a = new An2Device(*a, cfg);
    dev_b = new An2Device(*b, cfg);
    dev_a->connect(*dev_b);
  }
  ~TwoNodes() {
    delete dev_a;
    delete dev_b;
  }
};

TEST(An2, DeliversIntoSuppliedBufferZeroCopy) {
  TwoNodes t;
  bool checked = false;
  t.b->kernel().spawn("rx", [&](Process& self) -> Task {
    const int vc = t.dev_b->bind_vc(self);
    t.dev_b->supply_buffer(vc, self.segment().base, 4096);
    co_await t.dev_b->arrival_channel(vc).wait(self);
    const auto d = t.dev_b->poll(vc);
    EXPECT_TRUE(d.has_value());
    if (d.has_value()) {
      EXPECT_EQ(d->addr, self.segment().base);  // landed in app memory
      EXPECT_EQ(d->len, 4u);
      const std::uint8_t* p = t.b->mem(d->addr, 4);
      EXPECT_EQ(p[0], 0xde);
      EXPECT_EQ(p[3], 0xef);
      checked = true;
    }
  });
  t.sim.queue().schedule_at(100, [&] {
    const std::uint8_t msg[] = {0xde, 0xad, 0xbe, 0xef};
    ASSERT_TRUE(t.dev_a->send(0, msg));
  });
  t.sim.run();
  EXPECT_TRUE(checked);
}

TEST(An2, DmaInvalidatesCachedLines) {
  TwoNodes t;
  bool checked = false;
  t.b->kernel().spawn("rx", [&](Process& self) -> Task {
    const int vc = t.dev_b->bind_vc(self);
    const std::uint32_t buf = self.segment().base;
    t.dev_b->supply_buffer(vc, buf, 4096);
    t.b->dcache().touch_range(buf, 64);  // stale cached copy
    co_await t.dev_b->arrival_channel(vc).wait(self);
    EXPECT_FALSE(t.b->dcache().contains(buf));
    checked = true;
  });
  t.sim.queue().schedule_at(10, [&] {
    const std::uint8_t msg[] = {1, 2, 3, 4};
    t.dev_a->send(0, msg);
  });
  t.sim.run();
  EXPECT_TRUE(checked);
}

TEST(An2, DropsWhenNoFreeBuffer) {
  TwoNodes t;
  t.b->kernel().spawn("rx", [&](Process& self) -> Task {
    t.dev_b->bind_vc(self);  // no buffers supplied
    co_await self.compute(1);
  });
  t.sim.queue().schedule_at(10, [&] {
    const std::uint8_t msg[] = {1, 2, 3, 4};
    t.dev_a->send(0, msg);
  });
  t.sim.run();
  EXPECT_EQ(t.dev_b->drops(0), 1u);
}

TEST(An2, DropsOversizeMessage) {
  TwoNodes t;
  t.b->kernel().spawn("rx", [&](Process& self) -> Task {
    const int vc = t.dev_b->bind_vc(self);
    t.dev_b->supply_buffer(vc, self.segment().base, 16);
    co_await self.compute(1);
  });
  t.sim.queue().schedule_at(10, [&] {
    const std::vector<std::uint8_t> msg(64, 7);
    t.dev_a->send(0, msg);
  });
  t.sim.run();
  EXPECT_EQ(t.dev_b->drops(0), 1u);
  EXPECT_EQ(t.dev_b->free_buffers(0), 1u);  // buffer not consumed
}

TEST(An2, HardwareLatencyCalibration) {
  // One-way for a tiny message: serialization(4B) + per-packet overhead +
  // one_way_latency ~= 48 us, i.e. 96 us RTT (Table I's hardware floor).
  // Measured at the kernel hook, which adds ~5 us of driver work.
  TwoNodes t;
  Cycles arrive_time = 0;
  t.b->kernel().spawn("rx", [&](Process& self) -> Task {
    const int vc = t.dev_b->bind_vc(self);
    t.dev_b->supply_buffer(vc, self.segment().base, 64);
    t.dev_b->set_kernel_hook(vc, [&](const An2Device::RxEvent&) {
      arrive_time = t.b->now();
      return true;
    });
    co_await self.sleep_for(us(10000.0));
  });
  t.sim.queue().schedule_at(0, [&] {
    const std::uint8_t msg[] = {1, 2, 3, 4};
    t.dev_a->send(0, msg);
  });
  t.sim.run();
  const double hook_us = sim::to_us(arrive_time);
  EXPECT_GT(hook_us, 48.0);
  EXPECT_LT(hook_us, 58.0);
}

TEST(An2, SerializationPipelinesBackToBackPackets) {
  TwoNodes t;
  std::vector<Cycles> arrivals;
  t.b->kernel().spawn("rx", [&](Process& self) -> Task {
    const int vc = t.dev_b->bind_vc(self);
    for (int i = 0; i < 3; ++i) {
      t.dev_b->supply_buffer(
          vc, self.segment().base + 4096u * static_cast<std::uint32_t>(i),
          4096);
    }
    for (int i = 0; i < 3; ++i) {
      co_await t.dev_b->arrival_channel(vc).wait(self);
      arrivals.push_back(self.node().now());
      (void)t.dev_b->poll(vc);
    }
  });
  t.sim.queue().schedule_at(0, [&] {
    const std::vector<std::uint8_t> msg(4096, 9);
    for (int i = 0; i < 3; ++i) t.dev_a->send(0, msg);
  });
  t.sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  // Successive arrivals are spaced by one serialization time (~254 us for
  // 4 KB at 16.8 MB/s + overhead), not delivered simultaneously.
  const double gap1 = sim::to_us(arrivals[1] - arrivals[0]);
  const double gap2 = sim::to_us(arrivals[2] - arrivals[1]);
  EXPECT_NEAR(gap1, 253.8, 10.0);
  EXPECT_NEAR(gap2, 253.8, 10.0);
}

TEST(An2, KernelHookConsumesMessage) {
  TwoNodes t;
  int hook_runs = 0;
  t.b->kernel().spawn("rx", [&](Process& self) -> Task {
    const int vc = t.dev_b->bind_vc(self);
    t.dev_b->supply_buffer(vc, self.segment().base, 64);
    t.dev_b->set_kernel_hook(vc, [&](const An2Device::RxEvent& ev) {
      EXPECT_EQ(ev.vc, 0);
      EXPECT_EQ(ev.desc.len, 4u);
      ++hook_runs;
      return true;  // consumed: no notification
    });
    co_await self.sleep_for(us(10000.0));
    EXPECT_FALSE(t.dev_b->poll(vc).has_value());
  });
  t.sim.queue().schedule_at(10, [&] {
    const std::uint8_t msg[] = {1, 2, 3, 4};
    t.dev_a->send(0, msg);
  });
  t.sim.run();
  EXPECT_EQ(hook_runs, 1);
}

TEST(An2, DecliningHookFallsBackToNotification) {
  TwoNodes t;
  bool received = false;
  t.b->kernel().spawn("rx", [&](Process& self) -> Task {
    const int vc = t.dev_b->bind_vc(self);
    t.dev_b->supply_buffer(vc, self.segment().base, 64);
    t.dev_b->set_kernel_hook(
        vc, [](const An2Device::RxEvent&) { return false; });
    co_await t.dev_b->arrival_channel(vc).wait(self);
    received = t.dev_b->poll(vc).has_value();
  });
  t.sim.queue().schedule_at(10, [&] {
    const std::uint8_t msg[] = {1, 2, 3, 4};
    t.dev_a->send(0, msg);
  });
  t.sim.run();
  EXPECT_TRUE(received);
}

TEST(An2, FaultInjectionDropsSomePackets) {
  An2Config cfg;
  cfg.faults.drop_prob = 0.5;
  cfg.faults.seed = 99;
  TwoNodes t(cfg);
  int received = 0;
  t.b->kernel().spawn("rx", [&](Process& self) -> Task {
    const int vc = t.dev_b->bind_vc(self);
    for (int i = 0; i < 64; ++i) {
      t.dev_b->supply_buffer(
          vc, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
    }
    // Give everything time to arrive, then count.
    co_await self.sleep_for(us(100000.0));
    while (t.dev_b->poll(vc).has_value()) ++received;
  });
  t.sim.queue().schedule_at(10, [&] {
    const std::uint8_t msg[] = {1, 2, 3, 4};
    for (int i = 0; i < 64; ++i) t.dev_a->send(0, msg);
  });
  t.sim.run();
  EXPECT_GT(received, 10);
  EXPECT_LT(received, 54);
}

TEST(An2, PingPongRoundTripUnderInKernelHandlers) {
  // Raw in-kernel ping-pong: both sides consume in a kernel hook and reply
  // immediately — reproduces Table I's in-kernel configuration (~112 us).
  TwoNodes t;
  int rtts = 0;
  Cycles t0 = 0, t1 = 0;
  constexpr int kIters = 8;

  // Both "processes" exist only to own VCs; handlers do the work.
  t.a->kernel().spawn("client", [&](Process& self) -> Task {
    const int vc = t.dev_a->bind_vc(self);
    for (int i = 0; i < 16; ++i) {
      t.dev_a->supply_buffer(
          vc, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
    }
    t.dev_a->set_kernel_hook(vc, [&](const An2Device::RxEvent& ev) {
      ++rtts;
      if (rtts == kIters) {
        t1 = t.a->now();
        return true;
      }
      t.a->kernel_work(t.dev_a->config().tx_kernel_work, [&, ev] {
        t.dev_a->send_from(0, ev.desc.addr, ev.desc.len);
      });
      return true;
    });
    co_await self.compute(1);
  });
  t.b->kernel().spawn("server", [&](Process& self) -> Task {
    const int vc = t.dev_b->bind_vc(self);
    for (int i = 0; i < 16; ++i) {
      t.dev_b->supply_buffer(
          vc, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
    }
    t.dev_b->set_kernel_hook(vc, [&](const An2Device::RxEvent& ev) {
      t.b->kernel_work(t.dev_b->config().tx_kernel_work, [&, ev] {
        t.dev_b->send_from(0, ev.desc.addr, ev.desc.len);
      });
      return true;
    });
    co_await self.compute(1);
  });
  t.sim.queue().schedule_at(1000, [&] {
    t0 = t.a->now();
    const std::uint8_t msg[] = {1, 2, 3, 4};
    t.dev_a->send(0, msg);
  });
  t.sim.run();
  ASSERT_EQ(rtts, kIters);
  const double rtt_us = sim::to_us(t1 - t0) / kIters;
  // Table I: in-kernel AN2 round trip = 112 us. Expect the same ballpark.
  EXPECT_GT(rtt_us, 100.0);
  EXPECT_LT(rtt_us, 125.0);
}

}  // namespace
}  // namespace ash::net
