// The rule compiler's contract (ISSUE 10's heart): for every rule set the
// generator can produce, the compiled VCODE program and the reference
// interpreter ashc::eval() make identical decisions and produce byte-equal
// outputs — across all three execution backends, frame by frame, with the
// state blob evolving in between. A second leg replays rule sets through
// real AN2 devices with the handler NIC-resident vs host-resident and
// asserts bit-equal delivered sets.
//
// 510 randomized rule sets x 3 backends here, plus the four canned
// scenarios; seeds are fixed, so a failure names the exact (seed, frame)
// pair to minimize from.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "ashc/compile.hpp"
#include "ashc/eval.hpp"
#include "ashc/gen.hpp"
#include "ashc/rule.hpp"
#include "ashc/scenarios.hpp"
#include "core/ash.hpp"
#include "net/an2.hpp"
#include "net/nic_offload.hpp"
#include "net/rx_queue.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "vcode/backend.hpp"

namespace ash::ashc {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

constexpr int kArrivalChannel = 7;

using Frames = std::vector<std::vector<std::uint8_t>>;
using SendRec = std::pair<int, std::vector<std::uint8_t>>;

struct LegResult {
  bool download_ok = false;
  std::string error;
  std::vector<char> consumed;
  std::vector<std::vector<SendRec>> sends;  // per frame, released only
  std::vector<std::uint8_t> state;
};

/// Ground truth: run eval() over the frames sequentially, state evolving.
LegResult run_eval(const RuleSet& rs, const Frames& frames) {
  LegResult out;
  out.download_ok = true;
  out.state = init_state(rs);
  for (const auto& f : frames) {
    const EvalResult r = eval(rs, f, out.state, kArrivalChannel);
    out.consumed.push_back(r.consumed ? 1 : 0);
    std::vector<SendRec> sends;
    for (const EvalSend& s : r.sends) {
      sends.emplace_back(static_cast<int>(s.channel), s.bytes);
    }
    out.sends.push_back(std::move(sends));
  }
  return out;
}

/// Compiled leg: download through the real kernel path on one backend and
/// invoke() the handler frame by frame.
LegResult run_backend(const RuleSet& rs, const Frames& frames,
                      vcode::Backend be) {
  Simulator sim;
  Node& n = sim.add_node("n");
  core::AshSystem ash(n);

  LegResult out;
  out.consumed.assign(frames.size(), 0);
  out.sends.resize(frames.size());

  std::uint32_t state_addr = 0;
  std::uint32_t frame_addr = 0;
  int id = -1;
  n.kernel().spawn("owner", [&](Process& self) -> Task {
    state_addr = self.segment().base + 0x1000;
    frame_addr = self.segment().base + 0x4000;
    core::AshOptions opts;
    opts.backend = be;
    id = ash.download_rules(self, rs, state_addr, opts, &out.error);
    out.download_ok = id >= 0;
    co_await self.sleep_for(us(1e6));
  });

  for (std::size_t i = 0; i < frames.size(); ++i) {
    sim.queue().schedule_at(us(100.0 + 50.0 * static_cast<double>(i)),
                            [&, i] {
      if (id < 0) return;
      const auto& f = frames[i];
      if (!f.empty()) {
        std::memcpy(n.mem(frame_addr, static_cast<std::uint32_t>(f.size())),
                    f.data(), f.size());
      }
      core::MsgContext m;
      m.addr = frame_addr;
      m.len = static_cast<std::uint32_t>(f.size());
      m.channel = kArrivalChannel;
      m.user_arg = state_addr;
      out.consumed[i] =
          ash.invoke(id, m,
                     [&out, i](int ch, std::span<const std::uint8_t> b) {
                       out.sends[i].emplace_back(
                           ch, std::vector<std::uint8_t>(b.begin(), b.end()));
                       return true;
                     },
                     0)
              ? 1
              : 0;
    });
  }
  sim.run(us(2e6));

  if (id >= 0) {
    const std::uint8_t* p = n.mem(state_addr, rs.limits.state_bytes);
    out.state.assign(p, p + rs.limits.state_bytes);
  }
  return out;
}

void expect_legs_equal(const LegResult& want, const LegResult& got,
                       const char* leg, std::uint64_t seed) {
  ASSERT_TRUE(got.download_ok) << leg << " seed " << seed << ": "
                               << got.error;
  ASSERT_EQ(want.consumed.size(), got.consumed.size()) << leg;
  for (std::size_t i = 0; i < want.consumed.size(); ++i) {
    EXPECT_EQ(static_cast<int>(want.consumed[i]),
              static_cast<int>(got.consumed[i]))
        << leg << " seed " << seed << " frame " << i << ": decision";
    ASSERT_EQ(want.sends[i].size(), got.sends[i].size())
        << leg << " seed " << seed << " frame " << i << ": send count";
    for (std::size_t k = 0; k < want.sends[i].size(); ++k) {
      EXPECT_EQ(want.sends[i][k].first, got.sends[i][k].first)
          << leg << " seed " << seed << " frame " << i << " send " << k
          << ": channel";
      EXPECT_EQ(want.sends[i][k].second, got.sends[i][k].second)
          << leg << " seed " << seed << " frame " << i << " send " << k
          << ": bytes";
    }
  }
  EXPECT_EQ(want.state, got.state)
      << leg << " seed " << seed << ": final state blob";
}

void diff_rule_set(const RuleSet& rs, const Frames& frames,
                   std::uint64_t seed) {
  const LegResult want = run_eval(rs, frames);
  const struct {
    vcode::Backend be;
    const char* name;
  } legs[] = {{vcode::Backend::Interp, "interp"},
              {vcode::Backend::CodeCache, "codecache"},
              {vcode::Backend::Jit, "jit"}};
  for (const auto& leg : legs) {
    const LegResult got = run_backend(rs, frames, leg.be);
    expect_legs_equal(want, got, leg.name, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------- suites

TEST(AshcDiff, GeneratedRuleSetsMatchEvalOnAllBackends) {
  // >= 500 randomized rule sets, each over a fuzz-style frame corpus.
  constexpr std::uint64_t kSeeds = 510;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    util::Rng rng(0xa5c0'0000u + seed);
    const RuleSet rs = random_rule_set(rng);
    Compiled c = compile(rs);
    ASSERT_TRUE(c.ok) << "seed " << seed << ": " << c.error;
    const auto verdict = vcode::verify(c.program, verify_policy(rs));
    ASSERT_TRUE(verdict.ok())
        << "seed " << seed << ":\n" << verdict.to_string();
    const Frames frames = gen_frames(rng, rs, 10);
    diff_rule_set(rs, frames, seed);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "first divergence at seed " << seed;
    }
  }
}

TEST(AshcDiff, ScenariosMatchEvalOnAllBackends) {
  for (const std::string& name : scenario_names()) {
    const RuleSet rs = scenario(name);
    ASSERT_FALSE(rs.rules.empty()) << name;
    Frames frames = demo_frames(name);
    util::Rng rng(0xfeed'0001u);
    for (auto& f : gen_frames(rng, rs, 40)) frames.push_back(std::move(f));
    diff_rule_set(rs, frames, 0);
    if (::testing::Test::HasFatalFailure()) FAIL() << "scenario " << name;
  }
}

// ------------------------------------------------- NIC offload replay leg

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) h = (h ^ p[i]) * 1099511628211ull;
  return h;
}

struct ReplayResult {
  bool download_ok = false;
  std::map<int, std::vector<std::uint64_t>> client_rx;  // vc -> digests
  std::vector<std::uint64_t> fallback;  // non-consumed, host-delivered
  std::vector<std::uint8_t> state;
  std::uint64_t invocations = 0;
  std::uint64_t nic_executed = 0;
};

/// Replay `frames` into a rules handler attached to a real AN2 VC, with
/// the handler host-resident (offload=false) or NIC-resident.
ReplayResult replay(const RuleSet& rs, const Frames& frames, bool offload) {
  constexpr int kVcs = 5;        // channels 0..3 are steer targets
  constexpr int kAttachVc = 4;   // == the generator's kChannelArrival VC
  constexpr int kBufs = 64;

  Simulator sim;
  Node& a = sim.add_node("client");
  Node& b = sim.add_node("server");
  net::An2Device dev_a(a), dev_b(b);
  dev_a.connect(dev_b);
  core::AshSystem ash(b);

  net::RxQueueSet::Config qc;
  qc.queues = 1;
  net::RxQueueSet rxq(b, qc);
  dev_b.set_rx_queues(&rxq);
  std::unique_ptr<net::NicProcessor> nic;

  ReplayResult out;
  std::uint32_t state_addr = 0;
  int id = -1;
  b.kernel().spawn("server", [&](Process& self) -> Task {
    state_addr = self.segment().base + 0x70000;
    core::AshOptions opts;
    std::string error;
    id = ash.download_rules(self, rs, state_addr, opts, &error);
    EXPECT_GE(id, 0) << error;
    out.download_ok = id >= 0;
    if (offload) {
      nic = std::make_unique<net::NicProcessor>(b, rxq);
      dev_b.set_nic(nic.get());
    }
    for (int v = 0; v < kVcs; ++v) {
      const int vc = dev_b.bind_vc(self);
      for (int i = 0; i < kBufs; ++i) {
        dev_b.supply_buffer(
            vc,
            self.segment().base +
                256u * static_cast<std::uint32_t>(v * kBufs + i),
            256);
      }
    }
    if (id >= 0) {
      const bool resident = ash.offload_an2(dev_b, kAttachVc, id, state_addr);
      EXPECT_EQ(resident, offload);
    }
    co_await self.sleep_for(us(1e6));
  });
  a.kernel().spawn("client", [&](Process& self) -> Task {
    for (int v = 0; v < kVcs; ++v) {
      const int vc = dev_a.bind_vc(self);
      for (int i = 0; i < kBufs; ++i) {
        dev_a.supply_buffer(
            vc,
            self.segment().base +
                256u * static_cast<std::uint32_t>(v * kBufs + i),
            256);
      }
    }
    co_await self.sleep_for(us(1e6));
  });

  for (std::size_t i = 0; i < frames.size(); ++i) {
    sim.queue().schedule_at(us(200.0 + 120.0 * static_cast<double>(i)),
                            [&, i] {
      ASSERT_TRUE(dev_a.send(kAttachVc, frames[i]));
    });
  }
  sim.run(us(1.5e6));

  for (int v = 0; v < kVcs; ++v) {
    while (const auto d = dev_a.poll(v)) {
      const std::uint8_t* p = d->len ? a.mem(d->addr, d->len) : nullptr;
      out.client_rx[v].push_back(fnv1a(p, d->len));
    }
  }
  while (const auto d = dev_b.poll(kAttachVc)) {
    const std::uint8_t* p = d->len ? b.mem(d->addr, d->len) : nullptr;
    out.fallback.push_back(fnv1a(p, d->len));
  }
  if (id >= 0) {
    const std::uint8_t* p = b.mem(state_addr, rs.limits.state_bytes);
    out.state.assign(p, p + rs.limits.state_bytes);
    out.invocations = ash.stats(id).invocations;
  }
  if (nic != nullptr) out.nic_executed = nic->totals().nic_executed;
  return out;
}

TEST(AshcDiff, OffloadReplayBitEqualDeliveredSets) {
  std::uint64_t total_nic_executed = 0;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    util::Rng rng(0x0ff1'0000u + seed);
    const RuleSet rs = random_rule_set(rng);
    Frames frames = gen_frames(rng, rs, 20);
    // The device path rejects empty payloads; replace, don't skip, so the
    // corpus size is stable.
    for (auto& f : frames) {
      if (f.empty()) f.assign(1, 0x5a);
    }
    const ReplayResult host = replay(rs, frames, false);
    const ReplayResult nic = replay(rs, frames, true);
    ASSERT_TRUE(host.download_ok && nic.download_ok) << "seed " << seed;
    EXPECT_EQ(host.client_rx, nic.client_rx) << "seed " << seed;
    EXPECT_EQ(host.fallback, nic.fallback) << "seed " << seed;
    EXPECT_EQ(host.state, nic.state) << "seed " << seed;
    EXPECT_EQ(host.invocations, nic.invocations) << "seed " << seed;
    EXPECT_EQ(host.invocations, frames.size()) << "seed " << seed;
    total_nic_executed += nic.nic_executed;
  }
  // The offload leg must actually have executed on NIC units.
  EXPECT_GT(total_nic_executed, 0u);
}

}  // namespace
}  // namespace ash::ashc
