// TcpEngine state-machine conformance: the fault-handling behaviors the
// c10k refactor added. RST validation in every reachable state (RFC 5961
// spirit), TIME_WAIT semantics (RFC 1337 RST immunity, FIN re-ACK with
// 2MSL restart), simultaneous close, zero-window persist probes against
// a full receiver, and the duplicate/out-of-order counter split.
//
// Engine-vs-engine tests drive two TcpEngines over a clean AN2 link;
// sequence-validation tests script one side by hand (a "raw peer" that
// encodes exact IP+TCP segments), because only a misbehaving peer can
// send what these paths must reject.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "proto/an2_link.hpp"
#include "proto/headers.hpp"
#include "proto/tcp_engine.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"

namespace ash::proto {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

const Ipv4Addr kIpA = Ipv4Addr::of(10, 0, 0, 1);
const Ipv4Addr kIpB = Ipv4Addr::of(10, 0, 0, 2);

/// Two nodes joined by a clean AN2 link.
struct World {
  Simulator sim;
  Node& a;
  Node& b;
  net::An2Device dev_a;
  net::An2Device dev_b;

  World() : a(sim.add_node("a")), b(sim.add_node("b")), dev_a(a), dev_b(b) {
    dev_a.connect(dev_b);
  }
};

TcpEngine::Config engine_cfg(Ipv4Addr ip, bool checksum = true) {
  TcpEngine::Config cfg;
  cfg.local_ip = ip;
  cfg.checksum = checksum;
  return cfg;
}

// ------------------------------------------------------------ raw peer

struct RawSeg {
  TcpHeader tcp;
  std::vector<std::uint8_t> payload;
};

/// Receive and decode the next TCP segment, releasing the frame.
sim::Sub<std::optional<RawSeg>> raw_recv(An2Link& link, sim::Cycles timeout) {
  const sim::Cycles deadline = link.self().node().now() + timeout;
  for (;;) {
    const sim::Cycles now = link.self().node().now();
    if (now >= deadline) co_return std::nullopt;
    const auto d = co_await link.recv_for(deadline - now);
    if (!d.has_value()) co_return std::nullopt;
    Node& node = link.self().node();
    const std::uint32_t off = link.rx_ip_offset();
    const std::uint8_t* p = node.mem(d->addr + off, d->len - off);
    const auto ip = decode_ip({p, d->len - off});
    std::optional<RawSeg> out;
    if (ip.has_value() && ip->protocol == kIpProtoTcp) {
      const std::uint32_t seg_len = ip->total_len - kIpHeaderLen;
      const auto tcp = decode_tcp({p + kIpHeaderLen, seg_len});
      if (tcp.has_value()) {
        RawSeg s;
        s.tcp = *tcp;
        s.payload.assign(p + kIpHeaderLen + kTcpHeaderLen,
                         p + kIpHeaderLen + seg_len);
        out = std::move(s);
      }
    }
    link.release(*d);
    if (out.has_value()) co_return out;
  }
}

/// Encode and transmit one hand-built segment (no checksum: the engine
/// under test runs with checksum validation off in raw-peer tests).
sim::Sub<void> raw_send(An2Link& link, Ipv4Addr src, Ipv4Addr dst,
                        TcpHeader tcp,
                        std::span<const std::uint8_t> payload) {
  Node& node = link.self().node();
  const auto plen = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t total =
      static_cast<std::uint32_t>(kIpHeaderLen + kTcpHeaderLen) + plen;
  const std::uint32_t pkt = link.tx_alloc_ip(total);
  std::uint8_t* p = node.mem(pkt, total);
  encode_tcp({p + kIpHeaderLen, kTcpHeaderLen}, tcp);
  if (plen > 0) {
    std::memcpy(p + kIpHeaderLen + kTcpHeaderLen, payload.data(), plen);
  }
  IpHeader ip;
  ip.protocol = kIpProtoTcp;
  ip.src = src;
  ip.dst = dst;
  ip.total_len = static_cast<std::uint16_t>(total);
  encode_ip({p, kIpHeaderLen}, ip);
  const bool sent = co_await link.send_ip(pkt, total);
  (void)sent;
}

TcpHeader make_seg(std::uint16_t src_port, std::uint16_t dst_port,
                   std::uint32_t seq, std::uint32_t ack, TcpFlags flags,
                   std::uint16_t window = 65535) {
  TcpHeader t;
  t.src_port = src_port;
  t.dst_port = dst_port;
  t.seq = seq;
  t.ack = ack;
  t.flags = flags;
  t.window = window;
  return t;
}

TcpFlags flags_of(bool syn, bool ack, bool fin = false, bool rst = false) {
  TcpFlags f;
  f.syn = syn;
  f.ack = ack;
  f.fin = fin;
  f.rst = rst;
  return f;
}

// --------------------------------------------------------- RST handling

TEST(TcpEngineState, RstTearsDownSynSent) {
  // connect() to a host with no listener: the peer engine answers the
  // SYN with a RST whose ack covers it; the connecting flow must die
  // without ever reporting establishment.
  World w;
  bool established = false, closed = false, stop_b = false;
  TcpEngine::Stats stats_a{}, stats_b{};

  w.a.kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, w.dev_a, {});
    TcpEngine eng(link, engine_cfg(kIpA));
    TcpEngine::Callbacks cbs;
    cbs.on_established = [&](TcpEngine::ConnId) { established = true; };
    cbs.on_closed = [&](TcpEngine::ConnId) { closed = true; };
    const TcpEngine::ConnId id = eng.connect(kIpB, 80, 4000, cbs);
    EXPECT_NE(id, 0u);
    co_await eng.run(closed, self.node().now() + us(300000.0));
    stats_a = eng.stats();
    stop_b = true;
  });
  w.b.kernel().spawn("deaf-host", [&](Process& self) -> Task {
    An2Link link(self, w.dev_b, {});
    TcpEngine eng(link, engine_cfg(kIpB));  // no listener on any port
    co_await eng.run(stop_b, self.node().now() + us(400000.0));
    stats_b = eng.stats();
  });
  w.sim.run(us(1e6));

  EXPECT_TRUE(closed);
  EXPECT_FALSE(established);
  EXPECT_EQ(stats_a.rsts_received, 1u);
  EXPECT_EQ(stats_a.conns_closed, 1u);
  EXPECT_EQ(stats_b.unknown_flow_rsts, 1u);
  EXPECT_EQ(stats_b.rsts_sent, 1u);
}

TEST(TcpEngineState, EstablishedRstRequiresInWindowSeq) {
  // Blind-reset protection: a RST outside the receive window is ignored
  // (counted), one at rcv_nxt kills the flow.
  World w;
  bool established = false, closed = false;
  TcpEngine::Stats stats_a{};

  w.a.kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, w.dev_a, {});
    TcpEngine eng(link, engine_cfg(kIpA, /*checksum=*/false));
    TcpEngine::Callbacks cbs;
    cbs.on_established = [&](TcpEngine::ConnId) { established = true; };
    cbs.on_closed = [&](TcpEngine::ConnId) { closed = true; };
    const TcpEngine::ConnId id = eng.connect(kIpB, 80, 4000, cbs);
    EXPECT_NE(id, 0u);
    co_await eng.run(closed, self.node().now() + us(500000.0));
    stats_a = eng.stats();
  });
  w.b.kernel().spawn("raw-peer", [&](Process& self) -> Task {
    An2Link link(self, w.dev_b, {});
    const auto syn = co_await raw_recv(link, us(100000.0));
    if (!syn.has_value() || !syn->tcp.flags.syn) {
      ADD_FAILURE() << "no SYN from the engine";
      co_return;
    }
    const std::uint32_t iss = syn->tcp.seq;
    co_await raw_send(link, kIpB, kIpA,
                      make_seg(80, 4000, 9000, iss + 1, flags_of(true, true)),
                      {});
    const auto hs_ack = co_await raw_recv(link, us(100000.0));
    if (!hs_ack.has_value()) {
      ADD_FAILURE() << "handshake ACK never arrived";
      co_return;
    }

    // Out of window by a wide margin (rcv window is 16 KB): ignored.
    co_await raw_send(
        link, kIpB, kIpA,
        make_seg(80, 4000, 9001 + 40000, 0, flags_of(false, false, false,
                                                     true)),
        {});
    co_await self.sleep_for(us(3000.0));
    EXPECT_TRUE(established);
    EXPECT_FALSE(closed);

    // Exactly at rcv_nxt: accepted.
    co_await raw_send(
        link, kIpB, kIpA,
        make_seg(80, 4000, 9001, 0, flags_of(false, false, false, true)),
        {});
  });
  w.sim.run(us(1e6));

  EXPECT_TRUE(established);
  EXPECT_TRUE(closed);
  EXPECT_EQ(stats_a.rsts_ignored, 1u);
  EXPECT_EQ(stats_a.rsts_received, 1u);
}

TEST(TcpEngineState, SynRcvdRstReleasesTheBacklogSlot) {
  // A reset half-open connection must free its SYN-backlog slot without
  // ever reaching the accept callback.
  World w;
  bool established = false, stop_a = false;
  std::uint64_t closed_upcalls = 0;
  TcpEngine::Stats stats_a{};
  std::uint32_t pending_after = 999;
  std::uint64_t accepted_after = 999;

  w.a.kernel().spawn("listener", [&](Process& self) -> Task {
    An2Link link(self, w.dev_a, {});
    TcpEngine eng(link, engine_cfg(kIpA, /*checksum=*/false));
    TcpEngine::ListenConfig lc;
    lc.callbacks.on_established = [&](TcpEngine::ConnId) {
      established = true;
    };
    lc.callbacks.on_closed = [&](TcpEngine::ConnId) { ++closed_upcalls; };
    TcpEngine::TcpListener& l = eng.listen(80, lc);
    co_await eng.run(stop_a, self.node().now() + us(300000.0));
    stats_a = eng.stats();
    pending_after = l.pending;
    accepted_after = l.accepted;
  });
  w.b.kernel().spawn("raw-peer", [&](Process& self) -> Task {
    An2Link link(self, w.dev_b, {});
    co_await self.sleep_for(us(500.0));
    co_await raw_send(link, kIpB, kIpA,
                      make_seg(5555, 80, 7000, 0, flags_of(true, false)),
                      {});
    const auto synack = co_await raw_recv(link, us(100000.0));
    if (!synack.has_value()) {
      ADD_FAILURE() << "no SYN/ACK from the listener";
      stop_a = true;
      co_return;
    }
    EXPECT_TRUE(synack->tcp.flags.syn && synack->tcp.flags.ack);
    EXPECT_EQ(synack->tcp.ack, 7001u);

    co_await raw_send(
        link, kIpB, kIpA,
        make_seg(5555, 80, 7001, 0, flags_of(false, false, false, true)),
        {});
    co_await self.sleep_for(us(5000.0));
    stop_a = true;
  });
  w.sim.run(us(1e6));

  EXPECT_FALSE(established);
  EXPECT_EQ(closed_upcalls, 1u);
  EXPECT_EQ(stats_a.rsts_received, 1u);
  EXPECT_EQ(stats_a.conns_closed, 1u);
  EXPECT_EQ(stats_a.conns_accepted, 0u);
  EXPECT_EQ(pending_after, 0u);
  EXPECT_EQ(accepted_after, 0u);
}

// ----------------------------------------------------------- TIME_WAIT

TEST(TcpEngineState, TimeWaitIgnoresRstReAcksFinAndExpires) {
  World w;
  bool closed = false;
  sim::Cycles closed_at = 0;
  sim::Cycles fin_resent_at = 0;
  TcpEngine::Stats stats_a{};
  TcpEngine* eng_p = nullptr;
  TcpEngine::ConnId id = 0;
  bool saw_timewait_under_rst = false;

  const sim::Cycles kTimeWait = us(50000.0);

  w.a.kernel().spawn("closer", [&](Process& self) -> Task {
    An2Link link(self, w.dev_a, {});
    TcpEngine::Config cfg = engine_cfg(kIpA, /*checksum=*/false);
    cfg.time_wait = kTimeWait;
    TcpEngine eng(link, cfg);
    eng_p = &eng;
    TcpEngine::Callbacks cbs;
    cbs.on_established = [&](TcpEngine::ConnId cid) {
      eng.close(cid);  // active close: we send the first FIN
    };
    cbs.on_closed = [&](TcpEngine::ConnId) {
      closed = true;
      closed_at = w.a.now();
    };
    id = eng.connect(kIpB, 80, 4000, cbs);
    EXPECT_NE(id, 0u);
    co_await eng.run(closed, self.node().now() + us(1e6));
    stats_a = eng.stats();
    eng_p = nullptr;
  });
  w.b.kernel().spawn("raw-peer", [&](Process& self) -> Task {
    An2Link link(self, w.dev_b, {});
    const auto syn = co_await raw_recv(link, us(100000.0));
    if (!syn.has_value() || !syn->tcp.flags.syn) {
      ADD_FAILURE() << "no SYN from the engine";
      co_return;
    }
    const std::uint32_t iss = syn->tcp.seq;
    co_await raw_send(link, kIpB, kIpA,
                      make_seg(80, 4000, 9000, iss + 1, flags_of(true, true)),
                      {});
    const auto fin = co_await raw_recv(link, us(100000.0));
    if (!fin.has_value()) {
      ADD_FAILURE() << "the active closer never sent its FIN";
      co_return;
    }
    EXPECT_TRUE(fin->tcp.flags.fin);

    // Ack the FIN (FIN_WAIT_2), then send our own (TIME_WAIT).
    co_await raw_send(link, kIpB, kIpA,
                      make_seg(80, 4000, 9001, iss + 2, flags_of(false, true)),
                      {});
    co_await self.sleep_for(us(1000.0));
    co_await raw_send(
        link, kIpB, kIpA,
        make_seg(80, 4000, 9001, iss + 2, flags_of(false, true, true)), {});
    const auto last_ack = co_await raw_recv(link, us(100000.0));
    if (!last_ack.has_value()) {
      ADD_FAILURE() << "our FIN was never ACKed";
      co_return;
    }
    EXPECT_EQ(last_ack->tcp.ack, 9002u);

    // RFC 1337: a RST must not shorten TIME_WAIT.
    co_await raw_send(
        link, kIpB, kIpA,
        make_seg(80, 4000, 9002, 0, flags_of(false, false, false, true)),
        {});
    co_await self.sleep_for(us(3000.0));
    if (eng_p != nullptr) {
      const auto st = eng_p->state(id);
      saw_timewait_under_rst =
          st.has_value() && *st == TcpState::TimeWait;
    }

    // Retransmitted FIN (our "lost final ACK"): re-ACKed, 2MSL restarts.
    fin_resent_at = self.node().now();
    co_await raw_send(
        link, kIpB, kIpA,
        make_seg(80, 4000, 9001, iss + 2, flags_of(false, true, true)), {});
    const auto re_ack = co_await raw_recv(link, us(100000.0));
    if (!re_ack.has_value()) {
      ADD_FAILURE() << "the dup FIN drew no re-ACK";
      co_return;
    }
    EXPECT_EQ(re_ack->tcp.ack, 9002u);

    // Anything else in TIME_WAIT draws a challenge ACK and a counter.
    co_await raw_send(link, kIpB, kIpA,
                      make_seg(80, 4000, 9002, iss + 2, flags_of(false, true)),
                      {});
    const auto challenge = co_await raw_recv(link, us(100000.0));
    EXPECT_TRUE(challenge.has_value());
  });
  w.sim.run(us(2e6));

  EXPECT_TRUE(saw_timewait_under_rst);
  EXPECT_TRUE(closed);
  EXPECT_GE(stats_a.rsts_ignored, 1u);
  EXPECT_GE(stats_a.timewait_drops, 1u);
  EXPECT_GE(stats_a.dup_segments, 1u);  // the retransmitted FIN
  EXPECT_EQ(stats_a.rsts_received, 0u);
  // The dup FIN restarted 2MSL: destruction happens a full period later.
  EXPECT_GE(closed_at, fin_resent_at + kTimeWait);
}

// ---------------------------------------------------- simultaneous close

TEST(TcpEngineState, SimultaneousCloseReachesTimeWaitOnBothSides) {
  World w;
  const sim::Cycles kCloseAt = us(5000.0);
  bool est_a = false, est_b = false, closed_a = false, closed_b = false;
  bool timewait_a = false, timewait_b = false;
  TcpEngine::Stats stats_a{}, stats_b{};

  const auto drive = [&](Process& self, TcpEngine& eng, TcpEngine::ConnId& id,
                         bool& est, bool& closed,
                         bool& timewait) -> sim::Sub<void> {
    co_await eng.run(est, self.node().now() + us(100000.0));
    EXPECT_TRUE(est);
    if (!est) co_return;
    // Line both closers up on the same instant with a fine-grained wait,
    // so the FINs cross in flight (one-way latency exceeds the skew).
    while (self.node().now() < kCloseAt) {
      const bool got = co_await eng.step(us(20.0));
      (void)got;
    }
    eng.close(id);
    const sim::Cycles limit = self.node().now() + us(500000.0);
    while (!closed && self.node().now() < limit) {
      const auto st = eng.state(id);
      if (st.has_value() && *st == TcpState::TimeWait) timewait = true;
      const bool got = co_await eng.step(us(500.0));
      (void)got;
    }
  };

  w.a.kernel().spawn("a", [&](Process& self) -> Task {
    An2Link link(self, w.dev_a, {});
    TcpEngine::Config cfg = engine_cfg(kIpA);
    cfg.time_wait = us(20000.0);
    TcpEngine eng(link, cfg);
    TcpEngine::Callbacks cbs;
    cbs.on_established = [&](TcpEngine::ConnId) { est_a = true; };
    cbs.on_closed = [&](TcpEngine::ConnId) { closed_a = true; };
    TcpEngine::ConnId id = eng.connect(kIpB, 80, 4000, cbs);
    EXPECT_NE(id, 0u);
    co_await drive(self, eng, id, est_a, closed_a, timewait_a);
    stats_a = eng.stats();
  });
  w.b.kernel().spawn("b", [&](Process& self) -> Task {
    An2Link link(self, w.dev_b, {});
    TcpEngine::Config cfg = engine_cfg(kIpB);
    cfg.time_wait = us(20000.0);
    TcpEngine eng(link, cfg);
    TcpEngine::ConnId id = 0;
    TcpEngine::ListenConfig lc;
    lc.callbacks.on_established = [&](TcpEngine::ConnId cid) {
      id = cid;
      est_b = true;
    };
    lc.callbacks.on_closed = [&](TcpEngine::ConnId) { closed_b = true; };
    eng.listen(80, lc);
    co_await drive(self, eng, id, est_b, closed_b, timewait_b);
    stats_b = eng.stats();
  });
  w.sim.run(us(2e6));

  EXPECT_TRUE(closed_a);
  EXPECT_TRUE(closed_b);
  // Crossing FINs: BOTH sides are active closers, so both must pass
  // through TIME_WAIT (neither takes the CLOSE_WAIT/LAST_ACK path).
  EXPECT_TRUE(timewait_a);
  EXPECT_TRUE(timewait_b);
  EXPECT_EQ(stats_a.aborts, 0u);
  EXPECT_EQ(stats_b.aborts, 0u);
  EXPECT_EQ(stats_a.rsts_sent, 0u);
  EXPECT_EQ(stats_b.rsts_sent, 0u);
  EXPECT_EQ(stats_a.conns_closed, 1u);
  EXPECT_EQ(stats_b.conns_closed, 1u);
}

// ------------------------------------------------- zero-window persist

TEST(TcpEngineState, PersistProbesResolveZeroWindowStall) {
  // An 8 KB write against a 2 KB receiver that stops draining: the
  // sender must probe through the closed window instead of deadlocking,
  // and the receiver's sub-MSS drains must reopen the window (the
  // satellite fix: a window update fires on any 0 -> nonzero transition,
  // not only on full-MSS openings).
  constexpr std::uint32_t kLen = 8192;
  World w;
  bool closed_a = false, server_done = false;
  TcpEngine::Stats stats_a{}, stats_b{};
  std::string got;

  w.a.kernel().spawn("writer", [&](Process& self) -> Task {
    An2Link link(self, w.dev_a, {});
    TcpEngine::Config cfg = engine_cfg(kIpA);
    cfg.rto = us(20000.0);
    cfg.min_rto = us(5000.0);
    cfg.max_retries = 20;
    TcpEngine eng(link, cfg);
    TcpEngine::Callbacks cbs;
    cbs.on_established = [&](TcpEngine::ConnId cid) {
      std::vector<std::uint8_t> data(kLen);
      for (std::uint32_t i = 0; i < kLen; ++i) {
        data[i] = static_cast<std::uint8_t>(i * 7);
      }
      eng.write(cid, data);
      eng.close(cid);  // FIN rides out after the buffer drains
    };
    cbs.on_closed = [&](TcpEngine::ConnId) { closed_a = true; };
    const TcpEngine::ConnId id = eng.connect(kIpB, 80, 4000, cbs);
    EXPECT_NE(id, 0u);
    co_await eng.run(closed_a, self.node().now() + us(3e6));
    stats_a = eng.stats();
  });
  w.b.kernel().spawn("slow-reader", [&](Process& self) -> Task {
    An2Link link(self, w.dev_b, {});
    TcpEngine::Config cfg = engine_cfg(kIpB);
    cfg.rcv_limit = 2048;
    TcpEngine eng(link, cfg);
    TcpEngine::ConnId id = 0;
    TcpEngine::ListenConfig lc;
    lc.callbacks.on_established = [&](TcpEngine::ConnId cid) { id = cid; };
    eng.listen(80, lc);

    // Let the window slam shut and stay shut long enough for probes.
    const sim::Cycles drain_start = self.node().now() + us(100000.0);
    while (self.node().now() < drain_start) {
      const bool got_frame = co_await eng.step(us(2000.0));
      (void)got_frame;
    }
    // Drain in sub-MSS sips until the whole stream (and EOF) arrives.
    const sim::Cycles limit = self.node().now() + us(3e6);
    while (self.node().now() < limit) {
      std::uint8_t buf[240];
      const std::size_t n = eng.read(id, buf, sizeof buf);
      got.append(reinterpret_cast<const char*>(buf), n);
      const bool eof = got.size() >= kLen && eng.at_eof(id);
      if (eof) break;
      const bool got_frame = co_await eng.step(us(1000.0));
      (void)got_frame;
    }
    eng.close(id);
    while (eng.open_connections() > 0 && self.node().now() < limit) {
      const bool got_frame = co_await eng.step(us(1000.0));
      (void)got_frame;
    }
    stats_b = eng.stats();
    server_done = true;
  });
  w.sim.run(us(4e6));

  ASSERT_TRUE(server_done);
  ASSERT_EQ(got.size(), kLen);
  bool intact = true;
  for (std::uint32_t i = 0; i < kLen; ++i) {
    intact &= static_cast<std::uint8_t>(got[i]) ==
              static_cast<std::uint8_t>(i * 7);
  }
  EXPECT_TRUE(intact);
  EXPECT_TRUE(closed_a);
  EXPECT_GE(stats_a.persist_probes, 1u);   // the window was probed
  EXPECT_GE(stats_b.window_updates, 1u);   // the 0 -> nonzero reopen fired
  EXPECT_GE(stats_b.rcv_overflow_drops, 1u);  // probes hit a full buffer
}

// ----------------------------------- duplicate vs out-of-order counters

TEST(TcpEngineState, DuplicateAndOutOfOrderCountersAreDistinct) {
  World w;
  bool stop_a = false;
  TcpEngine::Stats stats_a{};
  std::string got;

  w.a.kernel().spawn("receiver", [&](Process& self) -> Task {
    An2Link link(self, w.dev_a, {});
    TcpEngine eng(link, engine_cfg(kIpA, /*checksum=*/false));
    TcpEngine::Callbacks cbs;
    cbs.on_readable = [&](TcpEngine::ConnId cid) {
      std::uint8_t buf[2048];
      for (;;) {
        const std::size_t n = eng.read(cid, buf, sizeof buf);
        if (n == 0) break;
        got.append(reinterpret_cast<const char*>(buf), n);
      }
    };
    const TcpEngine::ConnId id = eng.connect(kIpB, 80, 4000, cbs);
    EXPECT_NE(id, 0u);
    co_await eng.run(stop_a, self.node().now() + us(500000.0));
    stats_a = eng.stats();
  });
  w.b.kernel().spawn("raw-peer", [&](Process& self) -> Task {
    An2Link link(self, w.dev_b, {});
    const auto syn = co_await raw_recv(link, us(100000.0));
    if (!syn.has_value() || !syn->tcp.flags.syn) {
      ADD_FAILURE() << "no SYN from the engine";
      co_return;
    }
    const std::uint32_t iss = syn->tcp.seq;
    co_await raw_send(link, kIpB, kIpA,
                      make_seg(80, 4000, 9000, iss + 1, flags_of(true, true)),
                      {});
    const auto hs_ack = co_await raw_recv(link, us(100000.0));
    if (!hs_ack.has_value()) {
      ADD_FAILURE() << "handshake ACK never arrived";
      co_return;
    }

    std::vector<std::uint8_t> pat(1000);
    for (std::size_t i = 0; i < pat.size(); ++i) {
      pat[i] = static_cast<std::uint8_t>(i * 13);
    }
    const TcpFlags data = flags_of(false, true);

    // Second half first: buffered out of order, answered by a dup-ACK.
    co_await raw_send(link, kIpB, kIpA,
                      make_seg(80, 4000, 9001 + 500, iss + 1, data),
                      std::span<const std::uint8_t>(pat).subspan(500));
    const auto dup_ack = co_await raw_recv(link, us(100000.0));
    if (!dup_ack.has_value()) {
      ADD_FAILURE() << "the out-of-order segment drew no dup-ACK";
      stop_a = true;
      co_return;
    }
    EXPECT_EQ(dup_ack->tcp.ack, 9001u);  // still asking for the gap

    // The gap: delivered, and the buffered half reassembles behind it.
    co_await raw_send(link, kIpB, kIpA,
                      make_seg(80, 4000, 9001, iss + 1, data),
                      std::span<const std::uint8_t>(pat).first(500));
    co_await self.sleep_for(us(3000.0));

    // A stale retransmission of the first half: duplicate, not OOO.
    co_await raw_send(link, kIpB, kIpA,
                      make_seg(80, 4000, 9001, iss + 1, data),
                      std::span<const std::uint8_t>(pat).first(500));
    // Far beyond the receive window: refused outright.
    co_await raw_send(link, kIpB, kIpA,
                      make_seg(80, 4000, 9001 + 40000, iss + 1, data),
                      std::span<const std::uint8_t>(pat).first(500));
    co_await self.sleep_for(us(5000.0));
    stop_a = true;
  });
  w.sim.run(us(1e6));

  ASSERT_EQ(got.size(), 1000u);
  bool intact = true;
  for (std::size_t i = 0; i < got.size(); ++i) {
    intact &= static_cast<std::uint8_t>(got[i]) ==
              static_cast<std::uint8_t>(i * 13);
  }
  EXPECT_TRUE(intact);
  EXPECT_EQ(stats_a.ooo_buffered, 1u);
  EXPECT_EQ(stats_a.ooo_reassembled, 500u);  // bytes pulled from the store
  EXPECT_GE(stats_a.dup_segments, 1u);       // the stale retransmission
  EXPECT_EQ(stats_a.ooo_dropped, 1u);        // the out-of-window segment
}

}  // namespace
}  // namespace ash::proto
