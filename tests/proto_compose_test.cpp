#include "proto/compose.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "proto/an2_link.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"

namespace ash::proto {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

struct ComposeWorld {
  Simulator sim;
  Node* a;
  Node* b;
  net::An2Device* dev_a;
  net::An2Device* dev_b;

  ComposeWorld() {
    a = &sim.add_node("a");
    b = &sim.add_node("b");
    dev_a = new net::An2Device(*a);
    dev_b = new net::An2Device(*b);
    dev_a->connect(*dev_b);
  }
  ~ComposeWorld() {
    delete dev_a;
    delete dev_b;
  }
};

/// Exchange `count` messages through identically composed stacks built by
/// `compose`; returns how many the receiver accepted, and its drop count.
template <typename ComposeFn>
std::pair<int, std::uint64_t> exchange(ComposeFn compose, int count,
                                       bool corrupt_second = false) {
  ComposeWorld w;
  int accepted = 0;
  std::uint64_t drops = 0;

  w.b->kernel().spawn("rx", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    ProtocolStack stack(link);
    compose(stack, false);
    for (int i = 0; i < count; ++i) {
      const auto r = co_await stack.recv(us(50000.0));
      if (!r.has_value()) break;
      const std::uint8_t* p =
          self.node().mem(r->payload_addr, r->payload_len);
      if (p != nullptr && r->payload_len == 8 && p[0] == 0x42) ++accepted;
      stack.release(*r);
    }
    drops = stack.drops();
  });
  w.a->kernel().spawn("tx", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    ProtocolStack stack(link);
    compose(stack, true);
    co_await self.sleep_for(us(1000.0));
    const std::uint32_t buf = self.segment().base;
    std::uint8_t* p = self.node().mem(buf, 8);
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(0x42 + i);
    for (int i = 0; i < count; ++i) {
      const bool sent = co_await stack.send_from(buf, 8);
      EXPECT_TRUE(sent);
      if (corrupt_second && i == 1) {
        // Corrupt the staged byte pattern so the NEXT packet's checksum
        // fails... we instead corrupt the app data after the checksum has
        // been computed; simpler: flip app data between sends so the
        // receiver sees valid checksums but a wrong first byte? Keep this
        // hook unused in checksum tests; corruption is injected below via
        // a custom layer instead.
      }
      co_await self.sleep_for(us(300.0));
    }
  });
  w.sim.run(us(3e6));
  return {accepted, drops};
}

TEST(Compose, PortAndChecksumLayersDeliver) {
  auto [accepted, drops] = exchange(
      [](ProtocolStack& s, bool tx) {
        s.push_inner(make_port_layer(7, 7));
        s.push_inner(make_cksum_layer());
        (void)tx;
      },
      5);
  EXPECT_EQ(accepted, 5);
  EXPECT_EQ(drops, 0u);
}

TEST(Compose, CompositionOrderIsRuntimeChosen) {
  // Same layers, opposite nesting: still delivers (both ends agree).
  auto [accepted, drops] = exchange(
      [](ProtocolStack& s, bool) {
        s.push_inner(make_cksum_layer());
        s.push_inner(make_port_layer(9, 9));
        s.push_inner(make_seq_layer());
      },
      4);
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(drops, 0u);
}

TEST(Compose, PortMismatchDrops) {
  auto [accepted, drops] = exchange(
      [](ProtocolStack& s, bool tx) {
        s.push_inner(make_port_layer(tx ? 7 : 7, tx ? 7 : 8));  // rx wants 8
      },
      3);
  EXPECT_EQ(accepted, 0);
  EXPECT_EQ(drops, 3u);
}

TEST(Compose, SeqLayerRejectsReplay) {
  // The sender's seq layer is re-created fresh for every message batch;
  // craft a replay by sending with a stack whose tx counter resets: use
  // two sender stacks against one receiver.
  ComposeWorld w;
  int accepted = 0;
  std::uint64_t drops = 0;

  w.b->kernel().spawn("rx", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    ProtocolStack stack(link);
    stack.push_inner(make_seq_layer());
    for (int i = 0; i < 2; ++i) {
      const auto r = co_await stack.recv(us(50000.0));
      if (!r.has_value()) break;
      ++accepted;
      stack.release(*r);
    }
    // The replayed seq 0 must have been dropped.
    const auto r = co_await stack.recv(us(5000.0));
    EXPECT_FALSE(r.has_value());
    drops = stack.drops();
  });
  w.a->kernel().spawn("tx", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    const std::uint32_t buf = self.segment().base;
    std::memset(self.node().mem(buf, 8), 0x42, 8);
    co_await self.sleep_for(us(1000.0));
    {
      ProtocolStack stack(link);
      stack.push_inner(make_seq_layer());
      (void)co_await stack.send_from(buf, 8);  // seq 0
      co_await self.sleep_for(us(300.0));
      (void)co_await stack.send_from(buf, 8);  // seq 1
      co_await self.sleep_for(us(300.0));
    }
    ProtocolStack replayer(link);  // fresh counters: replays seq 0
    replayer.push_inner(make_seq_layer());
    (void)co_await replayer.send_from(buf, 8);
  });
  w.sim.run(us(3e6));
  EXPECT_EQ(accepted, 2);
  EXPECT_EQ(drops, 1u);
}

TEST(Compose, ChecksumLayerCatchesCorruptionLayer) {
  // Insert a "corruptor" layer *outside* the checksum at the sender only:
  // it flips a payload bit after the checksum was computed (layers encode
  // innermost-out, so an outer layer's encode runs after inner ones).
  ComposeWorld w;
  std::uint64_t drops = 0;

  w.b->kernel().spawn("rx", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    ProtocolStack stack(link);
    stack.push_inner(LayerSpec{"null", 0, [](auto, auto) {},
                               [](auto, auto) { return true; }, 0});
    stack.push_inner(make_cksum_layer());
    const auto r = co_await stack.recv(us(20000.0));
    EXPECT_FALSE(r.has_value());
    drops = stack.drops();
  });
  w.a->kernel().spawn("tx", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    ProtocolStack stack(link);
    sim::Node* node = &self.node();
    LayerSpec corruptor;
    corruptor.name = "corruptor";
    corruptor.header_len = 0;
    corruptor.encode = [node](std::span<std::uint8_t> h, std::uint32_t) {
      // Zero-length header: h.data() points at the checksum header that
      // follows; flip a bit in the checksummed region beyond it.
      std::uint8_t* bytes = h.data();
      bytes[4] ^= 0x01;
    };
    corruptor.decode = [](auto, auto) { return true; };
    stack.push_inner(corruptor);
    stack.push_inner(make_cksum_layer());
    co_await self.sleep_for(us(1000.0));
    const std::uint32_t buf = self.segment().base;
    std::memset(node->mem(buf, 8), 0x42, 8);
    (void)co_await stack.send_from(buf, 8);
  });
  w.sim.run(us(3e6));
  EXPECT_EQ(drops, 1u);
}

}  // namespace
}  // namespace ash::proto
