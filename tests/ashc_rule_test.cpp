// Unit tests for the rule language itself: builders, dumps, the state
// image, field extraction under the whole-word contract, compiler output
// shape, and the download_rules() kernel path (happy + every error leg).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "ashc/compile.hpp"
#include "ashc/eval.hpp"
#include "ashc/rule.hpp"
#include "ashc/scenarios.hpp"
#include "core/ash.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "vcode/program.hpp"

namespace ash::ashc {
namespace {

using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

TEST(AshcRule, BuildersFillFields) {
  const Match e = m_eq(12, 2, 0x0800);
  EXPECT_EQ(e.kind, Match::Kind::Field);
  EXPECT_EQ(e.field.offset, 12u);
  EXPECT_EQ(e.field.width, 2);
  EXPECT_EQ(e.cmp, Cmp::Eq);
  EXPECT_EQ(e.value, 0x0800u);
  EXPECT_EQ(e.effective_mask(), 0xffffu);

  const Match m = m_mask(0, 4, 0xff00ff00u, 0x1200'3400u);
  EXPECT_EQ(m.effective_mask(), 0xff00ff00u);

  const Match r = m_range(36, 2, 8000, 8099);
  EXPECT_EQ(r.cmp, Cmp::Range);
  EXPECT_EQ(r.value, 8000u);
  EXPECT_EQ(r.value2, 8099u);

  EXPECT_EQ(m_len_ge(40).kind, Match::Kind::LenGe);
  EXPECT_EQ(m_len_lt(20).kind, Match::Kind::LenLt);

  const Pred p = p_or({p_atom(m_eq(0, 1, 6)), p_atom(m_eq(0, 1, 17))});
  EXPECT_EQ(p.op, Pred::Op::Or);
  EXPECT_EQ(p.kids.size(), 2u);

  const Action s = a_sample(8, 12);
  EXPECT_EQ(s.kind, Action::Kind::Sample);
  EXPECT_EQ(s.n, 8u);
  EXPECT_EQ(s.state_off, 12u);

  const Action rp = a_reply(16, 12, kChannelArrival,
                            {Splice{4, false, Field{4, 4}, 0}});
  EXPECT_EQ(rp.kind, Action::Kind::Reply);
  EXPECT_EQ(rp.splices.size(), 1u);
  EXPECT_EQ(a_steer(2).channel, 2);
}

TEST(AshcRule, FieldValueWholeWordContract) {
  // 8-byte frame; word at offset 4 fits exactly, word at 5 does not.
  const std::vector<std::uint8_t> f = {0x12, 0x34, 0x56, 0x78,
                                       0xaa, 0xbb, 0xcc, 0xdd};
  // Network order: w4 at 0 is 0x12345678.
  EXPECT_EQ(field_value(f, Field{0, 4}), 0x12345678u);
  EXPECT_EQ(field_value(f, Field{0, 2}), 0x1234u);
  EXPECT_EQ(field_value(f, Field{1, 1}), 0x34u);
  EXPECT_EQ(field_value(f, Field{4, 4}), 0xaabbccddu);
  // offset 5: word [5..9) extends past len 8 -> WHOLE word zero, so even
  // the bytes that do exist read as zero.
  EXPECT_EQ(field_value(f, Field{5, 1}), 0u);
  EXPECT_EQ(field_value(f, Field{5, 2}), 0u);
  EXPECT_EQ(field_value(f, Field{6, 1}), 0u);
}

TEST(AshcRule, InitStatePlacesTemplates) {
  RuleSet rs;
  rs.limits.state_bytes = 32;
  rs.templates.push_back(Template{16, {'K', 'V', 'R', 'P'}});
  const auto st = init_state(rs);
  ASSERT_EQ(st.size(), 32u);
  EXPECT_EQ(st[15], 0u);
  EXPECT_EQ(st[16], 'K');
  EXPECT_EQ(st[19], 'P');
  EXPECT_EQ(st[20], 0u);

  // Bytes past the declared region are silently dropped.
  RuleSet over;
  over.limits.state_bytes = 8;
  over.templates.push_back(Template{6, {1, 2, 3, 4}});
  const auto st2 = init_state(over);
  ASSERT_EQ(st2.size(), 8u);
  EXPECT_EQ(st2[6], 1u);
  EXPECT_EQ(st2[7], 2u);
}

TEST(AshcRule, FormatAndJsonMentionEveryRule) {
  for (const std::string& name : scenario_names()) {
    const RuleSet rs = scenario(name);
    const std::string text = format(rs);
    const std::string json = to_json(rs);
    for (const Rule& r : rs.rules) {
      EXPECT_NE(text.find(r.name), std::string::npos)
          << name << ": " << r.name;
      EXPECT_NE(json.find("\"" + r.name + "\""), std::string::npos)
          << name << ": " << r.name;
    }
    EXPECT_NE(json.find("\"name\""), std::string::npos);
    EXPECT_NE(json.find("\"rules\""), std::string::npos);
  }
}

TEST(AshcRule, CompileShapeIsVerifiableStraightLine) {
  for (const std::string& name : scenario_names()) {
    const RuleSet rs = scenario(name);
    const Compiled c = compile(rs);
    ASSERT_TRUE(c.ok) << name << ": " << c.error;
    ASSERT_FALSE(c.program.insns.empty()) << name;
    const auto res = vcode::verify(c.program, verify_policy(rs));
    EXPECT_TRUE(res.ok()) << name << ":\n" << res.to_string();
    // The disassembly exists and is one line per insn (sanity for the
    // ashtool rules golden).
    const std::string dis = vcode::disassemble(c.program);
    EXPECT_FALSE(dis.empty()) << name;
  }
}

TEST(AshcRule, CompileRejectsStructuralImpossibilities) {
  {
    RuleSet rs;
    Rule r;
    r.name = "misaligned";
    r.pred = p_and({});
    r.actions.push_back(a_count(2));  // not word aligned
    rs.rules.push_back(r);
    const Compiled c = compile(rs);
    EXPECT_FALSE(c.ok);
    EXPECT_FALSE(c.error.empty());
  }
  {
    RuleSet rs;
    Rule r;
    r.name = "sample0";
    r.pred = p_and({});
    r.actions.push_back(a_sample(0, 0));  // modulus must be > 0
    rs.rules.push_back(r);
    EXPECT_FALSE(compile(rs).ok);
  }
  {
    RuleSet rs;
    Rule r;
    r.name = "bigcksum";
    r.pred = p_and({});
    r.actions.push_back(a_store_cksum(0, 0, kMaxCksumBytes + 4));
    rs.rules.push_back(r);
    EXPECT_FALSE(compile(rs).ok);
  }
  {
    RuleSet rs;
    Rule r;
    r.name = "badwidth";
    r.pred = p_atom(m_eq(0, 3, 1));  // width must be 1/2/4
    rs.rules.push_back(r);
    EXPECT_FALSE(compile(rs).ok);
  }
}

// ------------------------------------------------- download_rules() path

struct DownloadResult {
  int id = -1;
  std::string error;
  std::vector<std::uint8_t> state_image;
};

DownloadResult try_download(const RuleSet& rs,
                            std::uint32_t state_addr_delta,
                            bool misalign = false) {
  Simulator sim;
  sim::Node& n = sim.add_node("n");
  core::AshSystem ash(n);
  DownloadResult out;
  n.kernel().spawn("owner", [&](Process& self) -> Task {
    std::uint32_t addr = self.segment().base + state_addr_delta;
    if (misalign) addr += 1;
    out.id = ash.download_rules(self, rs, addr, {}, &out.error);
    if (out.id >= 0) {
      const std::uint8_t* p = n.mem(addr, rs.limits.state_bytes);
      out.state_image.assign(p, p + rs.limits.state_bytes);
    }
    co_await self.sleep_for(us(10.0));
  });
  sim.run(us(100.0));
  return out;
}

TEST(AshcRule, DownloadRulesInstallsAndSeedsState) {
  const RuleSet rs = scenario("kv");
  const DownloadResult r = try_download(rs, 0x1000);
  ASSERT_GE(r.id, 0) << r.error;
  EXPECT_EQ(r.state_image, init_state(rs));
}

TEST(AshcRule, DownloadRulesRejectsCompileFailure) {
  RuleSet rs;
  Rule r;
  r.name = "bad";
  r.pred = p_and({});
  r.actions.push_back(a_sample(0, 0));
  rs.rules.push_back(r);
  const DownloadResult d = try_download(rs, 0x1000);
  EXPECT_LT(d.id, 0);
  EXPECT_NE(d.error.find("rule compile failed"), std::string::npos)
      << d.error;
}

TEST(AshcRule, DownloadRulesRejectsBoundsViolation) {
  RuleSet rs;
  rs.limits.max_frame_bytes = 64;
  Rule r;
  r.name = "oob";
  r.pred = p_atom(m_eq(200, 4, 1));  // word at 200 outside the 64B window
  rs.rules.push_back(r);
  const DownloadResult d = try_download(rs, 0x1000);
  EXPECT_LT(d.id, 0);
  EXPECT_NE(d.error.find("rule bounds verification failed"),
            std::string::npos)
      << d.error;
}

TEST(AshcRule, DownloadRulesRejectsBadStateAddress) {
  const RuleSet rs = scenario("kv");
  const DownloadResult mis = try_download(rs, 0x1000, /*misalign=*/true);
  EXPECT_LT(mis.id, 0);
  EXPECT_NE(mis.error.find("state address"), std::string::npos)
      << mis.error;
  // Past the end of the owner's segment.
  const DownloadResult oob = try_download(rs, 0x7fffff00u);
  EXPECT_LT(oob.id, 0);
  EXPECT_NE(oob.error.find("state address"), std::string::npos)
      << oob.error;
}

TEST(AshcRule, EvalReleasesSendsOnlyOnAccept) {
  // Identical rules, opposite verdicts: the Deliver twin stages the same
  // reply but the kernel contract discards it.
  RuleSet rs;
  rs.limits.state_bytes = 32;
  rs.templates.push_back(Template{0, {1, 2, 3, 4}});
  Rule acc;
  acc.name = "acc";
  acc.pred = p_and({});
  acc.actions.push_back(a_reply(0, 4, 5));
  acc.verdict = Verdict::Accept;
  rs.rules.push_back(acc);

  std::vector<std::uint8_t> st = init_state(rs);
  const std::vector<std::uint8_t> frame(8, 0);
  EvalResult r = eval(rs, frame, st, 9);
  EXPECT_TRUE(r.consumed);
  ASSERT_EQ(r.sends.size(), 1u);
  EXPECT_EQ(r.sends[0].channel, 5u);
  EXPECT_EQ(r.sends[0].bytes, (std::vector<std::uint8_t>{1, 2, 3, 4}));

  rs.rules[0].verdict = Verdict::Deliver;
  std::vector<std::uint8_t> st2 = init_state(rs);
  r = eval(rs, frame, st2, 9);
  EXPECT_FALSE(r.consumed);
  EXPECT_TRUE(r.sends.empty());
}

}  // namespace
}  // namespace ash::ashc
