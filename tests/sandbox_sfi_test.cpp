#include "sandbox/sfi.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "vcode/builder.hpp"
#include "vcode/env_util.hpp"
#include "vcode/interp.hpp"
#include "vcode/verifier.hpp"

namespace ash::sandbox {
namespace {

using vcode::Builder;
using vcode::ExecLimits;
using vcode::ExecResult;
using vcode::FlatMemoryEnv;
using vcode::kRegArg0;
using vcode::kRegArg1;
using vcode::kRegZero;
using vcode::Op;
using vcode::Outcome;
using vcode::Program;
using vcode::Reg;

Options mips_options() {
  Options opts;
  opts.segment = {0x1000, 0x1000};  // [0x1000, 0x2000)
  return opts;
}

SandboxResult must_sandbox(const Program& prog, const Options& opts) {
  std::string error;
  auto result = sandbox(prog, opts, &error);
  EXPECT_TRUE(result.has_value()) << error;
  return std::move(*result);
}

TEST(Sfi, SegmentValidation) {
  EXPECT_TRUE((Segment{0x1000, 0x1000}).valid());
  EXPECT_FALSE((Segment{0x1000, 0x1001}).valid());  // not a power of two
  EXPECT_FALSE((Segment{0x800, 0x1000}).valid());   // base not aligned
  EXPECT_FALSE((Segment{0, 4}).valid());            // too small
  EXPECT_TRUE((Segment{0, 8}).valid());
}

TEST(Sfi, PreservesSemanticsOfInBoundsCode) {
  Builder b;
  const Reg base = b.reg();
  const Reg v = b.reg();
  b.movi(base, 0x1100);
  b.movi(v, 0xabcd1234u);
  b.sw(v, base, 8);
  b.lw(kRegArg0, base, 8);
  b.halt();
  const Program prog = b.take();

  FlatMemoryEnv env(0x10000);
  const ExecResult plain = vcode::execute(prog, env);
  ASSERT_EQ(plain.outcome, Outcome::Halted);
  ASSERT_EQ(plain.result, 0xabcd1234u);

  const SandboxResult sb = must_sandbox(prog, mips_options());
  FlatMemoryEnv env2(0x10000);
  const ExecResult boxed = vcode::execute(sb.program, env2);
  EXPECT_EQ(boxed.outcome, Outcome::Halted);
  EXPECT_EQ(boxed.result, 0xabcd1234u);
}

TEST(Sfi, WildWriteIsConfinedToSegment) {
  Builder b;
  const Reg base = b.reg();
  const Reg v = b.reg();
  b.movi(base, 0x5008);  // outside the [0x1000,0x2000) segment
  b.movi(v, 0xdeadbeefu);
  b.sw(v, base, 0);
  b.halt();
  const Program prog = b.take();

  // Unsandboxed: the wild write lands at 0x5008 ("kernel memory").
  FlatMemoryEnv env(0x10000);
  ASSERT_EQ(vcode::execute(prog, env).outcome, Outcome::Halted);
  EXPECT_EQ(env.memory()[0x5008], 0xef);

  // Sandboxed: masked into the segment (0x5008 & 0xfff | 0x1000 = 0x1008).
  const SandboxResult sb = must_sandbox(prog, mips_options());
  FlatMemoryEnv env2(0x10000);
  ASSERT_EQ(vcode::execute(sb.program, env2).outcome, Outcome::Halted);
  EXPECT_EQ(env2.memory()[0x5008], 0x00);
  EXPECT_EQ(env2.memory()[0x1008], 0xef);
}

TEST(Sfi, MisalignedAccessIsForceAligned) {
  Builder b;
  const Reg base = b.reg();
  const Reg v = b.reg();
  b.movi(base, 0x1001);  // misaligned word address
  b.movi(v, 0x11223344u);
  b.sw(v, base, 0);
  b.halt();
  const Program prog = b.take();

  // Unsandboxed this is an alignment fault.
  FlatMemoryEnv env(0x10000);
  EXPECT_EQ(vcode::execute(prog, env).outcome, Outcome::AlignFault);

  // Sandboxed the address is forced to alignment (footnote 2): 0x1000.
  const SandboxResult sb = must_sandbox(prog, mips_options());
  FlatMemoryEnv env2(0x10000);
  EXPECT_EQ(vcode::execute(sb.program, env2).outcome, Outcome::Halted);
  EXPECT_EQ(env2.memory()[0x1000], 0x44);
}

TEST(Sfi, RejectsFloatingPoint) {
  Builder b;
  b.fadd(kRegArg0, kRegArg0, kRegArg1);
  b.halt();
  std::string error;
  EXPECT_FALSE(sandbox(b.take(), mips_options(), &error).has_value());
  EXPECT_NE(error.find("floating-point"), std::string::npos);
}

TEST(Sfi, ConvertsSignedArithmetic) {
  Builder b;
  b.add(kRegArg0, kRegArg0, kRegArg1);
  b.sub(kRegArg0, kRegArg0, kRegArg1);
  b.halt();
  const SandboxResult sb = must_sandbox(b.take(), mips_options());
  EXPECT_EQ(sb.report.converted_signed, 2u);
  for (const auto& insn : sb.program.insns) {
    EXPECT_NE(insn.op, Op::Add);
    EXPECT_NE(insn.op, Op::Sub);
  }
}

TEST(Sfi, RejectsSignedArithmeticWhenConversionDisabled) {
  Builder b;
  b.add(kRegArg0, kRegArg0, kRegArg1);
  b.halt();
  Options opts = mips_options();
  opts.convert_signed = false;
  std::string error;
  EXPECT_FALSE(sandbox(b.take(), opts, &error).has_value());
}

TEST(Sfi, RejectsScratchRegisterUse) {
  vcode::Program prog;
  prog.insns.push_back({Op::Movi, kScratch0, 0, 0, 5});
  prog.insns.push_back({Op::Halt, 0, 0, 0, 0});
  std::string error;
  EXPECT_FALSE(sandbox(prog, mips_options(), &error).has_value());
  EXPECT_NE(error.find("scratch"), std::string::npos);
}

TEST(Sfi, RejectsDoubleSandboxing) {
  Builder b;
  b.halt();
  const SandboxResult sb = must_sandbox(b.take(), mips_options());
  std::string error;
  EXPECT_FALSE(sandbox(sb.program, mips_options(), &error).has_value());
}

TEST(Sfi, IndirectJumpsAreTranslated) {
  // The register holds a PRE-sandbox instruction index; inserted checks
  // shift the code, and JrChk must translate the old index to the new one.
  Builder b;
  const Reg base = b.reg();
  const Reg t = b.reg();
  const Reg v = b.reg();
  vcode::Label target = b.label();
  b.movi(base, 0x1100);
  b.movi(v, 42);
  b.sw(v, base, 0);  // memory op => sandbox inserts checks before `target`
  b.movi(t, 5);      // pre-sandbox index of `target`
  b.jr(t);
  b.bind(target);
  b.mark_indirect(target);
  b.lw(kRegArg0, base, 0);
  b.halt();
  const Program prog = b.take();
  ASSERT_EQ(prog.indirect_targets.size(), 1u);
  ASSERT_EQ(prog.indirect_targets[0], 5u);

  const SandboxResult sb = must_sandbox(prog, mips_options());
  FlatMemoryEnv env(0x10000);
  const ExecResult r = vcode::execute(sb.program, env);
  EXPECT_EQ(r.outcome, Outcome::Halted);
  EXPECT_EQ(r.result, 42u);
}

TEST(Sfi, IndirectJumpToUnregisteredAddressFaults) {
  Builder b;
  const Reg t = b.reg();
  vcode::Label target = b.label();
  b.movi(t, 3);  // NOT a registered label (target is at 2)
  b.jr(t);
  b.bind(target);
  b.mark_indirect(target);
  b.movi(kRegArg0, 1);
  b.halt();
  Program prog = b.take();
  // Pre-sandbox index 2 is `target`; jumping to 3 must fault after boxing.
  const SandboxResult sb = must_sandbox(prog, mips_options());
  FlatMemoryEnv env(0x10000);
  EXPECT_EQ(vcode::execute(sb.program, env).outcome,
            Outcome::IndirectJumpFault);
}

TEST(Sfi, SoftwareBudgetChecksBoundLoops) {
  Builder b;
  const Reg i = b.reg();
  vcode::Label loop = b.label();
  b.movi(i, 0);
  b.bind(loop);
  b.addiu(i, i, 1);
  b.jmp(loop);  // infinite
  Options opts = mips_options();
  opts.software_budget_checks = true;
  const SandboxResult sb = must_sandbox(b.take(), opts);
  EXPECT_GE(sb.report.budget_check_insns, 1u);

  FlatMemoryEnv env(0x10000);
  ExecLimits limits;
  limits.software_budget = 100;
  limits.max_insns = 1u << 24;  // only the Budget ops should stop it
  const ExecResult r = vcode::execute(sb.program, env, limits);
  EXPECT_EQ(r.outcome, Outcome::BudgetExceeded);
  EXPECT_LT(r.insns, 500u);
}

TEST(Sfi, ReportCountsAreConsistent) {
  Builder b;
  const Reg base = b.reg();
  b.movi(base, 0x1100);
  b.lw(kRegArg0, base, 4);
  b.sw(kRegArg0, base, 8);
  b.halt();
  const SandboxResult sb = must_sandbox(b.take(), mips_options());
  const Report& rep = sb.report;
  EXPECT_EQ(rep.original_insns, 4u);
  EXPECT_EQ(rep.final_insns, sb.program.insns.size());
  EXPECT_EQ(rep.added(),
            rep.mem_check_insns + rep.budget_check_insns +
                rep.epilogue_insns);
  // Each of the two accesses has a nonzero offset: Addiu + Andi + Ori = 3.
  EXPECT_EQ(rep.mem_check_insns, 6u);
  EXPECT_GT(rep.epilogue_insns, 0u);
  EXPECT_TRUE(sb.program.sandboxed);
}

TEST(Sfi, EpilogueCanBeDisabled) {
  Builder b;
  b.movi(kRegArg0, 9);
  b.halt();
  Options opts = mips_options();
  opts.general_epilogue = false;
  const SandboxResult sb = must_sandbox(b.take(), opts);
  EXPECT_EQ(sb.report.epilogue_insns, 0u);
  FlatMemoryEnv env(0x10000);
  EXPECT_EQ(vcode::execute(sb.program, env).result, 9u);
}

TEST(Sfi, X86ModeInsertsNoMemoryChecks) {
  Builder b;
  const Reg base = b.reg();
  b.movi(base, 0x1100);
  b.lw(kRegArg0, base, 4);
  b.halt();
  Options opts;
  opts.mode = Mode::X86Segments;
  opts.general_epilogue = false;
  const SandboxResult sb = must_sandbox(b.take(), opts);
  EXPECT_EQ(sb.report.mem_check_insns, 0u);
  EXPECT_EQ(sb.report.added(), 0u);
}

TEST(Sfi, SandboxedProgramStillVerifies) {
  Builder b;
  const Reg base = b.reg();
  vcode::Label loop = b.label();
  const Reg i = b.reg();
  const Reg limit = b.reg();
  b.movi(base, 0x1000);
  b.movi(i, 0);
  b.movi(limit, 16);
  b.bind(loop);
  b.sw(i, base, 0);
  b.addiu(base, base, 4);
  b.addiu(i, i, 1);
  b.bltu(i, limit, loop);
  b.halt();
  Options opts = mips_options();
  opts.software_budget_checks = true;
  const SandboxResult sb = must_sandbox(b.take(), opts);
  vcode::VerifyPolicy policy;
  const auto verdict = vcode::verify(sb.program, policy);
  EXPECT_TRUE(verdict.ok()) << verdict.to_string();
}

// Property: for random in-segment straight-line memory programs, the
// sandboxed program computes exactly the same result and memory state as
// the original.
class SfiEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SfiEquivalence, InBoundsProgramsUnchanged) {
  util::Rng rng(GetParam());
  Builder b;
  const Reg base = b.reg();
  const Reg v = b.reg();
  b.movi(base, 0x1000 + 4 * static_cast<std::uint32_t>(rng.below(64)));
  b.movi(v, static_cast<std::uint32_t>(rng.next()));
  const int ops = static_cast<int>(rng.range(1, 20));
  for (int i = 0; i < ops; ++i) {
    const auto off = static_cast<std::int32_t>(4 * rng.below(16));
    switch (rng.below(4)) {
      case 0: b.sw(v, base, off); break;
      case 1: b.lw(v, base, off); break;
      case 2: b.sb(v, base, off); break;
      default: b.addiu(v, v, static_cast<std::uint32_t>(rng.below(1000)));
    }
  }
  b.mov(kRegArg0, v);
  b.halt();
  const Program prog = b.take();

  FlatMemoryEnv env1(0x10000), env2(0x10000);
  const ExecResult plain = vcode::execute(prog, env1);
  ASSERT_EQ(plain.outcome, Outcome::Halted);

  const SandboxResult sb = must_sandbox(prog, mips_options());
  const ExecResult boxed = vcode::execute(sb.program, env2);
  ASSERT_EQ(boxed.outcome, Outcome::Halted);
  EXPECT_EQ(boxed.result, plain.result);
  for (std::size_t i = 0; i < env1.memory().size(); ++i) {
    ASSERT_EQ(env1.memory()[i], env2.memory()[i]) << "byte " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SfiEquivalence, ::testing::Range(0, 60));

// Property: no matter what addresses a random program computes, sandboxed
// stores never touch memory outside the segment.
class SfiContainment : public ::testing::TestWithParam<int> {};

TEST_P(SfiContainment, StoresNeverEscapeSegment) {
  util::Rng rng(GetParam() + 500);
  Builder b;
  const Reg base = b.reg();
  const Reg v = b.reg();
  b.movi(base, static_cast<std::uint32_t>(rng.next()) & 0xfffc);
  b.movi(v, 0xa5a5a5a5u);
  const int ops = static_cast<int>(rng.range(1, 12));
  for (int i = 0; i < ops; ++i) {
    b.sw(v, base, static_cast<std::int32_t>(4 * rng.below(1024)));
    b.addiu(base, base, static_cast<std::uint32_t>(rng.next() & 0xffff));
  }
  b.halt();
  const SandboxResult sb = must_sandbox(b.take(), mips_options());

  FlatMemoryEnv env(0x10000);
  const ExecResult r = vcode::execute(sb.program, env);
  ASSERT_EQ(r.outcome, Outcome::Halted);
  for (std::size_t i = 0; i < env.memory().size(); ++i) {
    if (i >= 0x1000 && i < 0x2000) continue;
    ASSERT_EQ(env.memory()[i], 0u) << "escape at " << std::hex << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SfiContainment, ::testing::Range(0, 60));

}  // namespace
}  // namespace ash::sandbox
