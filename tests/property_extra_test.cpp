// Second battery of property tests: sandboxed loops, striped DILP
// equivalence, cache invariants, TCP under combined loss+duplication, and
// link-rate conformance.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "dilp/engine.hpp"
#include "dilp/native.hpp"
#include "dilp/stdpipes.hpp"
#include "proto/an2_link.hpp"
#include "proto/tcp.hpp"
#include "sandbox/sfi.hpp"
#include "sim/cache.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "vcode/builder.hpp"
#include "vcode/env_util.hpp"

namespace ash {
namespace {

using sim::us;
using vcode::Builder;
using vcode::FlatMemoryEnv;
using vcode::kRegArg0;
using vcode::kRegZero;
using vcode::Reg;

// ---------------------------------------------------------------- sandbox

/// Random programs WITH loops: a bounded counting loop whose body does
/// in-segment memory traffic and arithmetic. Sandboxed semantics must
/// match unsandboxed exactly.
class SfiLoopEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SfiLoopEquivalence, LoopsPreserved) {
  util::Rng rng(GetParam() + 7000);
  Builder b;
  const Reg i = b.reg();
  const Reg n = b.reg();
  const Reg base = b.reg();
  const Reg acc = b.reg();
  vcode::Label loop = b.label();
  vcode::Label done = b.label();
  const std::uint32_t iters = static_cast<std::uint32_t>(rng.range(1, 24));
  b.movi(i, 0);
  b.movi(n, iters);
  b.movi(base, 0x1000 + 4 * static_cast<std::uint32_t>(rng.below(32)));
  b.movi(acc, static_cast<std::uint32_t>(rng.next()));
  b.bind(loop);
  b.bgeu(i, n, done);
  // Body: store acc, reload, mix.
  const auto off = static_cast<std::int32_t>(4 * rng.below(8));
  b.sw(acc, base, off);
  b.lw(acc, base, off);
  switch (rng.below(3)) {
    case 0: b.addiu(acc, acc, 0x9e37u); break;
    case 1: b.xori(acc, acc, 0x5a5au); break;
    default: b.cksum32(acc, i); break;
  }
  b.addiu(i, i, 1);
  b.jmp(loop);
  b.bind(done);
  b.mov(kRegArg0, acc);
  b.halt();
  const vcode::Program prog = b.take();

  sandbox::Options opts;
  opts.segment = {0x1000, 0x1000};
  opts.software_budget_checks = rng.chance(1, 2);
  std::string error;
  const auto boxed = sandbox::sandbox(prog, opts, &error);
  ASSERT_TRUE(boxed.has_value()) << error;

  FlatMemoryEnv env1(0x10000), env2(0x10000);
  const auto plain = vcode::execute(prog, env1);
  const auto sbx = vcode::execute(boxed->program, env2);
  ASSERT_EQ(plain.outcome, vcode::Outcome::Halted);
  ASSERT_EQ(sbx.outcome, vcode::Outcome::Halted);
  EXPECT_EQ(plain.result, sbx.result);
  EXPECT_EQ(
      0, std::memcmp(env1.memory().data(), env2.memory().data(), 0x10000));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SfiLoopEquivalence, ::testing::Range(0, 40));

// ---------------------------------------------------------------- dilp

/// Striped-layout fusion equals destripe-then-contiguous-fusion.
class StripedFusionEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(StripedFusionEquivalence, MatchesContiguousReference) {
  util::Rng rng(GetParam() + 8100);
  dilp::PipeList pl;
  std::vector<std::uint32_t> seeds;
  const int n_pipes = static_cast<int>(rng.range(1, 3));
  for (int i = 0; i < n_pipes; ++i) {
    switch (rng.below(3)) {
      case 0:
        pl.add(dilp::make_cksum_pipe(nullptr));
        seeds.push_back(0);
        break;
      case 1:
        pl.add(dilp::make_byteswap_pipe());
        break;
      default:
        pl.add(dilp::make_xor_pipe(nullptr));
        seeds.push_back(static_cast<std::uint32_t>(rng.next()));
        break;
    }
  }
  dilp::Engine engine;
  std::string error;
  dilp::LoopLayout striped;
  striped.src_stripe_chunk = 16;
  const int id_striped =
      engine.register_ilp(pl, dilp::Direction::Write, &error, striped);
  const int id_flat = engine.register_ilp(pl, dilp::Direction::Write, &error);
  ASSERT_GE(id_striped, 0);
  ASSERT_GE(id_flat, 0);

  const std::uint32_t len = 16 * static_cast<std::uint32_t>(rng.range(1, 16));
  std::vector<std::uint8_t> logical(len);
  for (auto& v : logical) v = static_cast<std::uint8_t>(rng.next());

  FlatMemoryEnv env(0x10000);
  // Flat copy at 0x800; striped image at 0x2000.
  std::copy(logical.begin(), logical.end(), env.memory().begin() + 0x800);
  for (std::uint32_t i = 0; i < len; ++i) {
    env.memory()[0x2000 + (i / 16) * 32 + (i % 16)] = logical[i];
  }

  std::vector<std::uint32_t> p1, p2;
  const auto r1 = engine.run(id_flat, env, 0x800, 0x4000, len, seeds, &p1);
  const auto r2 =
      engine.run(id_striped, env, 0x2000, 0x6000, len, seeds, &p2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(0, std::memcmp(env.memory().data() + 0x4000,
                           env.memory().data() + 0x6000, len));
  EXPECT_EQ(p1, p2);
  // The striped loop pays for its stride bookkeeping.
  EXPECT_GT(r2.exec.insns, r1.exec.insns);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StripedFusionEquivalence,
                         ::testing::Range(0, 40));

// ---------------------------------------------------------------- cache

struct CacheParams {
  std::uint32_t size;
  std::uint32_t line;
};

class CacheInvariants
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CacheInvariants, StatsAndResidency) {
  const auto [size_kb, line] = GetParam();
  sim::CacheConfig cfg;
  cfg.size_bytes = static_cast<std::uint32_t>(size_kb) * 1024;
  cfg.line_bytes = static_cast<std::uint32_t>(line);
  cfg.read_miss_penalty = 10;
  sim::Cache cache(cfg);

  util::Rng rng(static_cast<std::uint64_t>(size_kb) * 131 +
                static_cast<std::uint64_t>(line));
  std::uint64_t accesses = 0;
  for (int k = 0; k < 2000; ++k) {
    const std::uint32_t addr =
        static_cast<std::uint32_t>(rng.below(1u << 20)) & ~3u;
    const bool write = rng.chance(1, 3);
    cache.access(addr, 4, write);
    // A 4-byte aligned access within one line counts exactly once.
    accesses += (addr % cfg.line_bytes) + 4 > cfg.line_bytes ? 2 : 1;
    if (!write) {
      EXPECT_TRUE(cache.contains(addr));  // reads always leave residency
    }
  }
  EXPECT_EQ(cache.hits() + cache.misses(), accesses);
}

INSTANTIATE_TEST_SUITE_P(Configs, CacheInvariants,
                         ::testing::Combine(::testing::Values(16, 64, 128),
                                            ::testing::Values(16, 32, 64)));

// ---------------------------------------------------------------- wire

TEST(LinkRate, An2NeverExceedsConfiguredBandwidth) {
  // Blast packets back to back; arrival spacing must respect the link
  // rate for every payload size.
  for (const std::uint32_t size : {128u, 1024u, 4096u}) {
    sim::Simulator s;
    sim::Node& a = s.add_node("a");
    sim::Node& b = s.add_node("b");
    net::An2Device da(a), db(b);
    da.connect(db);
    std::vector<sim::Cycles> arrivals;
    b.kernel().spawn("rx", [&](sim::Process& self) -> sim::Task {
      const int vc = db.bind_vc(self);
      for (int i = 0; i < 32; ++i) {
        db.supply_buffer(vc,
                         self.segment().base +
                             4096u * static_cast<std::uint32_t>(i),
                         4096);
      }
      // Timestamp at the driver (delivery time), not at process resume.
      db.set_kernel_hook(vc, [&arrivals, &b](const net::An2Device::RxEvent&) {
        arrivals.push_back(b.now());
        return true;
      });
      co_await self.sleep_for(us(500000.0));
    });
    s.queue().schedule_at(100, [&] {
      std::vector<std::uint8_t> m(size, 1);
      for (int i = 0; i < 16; ++i) da.send(0, m);
    });
    s.run(us(1e6));
    ASSERT_EQ(arrivals.size(), 16u);
    const double min_gap_us =
        size / da.config().bandwidth_mbytes_per_sec;  // serialization only
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
      const double gap = sim::to_us(arrivals[i] - arrivals[i - 1]);
      EXPECT_GE(gap + 0.5, min_gap_us) << "size " << size << " gap " << i;
    }
  }
}

// ---------------------------------------------------------------- tcp

/// TCP delivers exactly the sent byte stream under combined loss and
/// duplication, across randomized sizes and fault seeds.
class TcpChaos : public ::testing::TestWithParam<int> {};

TEST_P(TcpChaos, ExactlyOnceInOrder) {
  util::Rng rng(GetParam() + 31337);
  net::An2Config lossy;
  lossy.faults.drop_prob = 0.02 + 0.08 * rng.uniform();
  lossy.faults.dup_prob = 0.02 + 0.15 * rng.uniform();
  lossy.faults.seed = rng.next();

  sim::Simulator s;
  sim::Node& a = s.add_node("a");
  sim::Node& b = s.add_node("b");
  net::An2Device da(a, lossy), db(b, lossy);
  da.connect(db);

  const std::uint32_t total =
      1024 * static_cast<std::uint32_t>(rng.range(4, 24));
  const std::uint64_t pattern_seed = rng.next();
  bool ok = false;

  b.kernel().spawn("rx", [&](sim::Process& self) -> sim::Task {
    proto::An2Link link(self, db, {});
    proto::TcpConfig cfg;
    cfg.local_ip = proto::Ipv4Addr::of(10, 0, 0, 2);
    cfg.remote_ip = proto::Ipv4Addr::of(10, 0, 0, 1);
    cfg.local_port = 5000;
    cfg.remote_port = 4000;
    cfg.iss = 900;
    cfg.rto = us(4000.0);
    proto::TcpConnection conn(link, cfg);
    const bool accepted = co_await conn.accept();
    if (!accepted) co_return;
    const std::uint32_t buf = self.segment().base;
    std::uint32_t got = 0;
    while (got < total) {
      const std::uint32_t n = co_await conn.read_into(buf + got, total - got);
      if (n == 0) break;
      got += n;
    }
    util::Rng check(pattern_seed);
    bool match = got == total;
    const std::uint8_t* p = self.node().mem(buf, total);
    for (std::uint32_t i = 0; i < got && match; ++i) {
      match = p[i] == static_cast<std::uint8_t>(check.next());
    }
    ok = match;
  });
  a.kernel().spawn("tx", [&](sim::Process& self) -> sim::Task {
    proto::An2Link link(self, da, {});
    proto::TcpConfig cfg;
    cfg.local_ip = proto::Ipv4Addr::of(10, 0, 0, 1);
    cfg.remote_ip = proto::Ipv4Addr::of(10, 0, 0, 2);
    cfg.local_port = 4000;
    cfg.remote_port = 5000;
    cfg.iss = 100;
    cfg.rto = us(4000.0);
    cfg.max_retries = 40;
    proto::TcpConnection conn(link, cfg);
    co_await self.sleep_for(us(500.0));
    const bool connected = co_await conn.connect();
    if (!connected) co_return;
    const std::uint32_t buf = self.segment().base;
    util::Rng fill(pattern_seed);
    std::uint8_t* p = self.node().mem(buf, total);
    for (std::uint32_t i = 0; i < total; ++i) {
      p[i] = static_cast<std::uint8_t>(fill.next());
    }
    for (std::uint32_t off = 0; off < total; off += 8192) {
      const bool wrote =
          co_await conn.write_from(buf + off, std::min(8192u, total - off));
      if (!wrote) co_return;
    }
  });
  s.run(us(5e6));
  EXPECT_TRUE(ok) << "drop " << lossy.faults.drop_prob << " dup "
                  << lossy.faults.dup_prob << " total " << total;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpChaos, ::testing::Range(0, 12));

}  // namespace
}  // namespace ash
