#include "core/ash.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "core/ash_env.hpp"
#include "core/upcall.hpp"
#include "dilp/stdpipes.hpp"
#include "sandbox/sfi.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/checksum.hpp"
#include "vcode/builder.hpp"
#include "vcode/codecache.hpp"

namespace ash::core {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;
using vcode::Builder;
using vcode::kRegArg0;
using vcode::kRegArg1;
using vcode::kRegArg2;
using vcode::kRegArg3;
using vcode::Reg;

/// Remote-increment handler (the Table V workload): r3 = address of the
/// counter in the owner's memory; loads it, increments, stores back, and
/// replies with the original 4-byte message.
vcode::Program remote_increment_ash() {
  Builder b;
  const Reg v = b.reg();
  b.lw(v, kRegArg2, 0);          // counter value
  b.addiu(v, v, 1);
  b.sw(v, kRegArg2, 0);
  b.t_send(kRegArg3, kRegArg0, kRegArg1);  // echo the message back
  b.movi(kRegArg0, 1);
  b.halt();
  return b.take();
}

struct AshWorld {
  Simulator sim;
  Node* a;
  Node* b;
  net::An2Device* dev_a;
  net::An2Device* dev_b;
  AshSystem* ash_b;

  AshWorld() {
    a = &sim.add_node("a");
    b = &sim.add_node("b");
    dev_a = new net::An2Device(*a);
    dev_b = new net::An2Device(*b);
    dev_a->connect(*dev_b);
    ash_b = new AshSystem(*b);
  }
  ~AshWorld() {
    delete ash_b;
    delete dev_a;
    delete dev_b;
  }
};

TEST(AshSystem, DownloadSandboxesByDefault) {
  AshWorld w;
  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    std::string error;
    sandbox::Report report;
    const int id = w.ash_b->download(self, remote_increment_ash(), {},
                                     &error, &report);
    EXPECT_GE(id, 0) << error;
    EXPECT_TRUE(w.ash_b->program(id).sandboxed);
    EXPECT_GT(report.added(), 0u);
    co_await self.compute(1);
  });
  w.sim.run();
}

TEST(AshSystem, DownloadRejectsFloatingPoint) {
  AshWorld w;
  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    Builder bld;
    bld.fadd(kRegArg0, kRegArg0, kRegArg1);
    bld.halt();
    std::string error;
    EXPECT_EQ(w.ash_b->download(self, bld.take(), {}, &error), -1);
    EXPECT_FALSE(error.empty());
    AshOptions unsafe;
    unsafe.sandboxed = false;
    EXPECT_EQ(w.ash_b->download(self, bld.take(), unsafe, &error), -1);
    co_await self.compute(1);
  });
  w.sim.run();
}

TEST(AshSystem, RemoteIncrementEndToEnd) {
  // Full path: node a sends; the ASH on node b increments a counter in the
  // owner's memory and replies; node a receives the echo.
  AshWorld w;
  bool echoed = false;
  std::uint32_t counter_addr = 0;

  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    counter_addr = self.segment().base + 0x100;
    const int vc = w.dev_b->bind_vc(self);
    for (int i = 0; i < 8; ++i) {
      w.dev_b->supply_buffer(
          vc, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
    }
    std::string error;
    const int id =
        w.ash_b->download(self, remote_increment_ash(), {}, &error);
    EXPECT_GE(id, 0) << error;
    w.ash_b->attach_an2(*w.dev_b, vc, id, counter_addr);
    // The owner sleeps; the ASH handles everything in kernel context.
    co_await self.sleep_for(us(100000.0));
    EXPECT_EQ(w.ash_b->stats(id).invocations, 3u);
    EXPECT_EQ(w.ash_b->stats(id).commits, 3u);
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    const int vc = w.dev_a->bind_vc(self);
    w.dev_a->supply_buffer(vc, self.segment().base, 64);
    for (int i = 0; i < 3; ++i) {
      const std::uint8_t ping[] = {9, 9, 9, 9};
      co_await self.syscall(w.dev_a->config().tx_kernel_work);
      w.dev_a->send(0, ping);
      co_await w.dev_a->arrival_channel(vc).wait(self);
      const auto d = w.dev_a->poll(vc);
      EXPECT_TRUE(d.has_value());
      if (d) {
        echoed = true;
        w.dev_a->return_buffer(vc, self.segment().base, 64);
      }
    }
  });
  w.sim.run();
  EXPECT_TRUE(echoed);
  const std::uint8_t* ctr = w.b->mem(counter_addr, 4);
  EXPECT_EQ(ctr[0], 3);  // incremented once per message
}

TEST(AshSystem, VoluntaryAbortFallsBackToNormalDelivery) {
  AshWorld w;
  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    const int vc = w.dev_b->bind_vc(self);
    w.dev_b->supply_buffer(vc, self.segment().base, 64);
    Builder bld;
    bld.abort(42);  // always decline
    std::string error;
    const int id = w.ash_b->download(self, bld.take(), {}, &error);
    EXPECT_GE(id, 0) << error;
    w.ash_b->attach_an2(*w.dev_b, vc, id);
    co_await w.dev_b->arrival_channel(vc).wait(self);
    EXPECT_TRUE(w.dev_b->poll(vc).has_value());  // delivered normally
    EXPECT_EQ(w.ash_b->stats(id).voluntary_aborts, 1u);
    EXPECT_EQ(w.ash_b->stats(id).commits, 0u);
  });
  w.sim.queue().schedule_at(us(200.0), [&] {
    const std::uint8_t m[] = {1, 2, 3, 4};
    w.dev_a->send(0, m);
  });
  w.sim.run();
}

TEST(AshSystem, RunawayHandlerIsInvoluntarilyAborted) {
  AshWorld w;
  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    const int vc = w.dev_b->bind_vc(self);
    w.dev_b->supply_buffer(vc, self.segment().base, 64);
    Builder bld;
    vcode::Label loop = bld.label();
    bld.bind(loop);
    bld.jmp(loop);  // infinite loop
    std::string error;
    const int id = w.ash_b->download(self, bld.take(), {}, &error);
    EXPECT_GE(id, 0) << error;
    w.ash_b->attach_an2(*w.dev_b, vc, id);
    co_await w.dev_b->arrival_channel(vc).wait(self);
    EXPECT_TRUE(w.dev_b->poll(vc).has_value());
    EXPECT_EQ(w.ash_b->stats(id).involuntary_aborts, 1u);
    // The handler burned its full timer budget before being killed.
    EXPECT_GE(w.ash_b->stats(id).cycles, w.b->cost().ash_max_runtime);
  });
  w.sim.queue().schedule_at(us(200.0), [&] {
    const std::uint8_t m[] = {1, 2, 3, 4};
    w.dev_a->send(0, m);
  });
  w.sim.run();
}

TEST(AshSystem, WildStoresCannotEscapeOwnerSegment) {
  AshWorld w;
  w.b->kernel().spawn("victim", [](Process& self) -> Task {
    co_await self.sleep_for(us(50000.0));
  });
  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    const int vc = w.dev_b->bind_vc(self);
    w.dev_b->supply_buffer(vc, self.segment().base, 64);
    Builder bld;
    const Reg addr = bld.reg();
    const Reg v = bld.reg();
    // Try to smash the victim's segment (the first spawned process).
    bld.movi(addr, sim::Kernel::kSegmentSize + 0x10);
    bld.movi(v, 0xffffffffu);
    bld.sw(v, addr, 0);
    bld.movi(kRegArg0, 1);
    bld.halt();
    std::string error;
    const int id = w.ash_b->download(self, bld.take(), {}, &error);
    EXPECT_GE(id, 0) << error;
    w.ash_b->attach_an2(*w.dev_b, vc, id);
    co_await self.sleep_for(us(20000.0));
    EXPECT_EQ(w.ash_b->stats(id).commits, 1u);  // it ran...
  });
  w.sim.queue().schedule_at(us(200.0), [&] {
    const std::uint8_t m[] = {1, 2, 3, 4};
    w.dev_a->send(0, m);
  });
  w.sim.run();
  // ...but the victim's memory is untouched (store was masked into the
  // owner's own segment).
  const std::uint8_t* victim = w.b->mem(sim::Kernel::kSegmentSize + 0x10, 4);
  EXPECT_EQ(victim[0], 0);

  // The same program as an UNSAFE ash would have written there — checked
  // via a fresh world to show the sandbox is what made the difference.
  AshWorld w2;
  w2.b->kernel().spawn("victim", [](Process& self) -> Task {
    co_await self.sleep_for(us(50000.0));
  });
  w2.b->kernel().spawn("owner", [&](Process& self) -> Task {
    const int vc = w2.dev_b->bind_vc(self);
    w2.dev_b->supply_buffer(vc, self.segment().base, 64);
    Builder bld;
    const Reg addr = bld.reg();
    const Reg v = bld.reg();
    bld.movi(addr, sim::Kernel::kSegmentSize + 0x10);
    bld.movi(v, 0xffffffffu);
    bld.sw(v, addr, 0);
    bld.movi(kRegArg0, 1);
    bld.halt();
    AshOptions unsafe;
    unsafe.sandboxed = false;
    std::string error;
    const int id = w2.ash_b->download(self, bld.take(), unsafe, &error);
    EXPECT_GE(id, 0) << error;
    w2.ash_b->attach_an2(*w2.dev_b, vc, id);
    co_await self.sleep_for(us(20000.0));
  });
  w2.sim.queue().schedule_at(us(200.0), [&] {
    const std::uint8_t m[] = {1, 2, 3, 4};
    w2.dev_a->send(0, m);
  });
  w2.sim.run();
  // Unsafe ASH writes into what is actually the victim's segment — the
  // AshEnv's defence-in-depth only confines to owner+message for loads and
  // owner for stores... so the unsafe handler faults instead of escaping.
  // Either way the victim is protected by the environment:
  const std::uint8_t* victim2 =
      w2.b->mem(sim::Kernel::kSegmentSize + 0x10, 4);
  EXPECT_EQ(victim2[0], 0);
}

TEST(AshSystem, DilpFromHandlerWithPersistentExchange) {
  // The TCP-receive pattern: handler runs a cksum|copy DILP over the
  // message into application memory, reading the accumulator back through
  // the persistent-exchange registers.
  AshWorld w;
  std::uint32_t acc_out = 0;
  std::uint32_t dst_addr = 0;
  const std::vector<std::uint8_t> payload = {1, 2,  3,  4,  5,  6,
                                             7, 8, 9, 10, 11, 12};

  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    const int vc = w.dev_b->bind_vc(self);
    w.dev_b->supply_buffer(vc, self.segment().base, 4096);
    dst_addr = self.segment().base + 0x1000;

    dilp::PipeList pl;
    pl.add(dilp::make_cksum_pipe(nullptr));
    std::string error;
    const int ilp =
        w.ash_b->dilp().register_ilp(pl, dilp::Direction::Read, &error);
    EXPECT_GE(ilp, 0) << error;

    Builder bld;
    const Reg ilp_reg = bld.reg();
    bld.movi(ilp_reg, static_cast<std::uint32_t>(ilp));
    bld.movi(kDilpPersistentBase, 0);  // seed accumulator
    // TDilp(id=ilp, src=r1 (msg), dst=r3 (user arg), len=r2)
    bld.t_dilp(ilp_reg, kRegArg0, kRegArg2, kRegArg1);
    // Store the accumulator into owner memory at user_arg + 64 so the
    // test can read it out.
    bld.sw(kDilpPersistentBase, kRegArg2, 64);
    bld.movi(kRegArg0, 1);
    bld.halt();

    std::string err2;
    const int id = w.ash_b->download(self, bld.take(), {}, &err2);
    EXPECT_GE(id, 0) << err2;
    w.ash_b->attach_an2(*w.dev_b, vc, id, dst_addr);
    co_await self.sleep_for(us(50000.0));
  });
  w.sim.queue().schedule_at(us(200.0), [&] { w.dev_a->send(0, payload); });
  w.sim.run();

  // Data landed at dst_addr, checksum accumulator at dst_addr+64.
  const std::uint8_t* d = w.b->mem(dst_addr, 12);
  for (int i = 0; i < 12; ++i) ASSERT_EQ(d[i], payload[static_cast<std::size_t>(i)]);
  std::memcpy(&acc_out, w.b->mem(dst_addr + 64, 4), 4);
  EXPECT_EQ(util::fold16_le_word_sum(acc_out),
            util::fold16(util::cksum_partial(payload)));
}

TEST(AshSystem, LivelockQuotaDefersExcessMessages) {
  AshWorld w;
  w.ash_b->set_livelock_quota(2, us(100000.0));
  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    const int vc = w.dev_b->bind_vc(self);
    for (int i = 0; i < 8; ++i) {
      w.dev_b->supply_buffer(
          vc, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
    }
    Builder bld;
    bld.movi(kRegArg0, 1);
    bld.halt();
    std::string error;
    const int id = w.ash_b->download(self, bld.take(), {}, &error);
    w.ash_b->attach_an2(*w.dev_b, vc, id);
    co_await self.sleep_for(us(50000.0));
    // 5 messages: 2 via the ASH, 3 deferred to normal delivery.
    EXPECT_EQ(w.ash_b->stats(id).commits, 2u);
    EXPECT_EQ(w.ash_b->stats(id).livelock_deferrals, 3u);
    int delivered = 0;
    while (w.dev_b->poll(vc).has_value()) ++delivered;
    EXPECT_EQ(delivered, 3);
  });
  w.sim.queue().schedule_at(us(200.0), [&] {
    const std::uint8_t m[] = {1, 2, 3, 4};
    for (int i = 0; i < 5; ++i) w.dev_a->send(0, m);
  });
  w.sim.run();
}

TEST(AshSystem, LivelockQuotaIsSharedAcrossOneOwnersHandlers) {
  // The quota is "per process per window" (Section VI-4): a process with
  // two handlers gets ONE share, not two. Six messages split across two
  // VCs of the same owner must yield exactly `quota` handler runs total.
  AshWorld w;
  w.ash_b->set_livelock_quota(2, us(100000.0));
  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    const int vc0 = w.dev_b->bind_vc(self);
    const int vc1 = w.dev_b->bind_vc(self);
    for (int i = 0; i < 8; ++i) {
      w.dev_b->supply_buffer(
          vc0, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
      w.dev_b->supply_buffer(
          vc1,
          self.segment().base + 0x1000 + 64u * static_cast<std::uint32_t>(i),
          64);
    }
    Builder bld;
    bld.movi(kRegArg0, 1);
    bld.halt();
    std::string error;
    const int id0 = w.ash_b->download(self, bld.take(), {}, &error);
    Builder bld2;
    bld2.movi(kRegArg0, 1);
    bld2.halt();
    const int id1 = w.ash_b->download(self, bld2.take(), {}, &error);
    w.ash_b->attach_an2(*w.dev_b, vc0, id0);
    w.ash_b->attach_an2(*w.dev_b, vc1, id1);
    co_await self.sleep_for(us(50000.0));

    const auto& s0 = w.ash_b->stats(id0);
    const auto& s1 = w.ash_b->stats(id1);
    EXPECT_EQ(s0.commits + s1.commits, 2u);
    EXPECT_EQ(s0.livelock_deferrals + s1.livelock_deferrals, 4u);
  });
  w.sim.queue().schedule_at(us(200.0), [&] {
    const std::uint8_t m[] = {1, 2, 3, 4};
    for (int i = 0; i < 3; ++i) {
      w.dev_a->send(0, m);
      w.dev_a->send(1, m);
    }
  });
  w.sim.run();
}

TEST(AshSystem, InvalidIdFallsBackInsteadOfThrowing) {
  // A stale id reaching invoke (possible once handlers can be revoked or
  // a custom demux point misbehaves) must not unwind through the device
  // driver: it counts a fallback and declines the message.
  AshWorld w;
  MsgContext m;
  m.addr = 0x100;
  m.len = 4;
  const auto drop = [](int, std::span<const std::uint8_t>) { return true; };
  EXPECT_FALSE(w.ash_b->invoke(999, m, drop, 0));
  EXPECT_EQ(w.ash_b->bad_id_fallbacks(), 1u);
  EXPECT_FALSE(w.ash_b->invoke(-1, m, drop, 0));
  EXPECT_EQ(w.ash_b->bad_id_fallbacks(), 2u);
  EXPECT_EQ(w.ash_b->handler_count(), 0u);
}

TEST(Upcall, HandlerRunsAndRepliesWithoutScheduling) {
  AshWorld w;
  UpcallManager upcalls(*w.b);
  bool got_reply = false;

  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    const int vc = w.dev_b->bind_vc(self);
    w.dev_b->supply_buffer(vc, self.segment().base, 64);
    upcalls.attach_an2(*w.dev_b, vc, [&](const UpcallManager::Ctx& ctx) {
      const std::uint8_t* msg = w.b->mem(ctx.msg_addr, ctx.msg_len);
      std::vector<std::uint8_t> reply(msg, msg + ctx.msg_len);
      reply[0] += 1;
      ctx.send(ctx.channel, reply);
      return UpcallManager::Result{us(2.0), true};
    });
    co_await self.sleep_for(us(100000.0));
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    const int vc = w.dev_a->bind_vc(self);
    w.dev_a->supply_buffer(vc, self.segment().base, 64);
    const std::uint8_t ping[] = {7, 0, 0, 0};
    co_await self.syscall(w.dev_a->config().tx_kernel_work);
    w.dev_a->send(0, ping);
    co_await w.dev_a->arrival_channel(vc).wait(self);
    const auto d = w.dev_a->poll(vc);
    EXPECT_TRUE(d.has_value());
    if (d) got_reply = w.a->mem(d->addr, 1)[0] == 8;
  });
  w.sim.run();
  EXPECT_TRUE(got_reply);
  EXPECT_EQ(upcalls.invocations(), 1u);
}

TEST(AshSystem, AshFasterThanUpcallForRemoteIncrement) {
  // The structural claim behind Table V: handling the same message costs
  // less kernel-path time as an ASH than as an upcall.
  auto kernel_cycles = [&](bool use_ash) {
    AshWorld w;
    UpcallManager upcalls(*w.b);
    w.b->kernel().spawn("owner", [&, use_ash](Process& self) -> Task {
      const int vc = w.dev_b->bind_vc(self);
      w.dev_b->supply_buffer(vc, self.segment().base, 64);
      const std::uint32_t ctr = self.segment().base + 0x100;
      if (use_ash) {
        std::string error;
        const int id =
            w.ash_b->download(self, remote_increment_ash(), {}, &error);
        w.ash_b->attach_an2(*w.dev_b, vc, id, ctr);
      } else {
        upcalls.attach_an2(*w.dev_b, vc, [&w, ctr](const UpcallManager::Ctx& ctx) {
          std::uint32_t v;
          std::memcpy(&v, w.b->mem(ctr, 4), 4);
          ++v;
          std::memcpy(w.b->mem(ctr, 4), &v, 4);
          const std::uint8_t* msg = w.b->mem(ctx.msg_addr, ctx.msg_len);
          ctx.send(ctx.channel, {msg, msg + ctx.msg_len});
          return UpcallManager::Result{us(1.0), true};
        });
      }
      co_await self.sleep_for(us(100000.0));
    });
    w.sim.queue().schedule_at(us(200.0), [&] {
      const std::uint8_t m[] = {1, 2, 3, 4};
      w.dev_a->send(0, m);
    });
    w.sim.run();
    return w.b->kernel_cycles_total();
  };

  const auto ash_cycles = kernel_cycles(true);
  const auto upcall_cycles = kernel_cycles(false);
  EXPECT_LT(ash_cycles + sim::us(10.0), upcall_cycles);
}

TEST(AshSystem, CodeCacheInlinedCacheModelBitIdentical) {
  // The code cache inlines the node's direct-mapped cache model when the
  // environment offers it (AshEnv::fast_mem); the interpreter always goes
  // through the virtual mem_cycles hook. Run a memory-heavy handler on two
  // fresh (cold-cache) nodes, one per engine, and require identical
  // simulated results AND identical D-cache hit/miss counters.
  struct Run {
    vcode::ExecResult res;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  const auto run_engine = [](bool use_cache) -> Run {
    Builder bld;
    const Reg i = bld.reg(), sum = bld.reg(), v = bld.reg(), p = bld.reg(),
              lim = bld.reg();
    bld.movi(i, 0);
    bld.movi(sum, 0);
    bld.movi(lim, 1024);
    const auto loop = bld.label();
    bld.bind(loop);
    bld.addu(p, kRegArg0, i);  // msg word + a sub-word byte
    bld.lw(v, p, 0);
    bld.addu(sum, sum, v);
    bld.lbu(v, p, 1);
    bld.addu(sum, sum, v);
    bld.addu(p, kRegArg2, i);  // owner scratch: word + halfword store
    bld.sw(sum, p, 0);
    bld.sh(sum, p, 2);
    bld.addiu(i, i, 4);
    bld.bltu(i, lim, loop);
    bld.addiu(kRegArg0, sum, 0);
    bld.halt();

    sim::Simulator s;
    sim::Node& node = s.add_node("n");
    const std::uint32_t seg = 0x100000;
    sandbox::Options sb;
    sb.segment = {seg, 0x100000};
    std::string error;
    auto boxed = sandbox::sandbox(bld.take(), sb, &error);
    EXPECT_TRUE(boxed.has_value()) << error;
    if (!boxed) return {};
    const vcode::Program installed = std::move(boxed->program);

    const std::uint32_t msg = seg + 0x8000;
    const std::uint32_t scratch = seg + 0x4000;
    for (std::uint32_t k = 0; k < 1024; ++k) {
      *node.mem(msg + k, 1) = static_cast<std::uint8_t>(k * 131u + 7u);
    }
    AshEnv::Config ec;
    ec.node = &node;
    ec.owner_seg = {seg, 0x100000};
    ec.msg_addr = msg;
    ec.msg_len = 1024;
    AshEnv env(ec);

    Run out;
    if (use_cache) {
      const vcode::CodeCache cache(installed);
      std::array<std::uint32_t, vcode::kNumRegs> regs{};
      regs[kRegArg0] = msg;
      regs[kRegArg1] = 1024;
      regs[kRegArg2] = scratch;
      out.res = cache.run(env, regs, {});
    } else {
      vcode::Interpreter interp(installed, env);
      interp.set_args(msg, 1024, scratch, 0);
      out.res = interp.run({});
    }
    out.hits = node.dcache().hits();
    out.misses = node.dcache().misses();
    return out;
  };

  const Run interp = run_engine(false);
  const Run cached = run_engine(true);
  ASSERT_EQ(interp.res.outcome, vcode::Outcome::Halted)
      << vcode::to_string(interp.res.outcome);
  EXPECT_EQ(cached.res.outcome, interp.res.outcome);
  EXPECT_EQ(cached.res.insns, interp.res.insns);
  EXPECT_EQ(cached.res.cycles, interp.res.cycles);
  EXPECT_EQ(cached.res.result, interp.res.result);
  EXPECT_EQ(cached.hits, interp.hits);
  EXPECT_EQ(cached.misses, interp.misses);
  // The workload must actually exercise the model on both sides.
  EXPECT_GT(interp.hits, 0u);
  EXPECT_GT(interp.misses, 0u);
}

}  // namespace
}  // namespace ash::core
