// Minimized regression tests for the protocol bugs flushed out by the
// fault-injection soaks and the packet fuzzer (tools/packetfuzz):
//
//  1. IpReassembler grew without bound: expire() was never called on any
//     live receive path, and nothing capped buffered bytes — a fragment
//     stream with missing tails pinned memory forever.
//  2. IpReassembler let overlapping/duplicate fragments rewrite
//     already-accepted bytes, and a fragment claiming bytes past the
//     pinned total length was accepted.
//  3. TcpConnection::retransmit() returning false (retry exhaustion)
//     left a half-open TCB: state stayed Established/SynSent, the
//     retransmit queue kept its segments, and the shared TCB still
//     claimed the connection was alive.
//
// (Bug 4 — An2 duplication silently skipped on the switched path — is
// regression-tested in net_fault_test.cpp next to the injector tests.)
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "ashc/eval.hpp"
#include "ashc/rule.hpp"
#include "proto/ip_frag.hpp"
#include "proto/tcp.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"

namespace ash::proto {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

const Ipv4Addr kSrc = Ipv4Addr::of(10, 0, 0, 1);
const Ipv4Addr kDst = Ipv4Addr::of(10, 0, 0, 2);

std::vector<std::uint8_t> frag(Ipv4Addr src, std::uint16_t ident,
                               std::uint32_t byte_off, bool more,
                               std::span<const std::uint8_t> pay) {
  std::vector<std::uint8_t> d(kIpHeaderLen + pay.size());
  IpHeader h;
  h.protocol = 17;
  h.src = src;
  h.dst = kDst;
  h.total_len = static_cast<std::uint16_t>(d.size());
  h.ident = ident;
  h.more_fragments = more;
  h.frag_offset = static_cast<std::uint16_t>(byte_off / 8);
  encode_ip({d.data(), kIpHeaderLen}, h);
  if (!pay.empty()) {
    std::memcpy(d.data() + kIpHeaderLen, pay.data(), pay.size());
  }
  return d;
}

// ---------------------------------------------- bug 1: unbounded growth

TEST(ReassemblerRegression, StalePartialsAgeOutOnTheLiveFeedPath) {
  // Pre-fix: every first-fragment-without-tail stayed in pending_
  // forever unless the owner happened to call expire() — no caller did.
  IpReassembler::Limits lim;
  lim.max_datagrams = 0;      // isolate the age bound
  lim.max_buffered_bytes = 0;
  lim.max_age_feeds = 16;
  IpReassembler r(lim);

  const std::uint8_t pay[64] = {1};
  for (std::uint16_t ident = 0; ident < 200; ++ident) {
    (void)r.feed(frag(kSrc, ident, 0, /*more=*/true, pay));
  }
  // Auto-expiry keeps only the last max_age_feeds worth of partials.
  EXPECT_LE(r.pending(), 17u);
  EXPECT_GT(r.stats().expired, 0u);
}

TEST(ReassemblerRegression, BufferedBytesRespectTheCap) {
  IpReassembler::Limits lim;
  lim.max_datagrams = 0;
  lim.max_buffered_bytes = 4096;
  lim.max_age_feeds = 0;  // isolate the byte bound
  IpReassembler r(lim);

  std::vector<std::uint8_t> pay(1024, 0xee);
  for (std::uint16_t ident = 0; ident < 64; ++ident) {
    (void)r.feed(frag(kSrc, ident, 0, /*more=*/true, pay));
    ASSERT_LE(r.buffered_bytes(), 4096u);
  }
  EXPECT_GT(r.stats().evicted, 0u);
}

TEST(ReassemblerRegression, DatagramCountRespectsTheCap) {
  IpReassembler::Limits lim;
  lim.max_datagrams = 4;
  lim.max_buffered_bytes = 0;
  lim.max_age_feeds = 0;
  IpReassembler r(lim);

  const std::uint8_t pay[16] = {7};
  for (std::uint16_t ident = 0; ident < 40; ++ident) {
    (void)r.feed(frag(kSrc, ident, 0, /*more=*/true, pay));
    ASSERT_LE(r.pending(), 4u);
  }
  // Eviction is oldest-first: the survivors are the newest idents, so a
  // tail arriving for the newest partial still completes it.
  const std::uint8_t tail[8] = {9};
  const auto out = r.feed(frag(kSrc, 39, 16, /*more=*/false, tail));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload.size(), 24u);
}

// ------------------------------------- bug 2: overlap rewrite / hostile

TEST(ReassemblerRegression, OverlappingFragmentCannotRewriteAcceptedBytes) {
  // Pre-fix: the second copy of a block simply memcpy'd over the first —
  // a spoofed "duplicate" could rewrite payload after acceptance.
  IpReassembler r;
  std::vector<std::uint8_t> first(16, 0xaa);
  std::vector<std::uint8_t> forged(16, 0xbb);
  std::vector<std::uint8_t> tail(8, 0xcc);

  EXPECT_FALSE(r.feed(frag(kSrc, 5, 0, true, first)).has_value());
  EXPECT_FALSE(r.feed(frag(kSrc, 5, 0, true, forged)).has_value());  // dup
  const auto out = r.feed(frag(kSrc, 5, 16, false, tail));
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->payload.size(), 24u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(out->payload[i], 0xaa) << "byte " << i << " was rewritten";
  }
  EXPECT_GT(r.stats().overlaps, 0u);
}

TEST(ReassemblerRegression, FragmentBeyondPinnedLengthIsRejected) {
  IpReassembler r;
  const std::uint8_t head[8] = {1};
  const std::uint8_t tail[8] = {2};
  const std::uint8_t beyond[8] = {3};

  EXPECT_FALSE(r.feed(frag(kSrc, 6, 0, true, head)).has_value());
  // Final fragment pins total length at 32 (bytes 8..24 still missing).
  EXPECT_FALSE(r.feed(frag(kSrc, 6, 24, false, tail)).has_value());
  // A fragment claiming bytes at offset 64 is hostile — must not grow
  // the datagram past its pinned length.
  const std::uint64_t malformed_before = r.stats().malformed;
  EXPECT_FALSE(r.feed(frag(kSrc, 6, 64, true, beyond)).has_value());
  EXPECT_EQ(r.stats().malformed, malformed_before + 1);
  // A second, disagreeing final fragment is equally hostile.
  EXPECT_FALSE(r.feed(frag(kSrc, 6, 40, false, beyond)).has_value());
  EXPECT_EQ(r.stats().malformed, malformed_before + 2);
}

TEST(ReassemblerRegression, ZeroLengthFragmentIsMalformedNotBuffered) {
  IpReassembler r;
  const auto d = frag(kSrc, 8, 8, true, {});
  EXPECT_FALSE(r.feed(d).has_value());
  EXPECT_EQ(r.pending(), 0u);
  EXPECT_GT(r.stats().malformed, 0u);
}

// ------------------------------------------- bug 3: half-open TCP abort

TEST(TcpRegression, ConnectAgainstDeadPeerTearsDownCompletely) {
  // Pre-fix: connect() returned false after max_retries but left
  // state_ == SynSent with the SYN still queued for retransmission and
  // the shared TCB advertising the stale state.
  Simulator sim;
  Node& na = sim.add_node("a");
  Node& nb = sim.add_node("b");
  net::An2Config dead;
  dead.faults.drop_prob = 1.0;  // peer exists, wire eats everything
  net::An2Device dev_a(na, dead);
  net::An2Device dev_b(nb);
  dev_a.connect(dev_b);

  bool connected = true;
  TcpState final_state = TcpState::SynSent;
  std::uint32_t shm_state = 999;
  std::size_t retx_left = 999;
  std::uint64_t aborts = 0;

  na.kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, dev_a, {});
    TcpConfig c;
    c.local_ip = kSrc;
    c.remote_ip = kDst;
    c.local_port = 4000;
    c.remote_port = 5000;
    c.rto = us(1000.0);
    c.max_retries = 3;
    TcpConnection conn(link, c);
    connected = co_await conn.connect();
    final_state = conn.state();
    shm_state = conn.shm().get(tcb::kState);
    retx_left = conn.retx_depth();
    aborts = conn.stats().aborts;
  });
  sim.run(us(1e6));

  EXPECT_FALSE(connected);
  EXPECT_EQ(final_state, TcpState::Closed);
  EXPECT_EQ(shm_state, static_cast<std::uint32_t>(TcpState::Closed));
  EXPECT_EQ(retx_left, 0u);  // nothing left half-queued
  EXPECT_EQ(aborts, 1u);
}

TEST(TcpRegression, EstablishedConnectionAbortsCleanlyWhenLinkDies) {
  // Establish over a clean link, then kill it mid-write: the writer must
  // exhaust its retries and come back with a fully torn down TCB, and a
  // subsequent read must return 0 instead of blocking forever.
  Simulator sim;
  Node& na = sim.add_node("a");
  Node& nb = sim.add_node("b");
  net::An2Device dev_a(na);
  net::An2Device dev_b(nb);
  dev_a.connect(dev_b);

  bool wrote = true;
  std::uint32_t post_abort_read = 999;
  TcpState final_state = TcpState::SynSent;
  std::size_t retx_left = 999;
  std::uint64_t aborts = 0;

  nb.kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, dev_b, {});
    TcpConfig c;
    c.local_ip = kDst;
    c.remote_ip = kSrc;
    c.local_port = 5000;
    c.remote_port = 4000;
    c.iss = 900;
    c.rto = us(1000.0);
    c.max_retries = 3;
    TcpConnection conn(link, c);
    co_await conn.accept();
    // Server reads a little, then goes silent (no more ACKs will flow
    // because the link dies underneath both sides).
    co_await conn.read_into(self.segment().base, 1024);
  });
  na.kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, dev_a, {});
    TcpConfig c;
    c.local_ip = kSrc;
    c.remote_ip = kDst;
    c.local_port = 4000;
    c.remote_port = 5000;
    c.iss = 100;
    c.rto = us(1000.0);
    c.max_retries = 3;
    TcpConnection conn(link, c);
    co_await self.sleep_for(us(500.0));
    co_await conn.connect();

    // First write goes through...
    const std::uint32_t buf = self.segment().base;
    std::memset(na.mem(buf, 1024), 0x42, 1024);
    co_await conn.write_from(buf, 1024);

    // ...then both directions die.
    net::FaultConfig dead;
    dead.drop_prob = 1.0;
    dev_a.set_faults(dead);
    dev_b.set_faults(dead);

    wrote = co_await conn.write_from(buf, 1024);
    final_state = conn.state();
    retx_left = conn.retx_depth();
    aborts = conn.stats().aborts;
    post_abort_read = co_await conn.read_into(buf, 64);
  });
  sim.run(us(1e6));

  EXPECT_FALSE(wrote);
  EXPECT_EQ(final_state, TcpState::Closed);
  EXPECT_EQ(retx_left, 0u);
  EXPECT_EQ(aborts, 1u);
  EXPECT_EQ(post_abort_read, 0u);  // aborted connection reads as EOF
}

// --------------------------------------------------------------------------
// Minimized rule-compiler contract cases (from the packetfuzz rules /
// rulesverify legs and the ashc differential suite). Each pins one
// semantic edge where the compiled VCODE and the reference interpreter
// are easiest to drive apart; the frames are the minimized repro shapes.
// --------------------------------------------------------------------------

TEST(AshcRegression, WholeWordZeroAtFrameBoundary) {
  // A field whose 32-bit word sticks one byte past the frame reads as
  // ZERO — including the bytes that do exist. An implementation reading
  // "the available prefix" diverges exactly at len == offset+3.
  ashc::RuleSet rs;
  ashc::Rule r;
  r.name = "m";
  r.pred = ashc::p_atom(ashc::m_eq(4, 1, 0xaa));
  r.actions.push_back(ashc::a_count(0));
  rs.rules.push_back(r);

  std::vector<std::uint8_t> st = ashc::init_state(rs);
  std::vector<std::uint8_t> f(7, 0xaa);  // word [4..8) needs len 8
  EXPECT_FALSE(ashc::eval(rs, f, st, 0).consumed);
  f.resize(8, 0xaa);  // now the word fits
  EXPECT_TRUE(ashc::eval(rs, f, st, 0).consumed);
  EXPECT_EQ(st[0], 1u);  // only the len-8 frame counted
}

TEST(AshcRegression, StateWritesPersistAcrossDeliverVerdict) {
  // The kernel never rolls back memory writes on Abort; a Deliver
  // verdict must still leave the counter incremented (while discarding
  // any staged sends). An eval() that "undoes" the non-consumed path
  // diverges from every backend.
  ashc::RuleSet rs;
  rs.templates.push_back(ashc::Template{8, {9, 9, 9, 9}});
  ashc::Rule r;
  r.name = "peek";
  r.pred = ashc::p_and({});
  r.actions.push_back(ashc::a_count(0));
  r.actions.push_back(ashc::a_reply(8, 4, 2));
  r.verdict = ashc::Verdict::Deliver;
  rs.rules.push_back(r);

  std::vector<std::uint8_t> st = ashc::init_state(rs);
  const std::vector<std::uint8_t> f(16, 0);
  const auto res = ashc::eval(rs, f, st, 0);
  EXPECT_FALSE(res.consumed);
  EXPECT_TRUE(res.sends.empty());  // staged reply discarded...
  EXPECT_EQ(st[0], 1u);            // ...but the count survived
}

TEST(AshcRegression, SampleGatesActionsNotTheVerdict) {
  // Sample(n) skips the REMAINING actions on off-modulus messages; the
  // rule's verdict applies regardless. A compiler branching the gate to
  // the next rule instead of this rule's verdict consumes the wrong
  // frames.
  ashc::RuleSet rs;
  ashc::Rule r;
  r.name = "s";
  r.pred = ashc::p_and({});
  r.actions.push_back(ashc::a_sample(2, 0));
  r.actions.push_back(ashc::a_count(4));
  rs.rules.push_back(r);

  std::vector<std::uint8_t> st = ashc::init_state(rs);
  const std::vector<std::uint8_t> f(8, 0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ashc::eval(rs, f, st, 0).consumed) << i;  // always accept
  }
  EXPECT_EQ(st[0], 4u);  // sample counter saw all 4
  EXPECT_EQ(st[4], 2u);  // downstream count only on-modulus (2 of 4)
}

TEST(AshcRegression, SpliceOverwritesTemplateInPlace) {
  // Reply splices physically rewrite the template bytes in state before
  // the send snapshots them — the mutation persists into the NEXT
  // message's reply when that message leaves the spliced field unwritten
  // (whole-word zero splices 00s, not the stale bytes).
  ashc::RuleSet rs;
  rs.templates.push_back(ashc::Template{0, {1, 2, 3, 4, 5, 6, 7, 8}});
  ashc::Rule r;
  r.name = "echo";
  r.pred = ashc::p_and({});
  r.actions.push_back(ashc::a_reply(
      0, 8, 3, {ashc::Splice{4, false, ashc::Field{0, 4}, 0}}));
  rs.rules.push_back(r);

  std::vector<std::uint8_t> st = ashc::init_state(rs);
  const std::vector<std::uint8_t> big = {0xde, 0xad, 0xbe, 0xef};
  auto res = ashc::eval(rs, big, st, 0);
  ASSERT_EQ(res.sends.size(), 1u);
  EXPECT_EQ(res.sends[0].bytes,
            (std::vector<std::uint8_t>{1, 2, 3, 4, 0xde, 0xad, 0xbe, 0xef}));
  // Splice persisted into state...
  EXPECT_EQ(st[4], 0xde);
  // ...and a short frame (word [0..4) doesn't fit in 2 bytes) splices
  // zeros over it, not the stale 0xdeadbeef.
  const std::vector<std::uint8_t> runt = {0x55, 0x55};
  res = ashc::eval(rs, runt, st, 0);
  ASSERT_EQ(res.sends.size(), 1u);
  EXPECT_EQ(res.sends[0].bytes,
            (std::vector<std::uint8_t>{1, 2, 3, 4, 0, 0, 0, 0}));
}

TEST(AshcRegression, Width2FieldIgnoresNeighboringBytes) {
  // A w2 field at offset 0 must compare only bytes 0..1 (bswap16 zeroes
  // the high half). A compiler using bswap32 on the preloaded word sees
  // bytes 2..3 too and rejects this frame.
  ashc::RuleSet rs;
  ashc::Rule r;
  r.name = "w2";
  r.pred = ashc::p_atom(ashc::m_eq(0, 2, 0x1234));
  rs.rules.push_back(r);

  std::vector<std::uint8_t> st = ashc::init_state(rs);
  const std::vector<std::uint8_t> f = {0x12, 0x34, 0xff, 0xee};
  EXPECT_TRUE(ashc::eval(rs, f, st, 0).consumed);
}

}  // namespace
}  // namespace ash::proto
