// The poll() charging contract, cycle-exact (ISSUE 5 audit): poll() itself
// is free; the CALLER charges check-then-charge style —
//   * poll_iteration only AFTER an empty poll,
//   * an2_user_recv_overhead INSTEAD OF (never in addition to) a
//     poll_iteration on the check that finds a frame.
// A sloppy poller that charges the iteration before checking, or charges
// both on a hit, double-charges exactly one poll_iteration per received
// frame — these tests pin the intended totals for both NIC models so the
// contract documented on An2Device::poll / EthernetDevice::poll stays
// enforced.
#include <gtest/gtest.h>

#include "net/an2.hpp"
#include "net/ethernet.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace ash::net {
namespace {

using sim::Cycles;
using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

dpf::Filter type_filter(std::uint16_t ethertype) {
  dpf::Filter f;
  f.atoms = {dpf::atom_be16(12, ethertype)};
  return f;
}

std::vector<std::uint8_t> eth_frame(std::uint16_t ethertype) {
  std::vector<std::uint8_t> f(64, 0);
  f[12] = static_cast<std::uint8_t>(ethertype >> 8);
  f[13] = static_cast<std::uint8_t>(ethertype);
  return f;
}

/// Contract-following poll loop: returns (empty_checks, hit_time,
/// done_time). Charges nothing before the first check, poll_iteration per
/// empty check, recv overhead after the hit.
template <typename PollFn>
sim::Sub<int> poll_until_hit(Process& self, PollFn poll, int* empty_checks,
                             Cycles* hit_time, Cycles* done_time) {
  for (;;) {
    if (poll()) {
      *hit_time = self.node().now();
      co_await self.compute(self.node().cost().an2_user_recv_overhead);
      *done_time = self.node().now();
      co_return 0;
    }
    ++*empty_checks;
    co_await self.compute(self.node().cost().poll_iteration);
  }
}

/// First FrameArrival time on node `cpu` (the instant the ring entry
/// became visible to the poller).
Cycles arrival_time(std::uint16_t cpu) {
  for (const auto& ev : trace::global().all_events()) {
    if (ev.type == trace::EventType::FrameArrival && ev.cpu == cpu) {
      return ev.time;
    }
  }
  ADD_FAILURE() << "no FrameArrival on cpu " << cpu;
  return 0;
}

TEST(PollCharge, An2HitOnFirstCheckCostsRecvOverheadOnly) {
  Simulator sim;
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  An2Device dev_a(a), dev_b(b);
  dev_a.connect(dev_b);

  int empty = 0;
  Cycles t0 = 0, hit = 0, done = 0;
  b.kernel().spawn("rx", [&](Process& self) -> Task {
    const int vc = dev_b.bind_vc(self);
    dev_b.supply_buffer(vc, self.segment().base, 4096);
    // Start checking long after the frame has landed.
    co_await self.sleep_for(us(500.0));
    t0 = self.node().now();
    co_await poll_until_hit(
        self, [&] { return dev_b.poll(vc).has_value(); }, &empty, &hit,
        &done);
  });
  sim.queue().schedule_at(us(10.0), [&] {
    const std::uint8_t m[4] = {1, 2, 3, 4};
    ASSERT_TRUE(dev_a.send(0, m));
  });
  sim.run();

  EXPECT_EQ(empty, 0);
  EXPECT_EQ(hit, t0);  // the check itself is free
  EXPECT_EQ(done - t0, b.cost().an2_user_recv_overhead);
}

TEST(PollCharge, An2SpinThenHitChargesEachEmptyCheckOnceAndNoDouble) {
  trace::TracerConfig tc;
  tc.max_cpus = 2;
  trace::Session session(tc);
  Simulator sim;
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  An2Device dev_a(a), dev_b(b);
  dev_a.connect(dev_b);

  int empty = 0;
  Cycles t0 = 0, hit = 0, done = 0;
  b.kernel().spawn("rx", [&](Process& self) -> Task {
    const int vc = dev_b.bind_vc(self);
    dev_b.supply_buffer(vc, self.segment().base, 4096);
    co_await self.sleep_for(us(100.0));
    t0 = self.node().now();
    co_await poll_until_hit(
        self, [&] { return dev_b.poll(vc).has_value(); }, &empty, &hit,
        &done);
  });
  // Sent mid-spin: the frame arrives between two checks, so the poller
  // discovers it on the next check with no extra poll charge. (The send
  // is late enough that process startup cannot beat it to the ring.)
  sim.queue().schedule_at(us(250.0), [&] {
    const std::uint8_t m[4] = {1, 2, 3, 4};
    ASSERT_TRUE(dev_a.send(0, m));
  });
  sim.run();

  const Cycles arrive = arrival_time(b.cpu_id());
  ASSERT_GT(arrive, t0);
  const Cycles p = b.cost().poll_iteration;
  // The poller checked at t0, t0+p, ... — the hit is the FIRST check at
  // or after the arrival, after exactly ceil((arrive - t0) / p) empty
  // checks, each charged once.
  const Cycles n = (arrive - t0 + p - 1) / p;
  EXPECT_GT(n, 0u);
  EXPECT_EQ(static_cast<Cycles>(empty), n);
  EXPECT_EQ(hit, t0 + n * p);
  // The hit check charges the receive overhead INSTEAD of an iteration.
  EXPECT_EQ(done - hit, b.cost().an2_user_recv_overhead);
  EXPECT_EQ(done - t0, n * p + b.cost().an2_user_recv_overhead);
}

TEST(PollCharge, EthernetHitChargesRecvOverheadOnly) {
  // On the Ethernet the ring entry appears only after the driver's
  // kernel work, which shares the CPU with the poller's own compute — so
  // the cycle-exact case is the idle-CPU hit: by poll time the frame has
  // long been copied out and the kernel is quiet, and the hit must cost
  // exactly the receive overhead with zero poll_iteration charges.
  Simulator sim;
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  EthernetDevice dev_a(a), dev_b(b);
  dev_a.connect(dev_b);

  int empty = 0;
  Cycles t0 = 0, hit = 0, done = 0;
  b.kernel().spawn("rx", [&](Process& self) -> Task {
    const int ep = dev_b.attach(self, type_filter(0x0800));
    dev_b.supply_buffer(ep, self.segment().base, 2048);
    co_await self.sleep_for(us(1000.0));
    t0 = self.node().now();
    co_await poll_until_hit(
        self, [&] { return dev_b.poll(ep).has_value(); }, &empty, &hit,
        &done);
  });
  sim.queue().schedule_at(us(10.0),
                          [&] { ASSERT_TRUE(dev_a.send(eth_frame(0x0800))); });
  sim.run();

  EXPECT_EQ(empty, 0);
  EXPECT_EQ(hit, t0);  // the check itself is free
  EXPECT_EQ(done - t0, b.cost().an2_user_recv_overhead);
}

TEST(PollCharge, EthernetSpinChargesEachEmptyCheckOnceAndNoDouble) {
  trace::TracerConfig tc;
  tc.max_cpus = 2;
  trace::Session session(tc);
  Simulator sim;
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  EthernetDevice dev_a(a), dev_b(b);
  dev_a.connect(dev_b);

  int empty = 0;
  Cycles t0 = 0, hit = 0, done = 0;
  b.kernel().spawn("rx", [&](Process& self) -> Task {
    const int ep = dev_b.attach(self, type_filter(0x0800));
    dev_b.supply_buffer(ep, self.segment().base, 2048);
    co_await self.sleep_for(us(100.0));
    t0 = self.node().now();
    co_await poll_until_hit(
        self, [&] { return dev_b.poll(ep).has_value(); }, &empty, &hit,
        &done);
  });
  sim.queue().schedule_at(us(250.0),
                          [&] { ASSERT_TRUE(dev_a.send(eth_frame(0x0800))); });
  sim.run();

  // The spinner's compute chunks interleave with the driver's kernel
  // work, so pin the structure rather than absolute times: the ring
  // became visible only after FrameArrival, every pre-hit check charged
  // an iteration (hit no earlier than t0 + empty * p), and the hit
  // charged the receive overhead INSTEAD of another iteration.
  const Cycles arrive = arrival_time(b.cpu_id());
  ASSERT_GT(arrive, t0);
  const Cycles p = b.cost().poll_iteration;
  EXPECT_GT(empty, 0);
  EXPECT_GE(hit, t0 + static_cast<Cycles>(empty) * p);
  EXPECT_GT(hit, arrive);  // driver work delays ring visibility
  // The ring entry is posted while the driver still owes the copy-out's
  // kernel cycles, so the recv-overhead compute can wait those out — but
  // never an extra poll_iteration.
  EXPECT_GE(done - hit, b.cost().an2_user_recv_overhead);
  EXPECT_LT(done - hit, b.cost().an2_user_recv_overhead + us(10.0));
}

}  // namespace
}  // namespace ash::net
