// Property/soak test for the ashtrace layer: replay the seeded packetfuzz
// corpus (the same seeds the protocol soak tests use) through a two-node
// AN2 + ASH world with the tracer on, and assert the tracer's conservation
// invariants rather than any particular packet schedule:
//
//   * per-CPU event streams are strictly seq-monotonic and time-ordered,
//   * the drop counter matches the ring occupancy arithmetic exactly
//     (emitted == retained + dropped) in both overwrite and drop-newest
//     modes,
//   * the per-ASH / per-channel aggregates equal an independent
//     re-aggregation of the retained events whenever nothing was dropped.
//
// Faults (drop/dup/reorder/corrupt/truncate/jitter) shuffle the traffic;
// a deliberately faulting second handler plus a tight supervisor policy
// drives the denial / supervisor-action event classes too.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <map>

#include "core/ash.hpp"
#include "net/an2.hpp"
#include "net/fault.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"
#include "vcode/builder.hpp"

namespace ash::core {
namespace {

using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;
using trace::Event;
using trace::EventType;
using vcode::Builder;
using vcode::kRegArg0;
using vcode::kRegArg1;
using vcode::kRegArg2;
using vcode::kRegArg3;
using vcode::Reg;

constexpr std::array<std::uint64_t, 10> kCorpus = {
    1001, 1002, 1003, 1004, 1005, 1006, 1007, 2001, 4001, 6001};

/// One fault class per 100x-seed, mixed classes for the protocol seeds —
/// the same shape the soak suite stresses.
net::FaultConfig fault_for_seed(std::uint64_t seed) {
  net::FaultConfig f;
  f.seed = seed;
  switch (seed) {
    case 1001: f.drop_prob = 0.2; break;
    case 1002: f.dup_prob = 0.2; break;
    case 1003: f.reorder_prob = 0.2; break;
    case 1004: f.corrupt_prob = 0.2; break;
    case 1005: f.truncate_prob = 0.2; break;
    case 1006: f.jitter_prob = 0.5; break;
    case 1007:
      f.drop_prob = 0.1;
      f.dup_prob = 0.1;
      f.corrupt_prob = 0.1;
      break;
    case 2001:
      f.drop_prob = 0.05;
      f.jitter_prob = 0.3;
      break;
    case 4001:
      f.reorder_prob = 0.15;
      f.dup_prob = 0.1;
      break;
    default:  // 6001
      f.corrupt_prob = 0.15;
      f.truncate_prob = 0.1;
      break;
  }
  return f;
}

vcode::Program remote_increment_ash() {
  Builder b;
  const Reg v = b.reg();
  b.lw(v, kRegArg2, 0);
  b.addiu(v, v, 1);
  b.sw(v, kRegArg2, 0);
  b.t_send(kRegArg3, kRegArg0, kRegArg1);
  b.movi(kRegArg0, 1);
  b.halt();
  return b.take();
}

/// Stores outside the owner segment: MemFault on every invocation, which
/// walks the supervisor through quarantine (denials) toward revocation.
vcode::Program always_faulting_ash() {
  Builder b;
  const Reg v = b.reg();
  b.movi(v, 0x10);  // below any owner segment
  b.sw(v, v, 0);
  b.halt();
  return b.take();
}

/// Drive one corpus seed through the fuzz world with the tracer already
/// enabled by the caller (whose TracerConfig decides ring behaviour).
void run_corpus_seed(std::uint64_t seed, int messages = 40) {
  Simulator sim;
  sim::Node& a = sim.add_node("a");
  sim::Node& b = sim.add_node("b");
  net::An2Device dev_a(a);
  net::An2Device dev_b(b);
  dev_a.connect(dev_b);
  dev_a.set_faults(fault_for_seed(seed));
  AshSystem ashsys(b);
  SupervisorConfig sup;
  sup.enabled = true;
  sup.fault_threshold = 2;
  sup.quarantine_base = us(500.0);
  sup.max_quarantines = 3;
  ashsys.set_supervisor(sup);

  b.kernel().spawn("owner", [&](Process& self) -> Task {
    const std::uint32_t counter = self.segment().base + 0x100;
    const int vc_good = dev_b.bind_vc(self);
    const int vc_bad = dev_b.bind_vc(self);
    for (int i = 0; i < 8; ++i) {
      dev_b.supply_buffer(vc_good,
                          self.segment().base + 0x1000 +
                              64u * static_cast<std::uint32_t>(i),
                          64);
      dev_b.supply_buffer(vc_bad,
                          self.segment().base + 0x2000 +
                              64u * static_cast<std::uint32_t>(i),
                          64);
    }
    std::string error;
    const int good = ashsys.download(self, remote_increment_ash(), {}, &error);
    EXPECT_GE(good, 0) << error;
    AshOptions unsafe;  // kernel-trusted, so the wild store reaches MemFault
    unsafe.sandboxed = false;
    const int bad =
        ashsys.download(self, always_faulting_ash(), unsafe, &error);
    EXPECT_GE(bad, 0) << error;
    if (good < 0 || bad < 0) co_return;
    ashsys.attach_an2(dev_b, vc_good, good, counter);
    ashsys.attach_an2(dev_b, vc_bad, bad, 0);
    co_await self.sleep_for(us(1.0e6));
    // Drain anything the handlers declined into the normal path.
    while (dev_b.poll(vc_good).has_value()) {
    }
    while (dev_b.poll(vc_bad).has_value()) {
    }
  });
  a.kernel().spawn("client", [&, messages](Process& self) -> Task {
    for (int i = 0; i < messages; ++i) {
      std::uint8_t msg[16];
      std::memset(msg, static_cast<std::uint8_t>(i), sizeof msg);
      co_await self.syscall(dev_a.config().tx_kernel_work);
      dev_a.send(i % 2, msg);
      co_await self.sleep_for(us(50.0));
    }
  });
  sim.run();
}

/// Re-derive every aggregate from the retained events; only valid when
/// nothing was dropped.
struct Reaggregated {
  std::map<std::int32_t, std::uint64_t> dispatches, outcomes, consumed,
      denials, latency_sum, insns;
  std::map<std::int32_t, std::uint64_t> frames, frame_bytes, fallbacks;
  std::array<std::uint64_t, trace::kEventTypeCount> by_type{};
};

Reaggregated reaggregate(const std::vector<Event>& events) {
  Reaggregated r;
  for (const Event& ev : events) {
    ++r.by_type[static_cast<std::size_t>(ev.type)];
    switch (ev.type) {
      case EventType::AshDispatch:
        ++r.dispatches[ev.id];
        break;
      case EventType::AshOutcome:
        ++r.outcomes[ev.id];
        r.consumed[ev.id] += ev.arg1;
        r.latency_sum[ev.id] += ev.cycles;
        r.insns[ev.id] += ev.insns;
        break;
      case EventType::AshDenied:
        ++r.denials[ev.id];
        break;
      case EventType::FrameArrival:
        ++r.frames[ev.id];
        r.frame_bytes[ev.id] += ev.arg0;
        break;
      case EventType::UpcallFallback:
        ++r.fallbacks[ev.id];
        break;
      default:
        break;
    }
  }
  return r;
}

TEST(TraceConservation, CorpusSeedsHoldInvariantsWithLargeRing) {
  for (const std::uint64_t seed : kCorpus) {
    trace::TracerConfig cfg;
    cfg.ring_capacity = 1u << 15;  // large enough: nothing may drop
    trace::Session session(cfg);
    run_corpus_seed(seed);

    trace::Tracer& t = trace::global();
    std::uint64_t total_retained = 0;
    std::vector<Event> all;
    for (std::uint16_t cpu = 0; cpu < t.cpus(); ++cpu) {
      const auto events = t.events(cpu);
      total_retained += events.size();
      // Occupancy arithmetic with no wrap.
      EXPECT_EQ(t.dropped(cpu), 0u) << "seed " << seed << " cpu " << cpu;
      EXPECT_EQ(t.emitted(cpu), events.size())
          << "seed " << seed << " cpu " << cpu;
      // Strict per-CPU monotonicity: seq is gapless from 0, time never
      // runs backwards.
      for (std::size_t i = 0; i < events.size(); ++i) {
        ASSERT_EQ(events[i].seq, i) << "seed " << seed << " cpu " << cpu;
        if (i > 0) {
          ASSERT_GE(events[i].time, events[i - 1].time)
              << "seed " << seed << " cpu " << cpu << " index " << i;
        }
      }
      all.insert(all.end(), events.begin(), events.end());
    }
    EXPECT_GT(total_retained, 0u) << "seed " << seed;
    EXPECT_EQ(t.clamped_cpus(), 0u) << "seed " << seed;
    EXPECT_EQ(t.all_events().size(), all.size()) << "seed " << seed;

    // Aggregates must equal an independent re-aggregation of the events.
    const Reaggregated r = reaggregate(all);
    for (std::size_t ty = 0; ty < trace::kEventTypeCount; ++ty) {
      EXPECT_EQ(t.type_count(static_cast<EventType>(ty)), r.by_type[ty])
          << "seed " << seed << " type " << ty;
    }
    for (std::int32_t id = 0; id <= t.max_ash_slot(); ++id) {
      const trace::AshMetrics& m = t.ash_metrics(id);
      const auto get = [&](const std::map<std::int32_t, std::uint64_t>& mp) {
        const auto it = mp.find(id);
        return it == mp.end() ? 0ull : it->second;
      };
      EXPECT_EQ(m.dispatches, get(r.dispatches)) << "seed " << seed;
      EXPECT_EQ(m.outcomes, get(r.outcomes)) << "seed " << seed;
      EXPECT_EQ(m.consumed, get(r.consumed)) << "seed " << seed;
      EXPECT_EQ(m.denials, get(r.denials)) << "seed " << seed;
      EXPECT_EQ(m.latency.sum(), get(r.latency_sum)) << "seed " << seed;
      EXPECT_EQ(m.cycles, get(r.latency_sum)) << "seed " << seed;
      EXPECT_EQ(m.insns, get(r.insns)) << "seed " << seed;
      std::uint64_t outcome_total = 0;
      for (const std::uint64_t n : m.by_outcome) outcome_total += n;
      EXPECT_EQ(outcome_total, m.outcomes) << "seed " << seed;
      std::uint64_t denial_total = 0;
      for (const std::uint64_t n : m.denial_reasons) denial_total += n;
      EXPECT_EQ(denial_total, m.denials) << "seed " << seed;
    }
    for (std::int32_t id = 0; id <= t.max_channel_slot(); ++id) {
      const trace::ChannelMetrics& c = t.channel_metrics(id);
      const auto get = [&](const std::map<std::int32_t, std::uint64_t>& mp) {
        const auto it = mp.find(id);
        return it == mp.end() ? 0ull : it->second;
      };
      EXPECT_EQ(c.frames, get(r.frames)) << "seed " << seed;
      EXPECT_EQ(c.bytes, get(r.frame_bytes)) << "seed " << seed;
      EXPECT_EQ(c.fallbacks, get(r.fallbacks)) << "seed " << seed;
      EXPECT_EQ(c.frame_bytes.count(), c.frames) << "seed " << seed;
      EXPECT_EQ(c.frame_bytes.sum(), c.bytes) << "seed " << seed;
    }

    // The scenario must actually exercise the interesting event classes.
    EXPECT_GT(t.type_count(EventType::AshOutcome), 0u) << "seed " << seed;
    EXPECT_GT(t.type_count(EventType::AshDenied), 0u) << "seed " << seed;
    EXPECT_GT(t.type_count(EventType::SupervisorAction), 0u)
        << "seed " << seed;
    EXPECT_GT(t.type_count(EventType::UpcallFallback), 0u)
        << "seed " << seed;
  }
}

TEST(TraceConservation, TinyRingOccupancyMathHoldsUnderWrap) {
  for (const bool overwrite : {true, false}) {
    trace::TracerConfig cfg;
    cfg.ring_capacity = 8;  // guaranteed to wrap
    cfg.overwrite = overwrite;
    trace::Session session(cfg);
    run_corpus_seed(1007, /*messages=*/60);

    trace::Tracer& t = trace::global();
    bool any_dropped = false;
    for (std::uint16_t cpu = 0; cpu < t.cpus(); ++cpu) {
      const auto events = t.events(cpu);
      // The invariant the drop counter must satisfy, wrap or no wrap.
      EXPECT_EQ(t.emitted(cpu), events.size() + t.dropped(cpu))
          << "overwrite=" << overwrite << " cpu " << cpu;
      if (t.dropped(cpu) > 0) any_dropped = true;
      // Retention shape: overwrite keeps the newest window (seq ends at
      // emitted-1), drop-newest keeps the oldest (seq starts at 0).
      if (!events.empty()) {
        if (overwrite) {
          EXPECT_EQ(events.back().seq, t.emitted(cpu) - 1) << "cpu " << cpu;
        } else {
          EXPECT_EQ(events.front().seq, 0u) << "cpu " << cpu;
        }
        for (std::size_t i = 1; i < events.size(); ++i) {
          ASSERT_EQ(events[i].seq, events[i - 1].seq + 1) << "cpu " << cpu;
        }
      }
    }
    EXPECT_TRUE(any_dropped) << "overwrite=" << overwrite
                             << ": tiny ring never wrapped";

    // Aggregation happens before ring insertion, so metric totals must
    // reflect every EMITTED event even though the ring lost most of them.
    std::uint64_t dispatch_metric = 0;
    for (std::int32_t id = 0; id <= t.max_ash_slot(); ++id) {
      dispatch_metric += t.ash_metrics(id).dispatches;
    }
    EXPECT_EQ(dispatch_metric, t.type_count(EventType::AshDispatch));
  }
}

}  // namespace
}  // namespace ash::core
