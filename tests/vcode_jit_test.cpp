// Superblock JIT backend: translation-shape checks (superblocks spanning
// conditional branches, constant-folded guards, fused DILP loops), exact
// equivalence of the fused native loop against the interpreter on real
// dilp::Compiler output, budget handoffs out of the native loop, and the
// uniform BackendStats surface.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dilp/compiler.hpp"
#include "dilp/engine.hpp"
#include "dilp/pipe.hpp"
#include "dilp/stdpipes.hpp"
#include "util/byteorder.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"
#include "vcode/backend.hpp"
#include "vcode/codecache.hpp"
#include "vcode/interp.hpp"
#include "vcode/jit/jit.hpp"
#include "vcode/program.hpp"

namespace ash::vcode {
namespace {

constexpr std::uint32_t kBase = 0x10000;
constexpr std::uint32_t kSize = 0x10000;

/// Flat deterministic environment with a fast-mem window, the same
/// cache-model cost shape the differential harness uses.
class FlatEnv : public Env {
 public:
  FlatEnv() : mem_(kSize) {
    for (std::size_t i = 0; i < mem_.size(); ++i) {
      mem_[i] = static_cast<std::uint8_t>(i * 13 + 7);
    }
  }

  std::vector<std::uint8_t>& memory() { return mem_; }

  bool mem_read(std::uint32_t addr, void* dst, std::uint32_t len) override {
    if (!in_range(addr, len)) return false;
    std::memcpy(dst, mem_.data() + (addr - kBase), len);
    return true;
  }
  bool mem_write(std::uint32_t addr, const void* src,
                 std::uint32_t len) override {
    if (!in_range(addr, len)) return false;
    std::memcpy(mem_.data() + (addr - kBase), src, len);
    return true;
  }
  std::uint64_t mem_cycles(std::uint32_t addr, std::uint32_t len,
                           bool is_write) override {
    return ((addr * 2654435761u) >> 28 & 7u) + len / 4 + (is_write ? 1 : 0);
  }
  bool fast_mem(FastMem* out) override {
    if (!offer_fast_mem_) return false;
    out->mem = mem_.data();
    out->mem_base = kBase;
    out->owner_lo = kBase;
    out->owner_hi = kBase + kSize;
    return true;
  }
  void set_offer_fast_mem(bool on) { offer_fast_mem_ = on; }

 private:
  bool in_range(std::uint32_t addr, std::uint32_t len) const {
    return addr >= kBase && addr - kBase <= mem_.size() - len &&
           len <= mem_.size();
  }
  std::vector<std::uint8_t> mem_;
  bool offer_fast_mem_ = true;
};

/// Run `prog` through the interpreter and the JIT with identical register
/// seeds and assert every observable matches; returns the shared result.
ExecResult expect_jit_matches_interp(
    const Program& prog, const std::array<std::uint32_t, kNumRegs>& seeds,
    const ExecLimits& limits, const std::string& tag) {
  FlatEnv env_a;
  Interpreter interp(prog, env_a);
  for (std::uint32_t r = 1; r < kNumRegs; ++r) {
    interp.set_reg(static_cast<Reg>(r), seeds[r]);
  }
  const ExecResult a = interp.run(limits);

  FlatEnv env_j;
  JitBackend jit(prog);
  std::array<std::uint32_t, kNumRegs> regs = seeds;
  regs[kRegZero] = 0;
  const ExecResult j = jit.run(env_j, regs, limits);

  EXPECT_EQ(static_cast<int>(a.outcome), static_cast<int>(j.outcome))
      << tag << " interp=" << to_string(a.outcome)
      << " jit=" << to_string(j.outcome);
  EXPECT_EQ(a.insns, j.insns) << tag;
  EXPECT_EQ(a.cycles, j.cycles) << tag;
  EXPECT_EQ(a.result, j.result) << tag;
  EXPECT_EQ(a.fault_pc, j.fault_pc) << tag;
  EXPECT_EQ(a.abort_code, j.abort_code) << tag;
  for (std::uint32_t r = 0; r < kNumRegs; ++r) {
    EXPECT_EQ(interp.reg(static_cast<Reg>(r)), regs[r]) << tag << " r" << r;
  }
  EXPECT_EQ(env_a.memory(), env_j.memory()) << tag;
  return a;
}

TEST(JitTranslation, SuperblocksContinueThroughConditionalBranches) {
  // A conditional branch does NOT end a superblock on its fall-through
  // side — the region continues straight through — so the lowering forms
  // fewer regions than the code cache's basic blocks.
  Program prog;
  prog.insns.push_back({Op::Movi, 5, 0, 0, 1});
  prog.insns.push_back({Op::Bne, 5, 0, 0, 4});
  prog.insns.push_back({Op::Nop, 0, 0, 0, 0});
  prog.insns.push_back({Op::Halt, 0, 0, 0, 0});
  prog.insns.push_back({Op::Abort, 0, 0, 0, 9});

  JitBackend jit(prog);
  EXPECT_EQ(jit.superblock_count(), 2u);           // @0..3 and @4
  EXPECT_EQ(count_basic_blocks(prog), 3u);         // cache splits at @2 too

  const std::string d = jit.dump();
  EXPECT_NE(d.find("superblock @0: len=4"), std::string::npos) << d;
  EXPECT_NE(d.find("superblock @4"), std::string::npos) << d;
  EXPECT_NE(d.find("guard:"), std::string::npos) << d;

  std::array<std::uint32_t, kNumRegs> seeds{};
  const ExecResult r =
      expect_jit_matches_interp(prog, seeds, {}, "sb-branch");
  EXPECT_EQ(r.outcome, Outcome::VoluntaryAbort);
  EXPECT_EQ(r.abort_code, 9u);
}

TEST(JitTranslation, ConstFoldedAlignmentGuardFaults) {
  // The base register is provably constant inside the superblock and the
  // word access provably misaligned: the guard folds to a pre-faulted
  // slot with unchanged charging and fault reporting.
  Program prog;
  prog.insns.push_back({Op::Movi, 5, 0, 0, kBase + 2});
  prog.insns.push_back({Op::Lw, 6, 5, 0, 0});
  prog.insns.push_back({Op::Halt, 0, 0, 0, 0});

  JitBackend jit(prog);
  EXPECT_GE(jit.folded_guard_count(), 1u);
  EXPECT_NE(jit.dump().find("[folded: align-fault]"), std::string::npos)
      << jit.dump();

  std::array<std::uint32_t, kNumRegs> seeds{};
  const ExecResult r = expect_jit_matches_interp(prog, seeds, {}, "fold-mis");
  EXPECT_EQ(r.outcome, Outcome::AlignFault);
  EXPECT_EQ(r.fault_pc, 1u);

  // Provably aligned variant folds to the check-free template instead.
  Program ok = prog;
  ok.insns[0].imm = kBase + 8;
  JitBackend jit_ok(ok);
  EXPECT_NE(jit_ok.dump().find("[folded: aligned]"), std::string::npos)
      << jit_ok.dump();
  const ExecResult r2 = expect_jit_matches_interp(ok, seeds, {}, "fold-ok");
  EXPECT_EQ(r2.outcome, Outcome::Halted);
}

TEST(JitTranslation, ConstFoldedBranchBecomesJump) {
  // Both branch operands provably constant (the DPF-atom mask+compare
  // shape): the branch folds to a direct jump / fall-through at lowering
  // time, with identical costs and outcomes.
  Program taken;
  taken.insns.push_back({Op::Movi, 5, 0, 0, 3});
  taken.insns.push_back({Op::Movi, 6, 0, 0, 3});
  taken.insns.push_back({Op::Beq, 5, 6, 0, 4});
  taken.insns.push_back({Op::Halt, 0, 0, 0, 0});
  taken.insns.push_back({Op::Abort, 0, 0, 0, 7});

  JitBackend jit(taken);
  EXPECT_GE(jit.folded_guard_count(), 1u);
  EXPECT_NE(jit.dump().find("[folded: taken]"), std::string::npos)
      << jit.dump();

  std::array<std::uint32_t, kNumRegs> seeds{};
  const ExecResult r = expect_jit_matches_interp(taken, seeds, {}, "br-taken");
  EXPECT_EQ(r.outcome, Outcome::VoluntaryAbort);
  EXPECT_EQ(r.abort_code, 7u);

  Program not_taken = taken;
  not_taken.insns[1].imm = 4;  // 3 != 4: never taken
  JitBackend jit_nt(not_taken);
  EXPECT_NE(jit_nt.dump().find("[folded: not-taken]"), std::string::npos)
      << jit_nt.dump();
  const ExecResult r2 =
      expect_jit_matches_interp(not_taken, seeds, {}, "br-not-taken");
  EXPECT_EQ(r2.outcome, Outcome::Halted);
}

TEST(JitTranslation, TrustedCallInvalidatesConstants) {
  // A trusted entry may mutate the bound register file (the DILP
  // persistent-export mechanism), so constant tracking must not fold a
  // guard that depends on a register live across the call. r5 is set to
  // an aligned constant, but TMsgLen intervenes: no fold may survive it.
  Program prog;
  prog.insns.push_back({Op::Movi, 5, 0, 0, kBase + 8});
  prog.insns.push_back({Op::TMsgLen, 7, 0, 0, 0});
  prog.insns.push_back({Op::Lw, 6, 5, 0, 0});
  prog.insns.push_back({Op::Halt, 0, 0, 0, 0});

  JitBackend jit(prog);
  EXPECT_EQ(jit.folded_guard_count(), 0u);
  std::array<std::uint32_t, kNumRegs> seeds{};
  expect_jit_matches_interp(prog, seeds, {}, "trusted-invalidate");
}

/// Compile the Fig. 1 composition (checksum + byteswap, write direction)
/// and return the engine; `acc` receives the persistent binding count.
int register_fig1_chain(dilp::Engine& engine) {
  vcode::Reg acc_reg = 0;
  dilp::PipeList pl;
  pl.add(dilp::make_cksum_pipe(&acc_reg));
  pl.add(dilp::make_byteswap_pipe());
  std::string error;
  const int id =
      engine.register_ilp(pl, dilp::Direction::Write, &error);
  EXPECT_GE(id, 0) << error;
  return id;
}

TEST(JitFusedLoop, MatchesDilpCompiledChainExactly) {
  // The real dilp::Compiler word loop (checksum + byteswap + copy) must
  // be recognized as one fused loop, and the native single-pass execution
  // must be bit-identical to the interpreter: memory, persistents,
  // simulated cycles and instruction counts.
  dilp::Engine engine;
  const int id = register_fig1_chain(engine);
  ASSERT_NE(engine.jit_backend(id), nullptr);
  EXPECT_EQ(engine.jit_backend(id)->fused_loop_count(), 1u);

  const std::uint32_t len = 64 * 4;
  const std::uint32_t src = kBase + 0x100;
  const std::uint32_t dst = kBase + 0x2000;

  auto run_with = [&](vcode::Backend be, FlatEnv& env,
                      std::vector<std::uint32_t>* pers) {
    engine.set_backend(be);
    const std::uint32_t seed[] = {0};
    return engine.run(id, env, src, dst, len, seed, pers);
  };

  FlatEnv env_i;
  std::vector<std::uint32_t> pers_i;
  const auto ri = run_with(vcode::Backend::Interp, env_i, &pers_i);
  ASSERT_TRUE(ri.ok());

  FlatEnv env_c;
  std::vector<std::uint32_t> pers_c;
  const auto rc = run_with(vcode::Backend::CodeCache, env_c, &pers_c);
  ASSERT_TRUE(rc.ok());

  FlatEnv env_j;
  std::vector<std::uint32_t> pers_j;
  const auto rj = run_with(vcode::Backend::Jit, env_j, &pers_j);
  ASSERT_TRUE(rj.ok());

  EXPECT_EQ(ri.exec.cycles, rj.exec.cycles);
  EXPECT_EQ(ri.exec.insns, rj.exec.insns);
  EXPECT_EQ(ri.exec.cycles, rc.exec.cycles);
  EXPECT_EQ(ri.exec.insns, rc.exec.insns);
  EXPECT_EQ(env_i.memory(), env_j.memory());
  EXPECT_EQ(env_i.memory(), env_c.memory());
  EXPECT_EQ(pers_i, pers_j);
  EXPECT_EQ(pers_i, pers_c);

  // And the transform is the right one: checksum over raw words, output
  // byteswapped.
  std::uint32_t acc = 0;
  for (std::uint32_t off = 0; off < len; off += 4) {
    std::uint32_t w = 0;
    std::memcpy(&w, env_i.memory().data() + (src - kBase) + off, 4);
    acc = util::cksum32_accumulate(acc, w);
    std::uint32_t got = 0;
    std::memcpy(&got, env_j.memory().data() + (dst - kBase) + off, 4);
    EXPECT_EQ(got, util::bswap32(w));
  }
  ASSERT_EQ(pers_j.size(), 1u);
  EXPECT_EQ(pers_j[0], acc);
}

TEST(JitFusedLoop, InPlaceAndOverlapSemanticsPreserved) {
  // src == dst (in-place transform) must behave word-at-a-time exactly
  // like the interpreter's loop.
  dilp::Engine engine;
  const int id = register_fig1_chain(engine);

  const std::uint32_t len = 32 * 4;
  const std::uint32_t addr = kBase + 0x400;

  FlatEnv env_i;
  engine.set_backend(vcode::Backend::Interp);
  const auto ri = engine.run(id, env_i, addr, addr, len);
  ASSERT_TRUE(ri.ok());

  FlatEnv env_j;
  engine.set_backend(vcode::Backend::Jit);
  const auto rj = engine.run(id, env_j, addr, addr, len);
  ASSERT_TRUE(rj.ok());

  EXPECT_EQ(ri.exec.cycles, rj.exec.cycles);
  EXPECT_EQ(ri.exec.insns, rj.exec.insns);
  EXPECT_EQ(env_i.memory(), env_j.memory());

  // Overlapping forward copy (dst = src + 4): the interpreter's
  // word-at-a-time order smears the first word; the native loop must too.
  FlatEnv env_i2;
  engine.set_backend(vcode::Backend::Interp);
  const auto ri2 = engine.run(id, env_i2, addr, addr + 4, len);
  ASSERT_TRUE(ri2.ok());
  FlatEnv env_j2;
  engine.set_backend(vcode::Backend::Jit);
  const auto rj2 = engine.run(id, env_j2, addr, addr + 4, len);
  ASSERT_TRUE(rj2.ok());
  EXPECT_EQ(ri2.exec.cycles, rj2.exec.cycles);
  EXPECT_EQ(env_i2.memory(), env_j2.memory());
}

TEST(JitFusedLoop, GenericPathWhenNativePreconditionsFail) {
  // Cycle ceiling armed, fast-mem withheld, or a partial tail: each case
  // must fall back to the generic superblock path (or hand off to the
  // interpreter core) with bit-identical results.
  dilp::Engine engine;
  const int id = register_fig1_chain(engine);
  const Program& loop = engine.get(id)->loop;

  std::array<std::uint32_t, kNumRegs> seeds{};
  seeds[kRegArg0] = kBase + 0x100;   // src
  seeds[kRegArg1] = kBase + 0x2000;  // dst
  seeds[kRegArg2] = 16 * 4;          // len

  // Cycle ceiling sweep across the whole run, including mid-loop exits.
  for (std::uint64_t cap = 1; cap < 400; cap += 13) {
    ExecLimits lim;
    lim.max_cycles = cap;
    expect_jit_matches_interp(loop, seeds, lim,
                              "cap=" + std::to_string(cap));
  }

  // Instruction backstop partial-loop handoff (the engine's own regime:
  // max_cycles == 0), sweeping the boundary across iterations.
  for (std::uint64_t cap = 1; cap < 200; cap += 7) {
    ExecLimits lim;
    lim.max_insns = cap;
    expect_jit_matches_interp(loop, seeds, lim,
                              "insns=" + std::to_string(cap));
  }

  // No fast memory: the generic templates' virtual-Env path.
  {
    FlatEnv env_a;
    env_a.set_offer_fast_mem(false);
    Interpreter interp(loop, env_a);
    for (std::uint32_t r = 1; r < kNumRegs; ++r) {
      interp.set_reg(static_cast<Reg>(r), seeds[r]);
    }
    const ExecResult a = interp.run({});
    FlatEnv env_j;
    env_j.set_offer_fast_mem(false);
    JitBackend jit(loop);
    std::array<std::uint32_t, kNumRegs> regs = seeds;
    const ExecResult j = jit.run(env_j, regs, {});
    EXPECT_EQ(static_cast<int>(a.outcome), static_cast<int>(j.outcome));
    EXPECT_EQ(a.cycles, j.cycles);
    EXPECT_EQ(a.insns, j.insns);
    EXPECT_EQ(env_a.memory(), env_j.memory());
  }
}

TEST(JitFusedLoop, StripedLayoutFallsBackToGenericSuperblocks) {
  // The Ethernet striped-source loop variant has an inner chunk branch;
  // the matcher must reject it (no fused loop), and execution must still
  // be identical through the generic superblock path.
  dilp::Engine engine;
  vcode::Reg acc_reg = 0;
  dilp::PipeList pl;
  pl.add(dilp::make_cksum_pipe(&acc_reg));
  std::string error;
  dilp::LoopLayout layout;
  layout.src_stripe_chunk = 16;
  const int id =
      engine.register_ilp(pl, dilp::Direction::Write, &error, layout);
  ASSERT_GE(id, 0) << error;
  ASSERT_NE(engine.jit_backend(id), nullptr);
  EXPECT_EQ(engine.jit_backend(id)->fused_loop_count(), 0u);

  FlatEnv env_i;
  engine.set_backend(vcode::Backend::Interp);
  const auto ri = engine.run(id, env_i, kBase, kBase + 0x4000, 64);
  FlatEnv env_j;
  engine.set_backend(vcode::Backend::Jit);
  const auto rj = engine.run(id, env_j, kBase, kBase + 0x4000, 64);
  ASSERT_TRUE(ri.ok());
  ASSERT_TRUE(rj.ok());
  EXPECT_EQ(ri.exec.cycles, rj.exec.cycles);
  EXPECT_EQ(ri.exec.insns, rj.exec.insns);
  EXPECT_EQ(env_i.memory(), env_j.memory());
}

TEST(JitStats, UniformBackendStatsSurface) {
  Program prog;
  prog.insns.push_back({Op::Movi, 5, 0, 0, 7});
  prog.insns.push_back({Op::Halt, 0, 0, 0, 0});

  JitBackend jit(prog);
  EXPECT_EQ(jit.run_count(), 0u);
  BackendStats s = jit.stats();
  EXPECT_EQ(s.backend, Backend::Jit);
  EXPECT_EQ(s.runs, 0u);
  EXPECT_EQ(s.translations, 1u);
  EXPECT_EQ(s.superblocks, jit.superblock_count());
  EXPECT_GT(s.emitted_bytes, 0u);

  FlatEnv env;
  for (int i = 0; i < 3; ++i) {
    std::array<std::uint32_t, kNumRegs> regs{};
    EXPECT_EQ(jit.run(env, regs).outcome, Outcome::Halted);
  }
  EXPECT_EQ(jit.run_count(), 3u);
  EXPECT_EQ(jit.stats().runs, 3u);

  CodeCache cache(prog);
  const BackendStats cs = cache.stats();
  EXPECT_EQ(cs.backend, Backend::CodeCache);
  EXPECT_EQ(cs.translations, 1u);
  EXPECT_EQ(cs.superblocks, cache.block_count());
  EXPECT_GT(cs.emitted_bytes, 0u);
}

TEST(JitStats, BackendEnvOverrideParsesKnownNames) {
  Backend be = Backend::CodeCache;
  ::setenv("ASH_BACKEND", "jit", 1);
  EXPECT_TRUE(backend_env_override(&be));
  EXPECT_EQ(be, Backend::Jit);
  ::setenv("ASH_BACKEND", "INTERP", 1);
  EXPECT_TRUE(backend_env_override(&be));
  EXPECT_EQ(be, Backend::Interp);
  ::setenv("ASH_BACKEND", "codecache", 1);
  EXPECT_TRUE(backend_env_override(&be));
  EXPECT_EQ(be, Backend::CodeCache);
  be = Backend::Jit;
  ::setenv("ASH_BACKEND", "warp-drive", 1);
  EXPECT_FALSE(backend_env_override(&be));
  EXPECT_EQ(be, Backend::Jit);  // unknown value leaves *out untouched
  ::unsetenv("ASH_BACKEND");
  EXPECT_FALSE(backend_env_override(&be));
  EXPECT_STREQ(to_string(Backend::Jit), "jit");
  EXPECT_STREQ(to_string(Backend::Interp), "interp");
  EXPECT_STREQ(to_string(Backend::CodeCache), "codecache");
}

}  // namespace
}  // namespace ash::vcode
