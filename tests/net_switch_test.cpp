#include "net/an2_switch.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "ashlib/handlers.hpp"
#include "core/ash.hpp"
#include "proto/an2_link.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/byteorder.hpp"

namespace ash::net {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

struct Star {
  Simulator sim;
  Node* hub;
  Node* n1;
  Node* n2;
  An2Device* dev_hub;
  An2Device* dev_1;
  An2Device* dev_2;
  An2Switch* sw;
  int port_hub, port_1, port_2;

  Star() {
    hub = &sim.add_node("hub");
    n1 = &sim.add_node("n1");
    n2 = &sim.add_node("n2");
    dev_hub = new An2Device(*hub);
    dev_1 = new An2Device(*n1);
    dev_2 = new An2Device(*n2);
    sw = new An2Switch(sim);
    port_hub = sw->attach(*dev_hub);
    port_1 = sw->attach(*dev_1);
    port_2 = sw->attach(*dev_2);
  }
  ~Star() {
    delete sw;
    delete dev_hub;
    delete dev_1;
    delete dev_2;
  }
};

TEST(An2Switch, RoutesByCircuitTable) {
  Star s;
  // n1's circuit 0 <-> hub's vc 0; n2's circuit 0 <-> hub's vc 1.
  s.sw->add_duplex(s.port_1, 0, s.port_hub, 0);
  s.sw->add_duplex(s.port_2, 0, s.port_hub, 1);

  std::vector<int> got_on;  // hub: which VC each message arrived on
  s.hub->kernel().spawn("hub", [&](Process& self) -> Task {
    const int vc0 = s.dev_hub->bind_vc(self);
    const int vc1 = s.dev_hub->bind_vc(self);
    s.dev_hub->supply_buffer(vc0, self.segment().base, 64);
    s.dev_hub->supply_buffer(vc1, self.segment().base + 64, 64);
    for (int i = 0; i < 2; ++i) {
      for (;;) {
        if (s.dev_hub->poll(vc0)) {
          got_on.push_back(0);
          break;
        }
        if (s.dev_hub->poll(vc1)) {
          got_on.push_back(1);
          break;
        }
        co_await self.compute(self.node().cost().poll_iteration);
      }
    }
  });
  s.n1->kernel().spawn("n1", [&](Process& self) -> Task {
    co_await self.sleep_for(us(500.0));
    const std::uint8_t m[] = {1, 1, 1, 1};
    s.dev_1->send(0, m);  // addressed to n1's own circuit 0
  });
  s.n2->kernel().spawn("n2", [&](Process& self) -> Task {
    co_await self.sleep_for(us(5000.0));
    const std::uint8_t m[] = {2, 2, 2, 2};
    s.dev_2->send(0, m);
  });
  s.sim.run(us(1e6));
  ASSERT_EQ(got_on.size(), 2u);
  EXPECT_EQ(got_on[0], 0);  // n1 -> hub vc 0
  EXPECT_EQ(got_on[1], 1);  // n2 -> hub vc 1
  EXPECT_EQ(s.sw->unrouted(), 0u);
}

TEST(An2Switch, UnroutedCellsAreCountedNotDelivered) {
  Star s;
  s.n1->kernel().spawn("n1", [&](Process& self) -> Task {
    co_await self.sleep_for(us(100.0));
    const std::uint8_t m[] = {9, 9, 9, 9};
    s.dev_1->send(7, m);  // no circuit programmed for vc 7
  });
  s.sim.run(us(1e5));
  EXPECT_EQ(s.sw->unrouted(), 1u);
}

TEST(An2Switch, ExclusiveWithPointToPoint) {
  Simulator sim;
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  An2Device da(a), db(b);
  da.connect(db);
  An2Switch sw(sim);
  EXPECT_THROW(sw.attach(da), std::logic_error);

  An2Device dc(a);
  sw.attach(dc);
  An2Device dd(b);
  EXPECT_THROW(dc.connect(dd), std::logic_error);
}

TEST(An2Switch, RemoteIncrementThroughSwitch) {
  Star s;
  // Dedicated hub VC per client so replies route cleanly:
  // n1 <-> hub vc 0, n2 <-> hub vc 1.
  s.sw->add_duplex(s.port_1, 0, s.port_hub, 0);
  s.sw->add_duplex(s.port_2, 0, s.port_hub, 1);
  core::AshSystem ash_hub(*s.hub);
  std::uint32_t ctr = 0;

  s.hub->kernel().spawn("home", [&](Process& self) -> Task {
    const int vc0 = s.dev_hub->bind_vc(self);
    const int vc1 = s.dev_hub->bind_vc(self);
    for (int i = 0; i < 8; ++i) {
      s.dev_hub->supply_buffer(
          vc0, self.segment().base + 64u * static_cast<std::uint32_t>(i),
          64);
      s.dev_hub->supply_buffer(
          vc1,
          self.segment().base + 512 + 64u * static_cast<std::uint32_t>(i),
          64);
    }
    ctr = self.segment().base + 0x4000;
    std::string error;
    const int id = ash_hub.download(
        self, ashlib::make_remote_increment(), {}, &error);
    EXPECT_GE(id, 0) << error;
    ash_hub.attach_an2(*s.dev_hub, vc0, id, ctr);
    ash_hub.attach_an2(*s.dev_hub, vc1, id, ctr);
    co_await self.sleep_for(us(200000.0));
    EXPECT_EQ(ash_hub.stats(id).commits, 4u);
  });

  auto client = [&](Node* node, An2Device* dev) {
    node->kernel().spawn("client", [&, dev](Process& self) -> Task {
      proto::An2Link link(self, *dev, {});
      co_await self.sleep_for(us(1000.0));
      const std::uint8_t ping[] = {1, 2, 3, 4};
      for (int i = 0; i < 2; ++i) {
        const bool sent = co_await link.send_bytes(ping);
        EXPECT_TRUE(sent);
        const net::RxDesc d = co_await link.recv();
        link.release(d);
      }
    });
  };
  client(s.n1, s.dev_1);
  client(s.n2, s.dev_2);
  s.sim.run(us(1e6));
  EXPECT_EQ(util::load_u32(s.hub->mem(ctr, 4)), 4u);
}

}  // namespace
}  // namespace ash::net
