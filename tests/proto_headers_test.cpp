#include "proto/headers.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/checksum.hpp"
#include "util/rng.hpp"

namespace ash::proto {
namespace {

TEST(Headers, EthRoundTrip) {
  EthHeader h;
  h.dst = {{{1, 2, 3, 4, 5, 6}}};
  h.src = {{{7, 8, 9, 10, 11, 12}}};
  h.ethertype = kEtherTypeIp;
  std::vector<std::uint8_t> buf(kEthHeaderLen);
  encode_eth(buf, h);
  const auto back = decode_eth(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dst, h.dst);
  EXPECT_EQ(back->src, h.src);
  EXPECT_EQ(back->ethertype, kEtherTypeIp);
  EXPECT_FALSE(decode_eth({buf.data(), 13}).has_value());
}

TEST(Headers, ArpRoundTrip) {
  ArpPacket p;
  p.opcode = kArpOpRequest;
  p.sender_mac = {{{1, 2, 3, 4, 5, 6}}};
  p.sender_ip = Ipv4Addr::of(10, 0, 0, 1);
  p.target_mac = MacAddr::broadcast();
  p.target_ip = Ipv4Addr::of(10, 0, 0, 2);
  std::vector<std::uint8_t> buf(kArpPacketLen);
  encode_arp(buf, p);
  const auto back = decode_arp(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->opcode, kArpOpRequest);
  EXPECT_EQ(back->sender_ip, p.sender_ip);
  EXPECT_EQ(back->target_ip, p.target_ip);
  EXPECT_TRUE(back->target_mac.is_broadcast());
}

TEST(Headers, IpRoundTripAndChecksum) {
  IpHeader h;
  h.protocol = kIpProtoUdp;
  h.src = Ipv4Addr::of(192, 168, 1, 1);
  h.dst = Ipv4Addr::of(192, 168, 1, 2);
  h.total_len = 48;
  h.ident = 0x1234;
  std::vector<std::uint8_t> buf(48, 0xab);
  encode_ip({buf.data(), kIpHeaderLen}, h);
  const auto back = decode_ip(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->src, h.src);
  EXPECT_EQ(back->dst, h.dst);
  EXPECT_EQ(back->total_len, 48);
  EXPECT_EQ(back->protocol, kIpProtoUdp);

  buf[13] ^= 1;  // corrupt a source-address byte
  EXPECT_FALSE(decode_ip(buf).has_value());
}

TEST(Headers, IpRejectsBadTotalLen) {
  IpHeader h;
  h.total_len = 100;  // longer than the datagram we hand in
  std::vector<std::uint8_t> buf(40, 0);
  encode_ip({buf.data(), kIpHeaderLen}, h);
  EXPECT_FALSE(decode_ip(buf).has_value());
}

TEST(Headers, IpFragmentFields) {
  IpHeader h;
  h.total_len = 28;
  h.more_fragments = true;
  h.frag_offset = 0x123;
  std::vector<std::uint8_t> buf(28, 0);
  encode_ip({buf.data(), kIpHeaderLen}, h);
  const auto back = decode_ip(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->more_fragments);
  EXPECT_EQ(back->frag_offset, 0x123);
}

TEST(Headers, UdpRoundTrip) {
  UdpHeader h;
  h.src_port = 5353;
  h.dst_port = 53;
  h.length = 20;
  h.checksum = 0xbeef;
  std::vector<std::uint8_t> buf(20, 0);
  encode_udp(buf, h);
  const auto back = decode_udp(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->src_port, 5353);
  EXPECT_EQ(back->dst_port, 53);
  EXPECT_EQ(back->length, 20);
  EXPECT_EQ(back->checksum, 0xbeef);
}

TEST(Headers, TcpRoundTripAllFlags) {
  TcpHeader h;
  h.src_port = 1234;
  h.dst_port = 80;
  h.seq = 0xdeadbeef;
  h.ack = 0x01020304;
  h.flags = {.fin = true, .syn = false, .rst = true, .psh = false,
             .ack = true};
  h.window = 8192;
  std::vector<std::uint8_t> buf(kTcpHeaderLen);
  encode_tcp(buf, h);
  const auto back = decode_tcp(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, h.seq);
  EXPECT_EQ(back->ack, h.ack);
  EXPECT_EQ(back->flags, h.flags);
  EXPECT_EQ(back->window, 8192);
}

TEST(Headers, TransportChecksumVerifies) {
  util::Rng rng(3);
  const Ipv4Addr src = Ipv4Addr::of(10, 0, 0, 1);
  const Ipv4Addr dst = Ipv4Addr::of(10, 0, 0, 2);
  std::vector<std::uint8_t> seg(kUdpHeaderLen + 33);
  for (auto& b : seg) b = static_cast<std::uint8_t>(rng.next());
  seg[6] = seg[7] = 0;  // checksum field zero
  const std::uint16_t ck = transport_checksum(src, dst, kIpProtoUdp, seg);
  seg[6] = static_cast<std::uint8_t>(ck >> 8);
  seg[7] = static_cast<std::uint8_t>(ck);

  std::uint32_t acc = pseudo_header_sum(
      src, dst, kIpProtoUdp, static_cast<std::uint16_t>(seg.size()));
  acc = util::cksum_partial(seg, acc);
  EXPECT_EQ(util::fold16(acc), 0xffff);

  seg[10] ^= 0x40;  // flip a payload bit
  acc = pseudo_header_sum(src, dst, kIpProtoUdp,
                          static_cast<std::uint16_t>(seg.size()));
  acc = util::cksum_partial(seg, acc);
  EXPECT_NE(util::fold16(acc), 0xffff);
}

TEST(Headers, SeqArithmeticWrapsCorrectly) {
  EXPECT_TRUE(seq_lt(0xfffffff0u, 0x10u));   // across the wrap
  EXPECT_FALSE(seq_lt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(seq_le(5, 5));
  EXPECT_EQ(seq_diff(10, 3), 7);
  EXPECT_EQ(seq_diff(3, 10), -7);
}

}  // namespace
}  // namespace ash::proto
