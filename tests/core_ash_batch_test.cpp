// Batched ASH dispatch (AshSystem::invoke_batch): charge amortization,
// and the ISSUE-5 containment property — a handler that faults mid-batch
// must not poison the rest of the batch, with admission re-checked per
// message so supervisor state changes take effect within the batch.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/ash.hpp"
#include "core/supervisor.hpp"
#include "net/an2.hpp"
#include "net/rx_queue.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"
#include "vcode/builder.hpp"

namespace ash::core {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;
using vcode::Builder;
using vcode::kRegArg0;
using vcode::kRegArg1;
using vcode::kRegArg2;
using vcode::kRegArg3;
using vcode::Reg;

/// Remote increment that detonates (divide by zero — an involuntary
/// abort) when the first message word is the poison marker. Healthy
/// messages bump the counter at user_arg and echo the message back.
vcode::Program poison_pill_ash() {
  Builder b;
  const Reg m = b.reg();
  const Reg marker = b.reg();
  const Reg v = b.reg();
  vcode::Label boom = b.label();
  b.lw(m, kRegArg0, 0);
  b.movi(marker, 0xdeadbeefu);
  b.beq(m, marker, boom);
  b.lw(v, kRegArg2, 0);
  b.addiu(v, v, 1);
  b.sw(v, kRegArg2, 0);
  b.t_send(kRegArg3, kRegArg0, kRegArg1);
  b.movi(kRegArg0, 1);
  b.halt();
  b.bind(boom);
  b.movi(v, 0);
  b.divu(m, m, v);
  b.halt();
  return b.take();
}

struct BatchWorld {
  Simulator sim;
  Node* a;
  Node* b;
  std::unique_ptr<net::An2Device> dev_a;
  std::unique_ptr<net::An2Device> dev_b;
  std::unique_ptr<AshSystem> ash_b;
  std::unique_ptr<net::RxQueueSet> rxq;
  int ash_id = -1;
  std::uint32_t ctr_addr = 0;

  /// One server VC behind a single coalescing queue (max_frames high and
  /// max_delay long enough that a back-to-back train lands in ONE batch).
  BatchWorld() {
    a = &sim.add_node("a");
    b = &sim.add_node("b");
    dev_a = std::make_unique<net::An2Device>(*a);
    dev_b = std::make_unique<net::An2Device>(*b);
    dev_a->connect(*dev_b);
    ash_b = std::make_unique<AshSystem>(*b);

    net::RxQueueSet::Config qc;
    qc.queues = 1;
    qc.coalesce.enabled = true;
    qc.coalesce.max_frames = 16;
    qc.coalesce.max_delay = us(200.0);
    rxq = std::make_unique<net::RxQueueSet>(*b, qc);
    dev_b->set_rx_queues(rxq.get());

    b->kernel().spawn("owner", [this](Process& self) -> Task {
      std::string error;
      const int id = ash_b->download(self, poison_pill_ash(), {}, &error);
      EXPECT_GE(id, 0) << error;
      ash_id = id;
      const int vc = dev_b->bind_vc(self);
      for (int i = 0; i < 32; ++i) {
        dev_b->supply_buffer(
            vc, self.segment().base + 64u * static_cast<std::uint32_t>(i),
            64);
      }
      ctr_addr = self.segment().base + 0x80000;
      ash_b->attach_an2(*dev_b, vc, id, ctr_addr);
      co_await self.sleep_for(us(1e6));
    });
  }

  /// Send a back-to-back train; each element is poison or healthy.
  void send_train(sim::Cycles at, const std::vector<bool>& poison) {
    sim.queue().schedule_at(at, [this, poison] {
      const std::uint8_t ok[4] = {1, 2, 3, 4};
      const std::uint8_t bad[4] = {0xef, 0xbe, 0xad, 0xde};  // LE marker
      for (const bool p : poison) dev_a->send(0, p ? bad : ok);
    });
  }

  std::uint32_t counter() const {
    const std::uint8_t* p = b->mem(ctr_addr, 4);
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  }

  std::size_t server_ring_depth() {
    std::size_t n = 0;
    while (dev_b->poll(0)) ++n;
    return n;
  }
};

TEST(AshBatch, MidBatchFaultDoesNotPoisonTheRest) {
  BatchWorld w;
  w.send_train(us(500.0), {false, false, true, false, false});
  w.sim.run(us(5000.0));

  const AshStats& s = w.ash_b->stats(w.ash_id);
  EXPECT_EQ(s.invocations, 5u);
  EXPECT_EQ(s.commits, 4u);
  EXPECT_EQ(w.counter(), 4u);
  // Exactly one fault, and it is the divide.
  EXPECT_EQ(s.involuntary_aborts, 1u);
  EXPECT_EQ(
      s.by_outcome[static_cast<std::size_t>(vcode::Outcome::DivideByZero)],
      1u);
  EXPECT_TRUE(s.last_fault.valid);
  EXPECT_EQ(s.last_fault.outcome, vcode::Outcome::DivideByZero);
  // The faulting message is not lost: it fell back to the notify ring.
  EXPECT_EQ(w.server_ring_depth(), 1u);
}

TEST(AshBatch, AdmissionIsRecheckedPerMessageWithinABatch) {
  BatchWorld w;
  SupervisorConfig sup;
  sup.enabled = true;
  sup.fault_threshold = 1;  // first fault quarantines immediately
  sup.quarantine_base = us(100000.0);
  w.ash_b->set_supervisor(sup);

  // Poison in the middle of one batch: the two trailing messages must be
  // denied by the freshly-quarantined state, not run.
  w.send_train(us(500.0), {false, false, true, false, false});
  w.sim.run(us(5000.0));

  const AshStats& s = w.ash_b->stats(w.ash_id);
  EXPECT_EQ(s.commits, 2u);
  EXPECT_EQ(w.counter(), 2u);
  EXPECT_EQ(
      s.by_outcome[static_cast<std::size_t>(vcode::Outcome::DivideByZero)],
      1u);
  EXPECT_EQ(s.quarantine_skips, 2u);
  EXPECT_EQ(w.ash_b->health(w.ash_id), Health::Quarantined);
  // Poison + the two skipped messages all fell back to the ring.
  EXPECT_EQ(w.server_ring_depth(), 3u);

  // A later batch while still quarantined bypasses the handler entirely.
  w.send_train(us(6000.0), {false, false});
  w.sim.run(us(10000.0));
  EXPECT_EQ(w.ash_b->stats(w.ash_id).commits, 2u);
  EXPECT_EQ(w.ash_b->stats(w.ash_id).quarantine_skips, 4u);
  EXPECT_EQ(w.server_ring_depth(), 2u);
}

TEST(AshBatch, BatchChargesOneEntryAndClearPlusPerMessageRearm) {
  trace::TracerConfig tc;
  tc.max_cpus = 4;
  trace::Session session(tc);
  BatchWorld w;
  w.send_train(us(500.0), {false, false, false, false});
  w.sim.run(us(5000.0));

  const AshStats& s = w.ash_b->stats(w.ash_id);
  ASSERT_EQ(s.commits, 4u);

  const trace::Event* batch = nullptr;
  for (const auto& ev : trace::global().all_events()) {
    if (ev.type == trace::EventType::BatchDispatch) {
      ASSERT_EQ(batch, nullptr) << "expected exactly one batch";
      batch = &ev;
    }
  }
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->arg0, 4u);  // offered
  EXPECT_EQ(batch->arg1, 4u);  // executed
  // Charge model: one timer setup + context install for the whole batch,
  // a cheap re-arm for messages 2..N, one timer clear at the end, plus
  // the handlers' own execution cycles (AshStats::cycles).
  const auto& cost = w.b->cost();
  EXPECT_EQ(batch->cycles, cost.ash_timer_setup + cost.ash_context_install +
                               3 * cost.ash_batch_rearm +
                               cost.ash_timer_clear + s.cycles);
  EXPECT_EQ(batch->insns, s.insns);
}

}  // namespace
}  // namespace ash::core
