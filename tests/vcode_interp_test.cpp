#include "vcode/interp.hpp"

#include <gtest/gtest.h>

#include "util/checksum.hpp"
#include "util/rng.hpp"
#include "vcode/builder.hpp"
#include "vcode/env_util.hpp"

namespace ash::vcode {
namespace {

Env& null_env() {
  static Env env;
  return env;
}

TEST(Interp, SumLoop) {
  Builder b;
  const Reg x = b.reg();
  const Reg y = b.reg();
  Label loop = b.label();
  Label done = b.label();
  b.movi(x, 10);
  b.movi(y, 0);
  b.bind(loop);
  b.beq(x, kRegZero, done);
  b.addu(y, y, x);
  b.addiu(x, x, static_cast<std::uint32_t>(-1));
  b.jmp(loop);
  b.bind(done);
  b.mov(kRegArg0, y);
  b.halt();
  const Program prog = b.take();

  const ExecResult r = execute(prog, null_env());
  EXPECT_EQ(r.outcome, Outcome::Halted);
  EXPECT_EQ(r.result, 55u);
  EXPECT_GT(r.insns, 40u);
  EXPECT_GE(r.cycles, r.insns);  // every op costs >= 1 cycle
}

TEST(Interp, ArgumentsArriveInR1ToR4) {
  Builder b;
  b.addu(kRegArg0, kRegArg0, kRegArg1);
  b.addu(kRegArg0, kRegArg0, kRegArg2);
  b.addu(kRegArg0, kRegArg0, kRegArg3);
  b.halt();
  const Program prog = b.take();
  const ExecResult r = execute(prog, null_env(), {}, 1, 2, 3, 4);
  EXPECT_EQ(r.result, 10u);
}

TEST(Interp, R0IsHardwiredZero) {
  Builder b;
  b.movi(kRegZero, 1234);
  b.mov(kRegArg0, kRegZero);
  b.halt();
  const ExecResult r = execute(b.take(), null_env());
  EXPECT_EQ(r.result, 0u);
}

TEST(Interp, VoluntaryAbortCarriesCode) {
  Builder b;
  b.abort(77);
  const ExecResult r = execute(b.take(), null_env());
  EXPECT_EQ(r.outcome, Outcome::VoluntaryAbort);
  EXPECT_EQ(r.abort_code, 77u);
}

TEST(Interp, DivideByZeroFaults) {
  Builder b;
  const Reg x = b.reg();
  b.movi(x, 5);
  b.divu(kRegArg0, x, kRegZero);
  b.halt();
  const ExecResult r = execute(b.take(), null_env());
  EXPECT_EQ(r.outcome, Outcome::DivideByZero);
  EXPECT_EQ(r.fault_pc, 1u);
}

TEST(Interp, RemuByZeroFaults) {
  Builder b;
  b.remu(kRegArg0, kRegArg0, kRegZero);
  b.halt();
  EXPECT_EQ(execute(b.take(), null_env()).outcome, Outcome::DivideByZero);
}

TEST(Interp, InfiniteLoopHitsInsnBudget) {
  Builder b;
  Label loop = b.label();
  b.bind(loop);
  b.jmp(loop);
  ExecLimits limits;
  limits.max_insns = 1000;
  const ExecResult r = execute(b.take(), null_env(), limits);
  EXPECT_EQ(r.outcome, Outcome::BudgetExceeded);
  EXPECT_EQ(r.insns, 1000u);
}

TEST(Interp, CycleCeilingActsAsTimer) {
  Builder b;
  Label loop = b.label();
  b.bind(loop);
  b.jmp(loop);
  ExecLimits limits;
  limits.max_cycles = 500;
  const ExecResult r = execute(b.take(), null_env(), limits);
  EXPECT_EQ(r.outcome, Outcome::BudgetExceeded);
  EXPECT_GE(r.cycles, 500u);
  EXPECT_LT(r.cycles, 510u);
}

TEST(Interp, BudgetOpFaultsWhenExhausted) {
  Builder b;
  Label loop = b.label();
  b.bind(loop);
  b.emit({Op::Budget, 0, 0, 0, 10});
  b.jmp(loop);
  ExecLimits limits;
  limits.software_budget = 100;
  const ExecResult r = execute(b.take(), null_env(), limits);
  EXPECT_EQ(r.outcome, Outcome::BudgetExceeded);
  // 100/10 = at most 10 Budget executions, i.e. ~20 instructions total.
  EXPECT_LE(r.insns, 21u);
}

TEST(Interp, MemoryReadWriteThroughEnv) {
  FlatMemoryEnv env(64);
  env.memory()[8] = 0x78;
  env.memory()[9] = 0x56;
  env.memory()[10] = 0x34;
  env.memory()[11] = 0x12;
  Builder b;
  const Reg base = b.reg();
  const Reg v = b.reg();
  b.movi(base, 8);
  b.lw(v, base, 0);          // little-endian: 0x12345678
  b.sw(v, base, 4);          // store at 12
  b.lbu(kRegArg0, base, 4);  // low byte of stored word
  b.halt();
  const ExecResult r = execute(b.take(), env);
  ASSERT_EQ(r.outcome, Outcome::Halted);
  EXPECT_EQ(r.result, 0x78u);
  EXPECT_EQ(env.memory()[12], 0x78);
  EXPECT_EQ(env.memory()[15], 0x12);
}

TEST(Interp, SignExtendingLoads) {
  FlatMemoryEnv env(16);
  env.memory()[0] = 0x80;  // Lb -> 0xffffff80
  env.memory()[2] = 0x00;
  env.memory()[3] = 0x80;  // Lh at 2 -> 0xffff8000 (little-endian)
  Builder b;
  const Reg t = b.reg();
  b.lb(t, kRegZero, 0);
  b.lh(kRegArg0, kRegZero, 2);
  b.addu(kRegArg0, kRegArg0, t);
  b.halt();
  const ExecResult r = execute(b.take(), env);
  EXPECT_EQ(r.result, 0xffff8000u + 0xffffff80u);
}

TEST(Interp, OutOfBoundsAccessFaults) {
  FlatMemoryEnv env(16);
  Builder b;
  const Reg base = b.reg();
  b.movi(base, 16);
  b.lw(kRegArg0, base, 0);
  b.halt();
  EXPECT_EQ(execute(b.take(), env).outcome, Outcome::MemFault);
}

TEST(Interp, MisalignedWordAccessFaults) {
  FlatMemoryEnv env(16);
  Builder b;
  const Reg base = b.reg();
  b.movi(base, 2);
  b.lw(kRegArg0, base, 0);
  b.halt();
  EXPECT_EQ(execute(b.take(), env).outcome, Outcome::AlignFault);
}

TEST(Interp, UnalignedExtensionLoadsAnywhere) {
  FlatMemoryEnv env(16);
  for (int i = 0; i < 16; ++i) {
    env.memory()[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  }
  Builder b;
  const Reg base = b.reg();
  b.movi(base, 3);
  b.lw_u(kRegArg0, base, 0);
  b.halt();
  const ExecResult r = execute(b.take(), env);
  ASSERT_EQ(r.outcome, Outcome::Halted);
  EXPECT_EQ(r.result, 0x06050403u);
}

TEST(Interp, IndirectJumpWithinProgram) {
  Builder b;
  const Reg t = b.reg();
  Label target = b.label();
  b.movi(t, 3);
  b.jr(t);
  b.abort(1);  // skipped
  b.bind(target);
  b.movi(kRegArg0, 99);
  b.halt();
  const ExecResult r = execute(b.take(), null_env());
  EXPECT_EQ(r.outcome, Outcome::Halted);
  EXPECT_EQ(r.result, 99u);
}

TEST(Interp, IndirectJumpOutOfBoundsFaults) {
  Builder b;
  const Reg t = b.reg();
  b.movi(t, 1000);
  b.jr(t);
  b.halt();
  EXPECT_EQ(execute(b.take(), null_env()).outcome,
            Outcome::IndirectJumpFault);
}

TEST(Interp, JrChkOnlyAllowsRegisteredTargets) {
  Builder b;
  const Reg t = b.reg();
  Label ok = b.label();
  b.movi(t, 4);  // not the registered target (which is @3)
  b.emit({Op::JrChk, t, 0, 0, 0});
  b.halt();
  b.bind(ok);
  b.mark_indirect(ok);
  b.movi(kRegArg0, 1);
  b.halt();
  Program prog = b.take();
  EXPECT_EQ(execute(prog, null_env()).outcome, Outcome::IndirectJumpFault);
  // Now jump to the registered target (@3).
  prog.insns[0].imm = 3;
  const ExecResult r = execute(prog, null_env());
  EXPECT_EQ(r.outcome, Outcome::Halted);
  EXPECT_EQ(r.result, 1u);
}

TEST(Interp, CallAndRet) {
  Builder b;
  Label fn = b.label();
  b.call(fn);
  b.addiu(kRegArg0, kRegArg0, 1);  // runs after return
  b.halt();
  b.bind(fn);
  b.movi(kRegArg0, 10);
  b.ret();
  const ExecResult r = execute(b.take(), null_env());
  EXPECT_EQ(r.outcome, Outcome::Halted);
  EXPECT_EQ(r.result, 11u);
}

TEST(Interp, CallDepthOverflowFaults) {
  Builder b;
  Label fn = b.label();
  b.bind(fn);
  b.call(fn);  // infinite recursion
  b.halt();
  const ExecResult r = execute(b.take(), null_env());
  EXPECT_EQ(r.outcome, Outcome::CallDepthExceeded);
}

TEST(Interp, RetWithoutCallFaults) {
  Builder b;
  b.ret();
  EXPECT_EQ(execute(b.take(), null_env()).outcome,
            Outcome::CallDepthExceeded);
}

TEST(Interp, Cksum32MatchesUtil) {
  Builder b;
  const Reg acc = b.reg();
  const Reg v = b.reg();
  b.movi(acc, 0xffff0000u);
  b.movi(v, 0x0001ffffu);
  b.cksum32(acc, v);
  b.mov(kRegArg0, acc);
  b.halt();
  const ExecResult r = execute(b.take(), null_env());
  EXPECT_EQ(r.result, util::cksum32_accumulate(0xffff0000u, 0x0001ffffu));
}

TEST(Interp, ByteswapOps) {
  Builder b;
  const Reg v = b.reg();
  b.movi(v, 0x11223344u);
  b.bswap32(v, v);
  b.mov(kRegArg0, v);
  b.halt();
  EXPECT_EQ(execute(b.take(), null_env()).result, 0x44332211u);

  Builder b2;
  const Reg w = b2.reg();
  b2.movi(w, 0x0000abcdu);
  b2.bswap16(kRegArg0, w);
  b2.halt();
  EXPECT_EQ(execute(b2.take(), null_env()).result, 0x0000cdabu);
}

TEST(Interp, PipeIoAgainstStreamEnv) {
  StreamEnv env;
  const std::uint8_t input[] = {1, 2, 3, 4, 5, 6, 7, 8};
  env.bind_input(input);
  // Byteswap pipe body: read 32 bits, swap, write 32 bits, twice.
  Builder b;
  const Reg v = b.reg();
  const Reg i = b.reg();
  Label loop = b.label();
  Label done = b.label();
  const Reg two = b.reg();
  b.movi(i, 0);
  b.movi(two, 2);
  b.bind(loop);
  b.bgeu(i, two, done);
  b.pin32(v);
  b.bswap32(v, v);
  b.pout32(v);
  b.addiu(i, i, 1);
  b.jmp(loop);
  b.bind(done);
  b.halt();
  const ExecResult r = execute(b.take(), env);
  ASSERT_EQ(r.outcome, Outcome::Halted);
  ASSERT_EQ(env.output().size(), 8u);
  const std::uint8_t expect[] = {4, 3, 2, 1, 8, 7, 6, 5};
  for (int k = 0; k < 8; ++k) EXPECT_EQ(env.output()[static_cast<std::size_t>(k)], expect[k]) << k;
}

TEST(Interp, PipeInputExhaustionFaults) {
  StreamEnv env;
  const std::uint8_t input[] = {1, 2};
  env.bind_input(input);
  Builder b;
  const Reg v = b.reg();
  b.pin32(v);  // only 2 bytes available
  b.halt();
  EXPECT_EQ(execute(b.take(), env).outcome, Outcome::StreamFault);
}

TEST(Interp, TrustedCallsDeniedByDefaultEnv) {
  Builder b;
  b.t_msglen(kRegArg0);
  b.halt();
  EXPECT_EQ(execute(b.take(), null_env()).outcome, Outcome::TrustedDenied);
}

TEST(Interp, PersistentRegisterImportExport) {
  // The pipe accumulator pattern: caller seeds a register, runs, reads it
  // back (Section II-B export/import).
  Builder b;
  const Reg acc = b.reg();
  b.addiu(acc, acc, 5);
  b.halt();
  const Program prog = b.take();
  Env env;
  Interpreter interp(prog, env);
  interp.set_reg(acc, 100);
  const ExecResult r = interp.run();
  EXPECT_EQ(r.outcome, Outcome::Halted);
  EXPECT_EQ(interp.reg(acc), 105u);
}

TEST(Interp, FallOffEndIsBadInstruction) {
  Program prog;
  prog.insns.push_back({Op::Nop, 0, 0, 0, 0});
  EXPECT_EQ(execute(prog, null_env()).outcome, Outcome::BadInstruction);
}

// Property: random arithmetic-only programs never touch memory or escape —
// they terminate with Halted or a clean fault, never run past the budget
// silently. Exercises the interpreter's total coverage of opcode space.
class RandomArithProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomArithProperty, AlwaysTerminatesCleanly) {
  util::Rng rng(GetParam());
  Builder b;
  const Reg r1 = b.reg(), r2 = b.reg(), r3 = b.reg();
  const Reg regs[] = {r1, r2, r3, kRegArg0};
  b.movi(r1, static_cast<std::uint32_t>(rng.next()));
  b.movi(r2, static_cast<std::uint32_t>(rng.next()));
  b.movi(r3, static_cast<std::uint32_t>(rng.next()));
  const int len = static_cast<int>(rng.range(1, 40));
  for (int i = 0; i < len; ++i) {
    const Reg d = regs[rng.below(4)];
    const Reg s = regs[rng.below(4)];
    const Reg t = regs[rng.below(4)];
    switch (rng.below(8)) {
      case 0: b.addu(d, s, t); break;
      case 1: b.subu(d, s, t); break;
      case 2: b.mulu(d, s, t); break;
      case 3: b.xor_(d, s, t); break;
      case 4: b.slli(d, s, static_cast<std::uint32_t>(rng.below(32))); break;
      case 5: b.sltu(d, s, t); break;
      case 6: b.cksum32(d, s); break;
      default: b.bswap32(d, s); break;
    }
  }
  b.halt();
  const ExecResult r = execute(b.take(), null_env());
  EXPECT_EQ(r.outcome, Outcome::Halted);
  EXPECT_EQ(r.insns, static_cast<std::uint64_t>(len) + 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomArithProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace ash::vcode
