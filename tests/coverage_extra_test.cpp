// Cross-cutting coverage: timed channel waits, striped DILP loops,
// serialization of sandboxed programs, software-budget ASHs, pre-bound
// translation, and livelock-quota window refresh.
#include <gtest/gtest.h>

#include <cstring>

#include "ashlib/handlers.hpp"
#include "core/ash.hpp"
#include "core/ash_env.hpp"
#include "dilp/engine.hpp"
#include "dilp/stdpipes.hpp"
#include "sim/kernel.hpp"
#include "sim/memops.hpp"
#include "sim/simulator.hpp"
#include "util/byteorder.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"
#include "vcode/env_util.hpp"

namespace ash {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;
using sim::WaitChannel;

TEST(WaitChannelTimed, TimesOutWhenNothingArrives) {
  Simulator s;
  Node& node = s.add_node("n");
  WaitChannel ch;
  bool got = true;
  sim::Cycles woke = 0;
  node.kernel().spawn("p", [&](Process& self) -> Task {
    got = co_await ch.wait_for(self, us(1000.0));
    woke = self.node().now();
  });
  s.run();
  EXPECT_FALSE(got);
  EXPECT_GE(woke, us(1000.0));
  EXPECT_LT(woke, us(1200.0));
}

TEST(WaitChannelTimed, TokenBeforeWaitReturnsImmediately) {
  Simulator s;
  Node& node = s.add_node("n");
  WaitChannel ch;
  ch.notify();
  bool got = false;
  node.kernel().spawn("p", [&](Process& self) -> Task {
    got = co_await ch.wait_for(self, us(1000.0));
  });
  s.run();
  EXPECT_TRUE(got);
}

TEST(WaitChannelTimed, NotifyBeatsTimeout) {
  Simulator s;
  Node& node = s.add_node("n");
  WaitChannel ch;
  bool got = false;
  node.kernel().spawn("p", [&](Process& self) -> Task {
    got = co_await ch.wait_for(self, us(10000.0));
  });
  s.queue().schedule_at(us(500.0), [&] { ch.notify(); });
  s.run();
  EXPECT_TRUE(got);
}

TEST(WaitChannelTimed, TimeoutDoesNotCorruptLaterWaits) {
  Simulator s;
  Node& node = s.add_node("n");
  WaitChannel ch;
  int rounds = 0;
  node.kernel().spawn("p", [&](Process& self) -> Task {
    const bool first = co_await ch.wait_for(self, us(500.0));
    EXPECT_FALSE(first);
    ++rounds;
    const bool second = co_await ch.wait_for(self, us(50000.0));
    EXPECT_TRUE(second);
    ++rounds;
  });
  s.queue().schedule_at(us(2000.0), [&] { ch.notify(); });
  s.run();
  EXPECT_EQ(rounds, 2);
}

TEST(DilpStriped, FusedLoopReadsStripedSource) {
  // Compile a checksum|copy loop with the Ethernet striped-source layout
  // and verify it destripes correctly with the right checksum.
  sim::Simulator s;
  sim::Node& node = s.add_node("n");
  dilp::Engine engine;
  dilp::PipeList pl;
  pl.add(dilp::make_cksum_pipe(nullptr));
  std::string error;
  dilp::LoopLayout layout;
  layout.src_stripe_chunk = 16;
  const int id =
      engine.register_ilp(pl, dilp::Direction::Read, &error, layout);
  ASSERT_GE(id, 0) << error;

  // Stage 64 logical bytes striped at 0x1000; destination 0x3000.
  util::Rng rng(5);
  std::vector<std::uint8_t> logical(64);
  for (auto& b : logical) b = static_cast<std::uint8_t>(rng.next());
  std::uint8_t* striped = node.mem(0x1000, 128);
  std::memset(striped, 0xee, 128);
  for (int i = 0; i < 64; ++i) {
    striped[(i / 16) * 32 + (i % 16)] = logical[static_cast<std::size_t>(i)];
  }

  class Env final : public vcode::Env {
   public:
    explicit Env(sim::Node& n) : n_(n) {}
    bool mem_read(std::uint32_t a, void* d, std::uint32_t l) override {
      const auto* p = n_.mem(a, l);
      if (!p) return false;
      std::memcpy(d, p, l);
      return true;
    }
    bool mem_write(std::uint32_t a, const void* s, std::uint32_t l) override {
      auto* p = n_.mem(a, l);
      if (!p) return false;
      std::memcpy(p, s, l);
      return true;
    }

   private:
    sim::Node& n_;
  } env(node);

  std::vector<std::uint32_t> persist;
  const std::uint32_t seed[] = {0};
  const auto r = engine.run(id, env, 0x1000, 0x3000, 64, seed, &persist);
  ASSERT_TRUE(r.ok()) << vcode::to_string(r.exec.outcome);
  const std::uint8_t* out = node.mem(0x3000, 64);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(out[i], logical[static_cast<std::size_t>(i)]) << i;
  }
  // Accumulator == checksum of the logical bytes.
  std::uint32_t acc = 0;
  for (int i = 0; i < 64; i += 4) {
    acc = util::cksum32_accumulate(acc,
                                   util::load_u32(logical.data() + i));
  }
  ASSERT_EQ(persist.size(), 1u);
  EXPECT_EQ(persist[0], acc);
}

TEST(SandboxedProgramSerialization, RoundTripsIndirectMap) {
  vcode::Builder b;
  const vcode::Reg t = b.reg();
  vcode::Label target = b.label();
  b.movi(t, 2);
  b.jr(t);
  b.bind(target);
  b.mark_indirect(target);
  b.halt();
  sandbox::Options opts;
  opts.segment = {0x100000, 0x100000};
  std::string error;
  const auto boxed = sandbox::sandbox(b.take(), opts, &error);
  ASSERT_TRUE(boxed.has_value()) << error;
  ASSERT_FALSE(boxed->program.indirect_map.empty());
  EXPECT_TRUE(boxed->program.sandboxed);

  const auto bytes = boxed->program.serialize();
  const auto back = vcode::Program::deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, boxed->program);
}

struct AshWorld {
  Simulator sim;
  Node* a;
  Node* b;
  net::An2Device* dev_a;
  net::An2Device* dev_b;
  core::AshSystem* ash_b;
  AshWorld() {
    a = &sim.add_node("a");
    b = &sim.add_node("b");
    dev_a = new net::An2Device(*a);
    dev_b = new net::An2Device(*b);
    dev_a->connect(*dev_b);
    ash_b = new core::AshSystem(*b);
  }
  ~AshWorld() {
    delete ash_b;
    delete dev_a;
    delete dev_b;
  }
};

TEST(AshOptionsCoverage, SoftwareBudgetModeStopsRunaways) {
  AshWorld w;
  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    const int vc = w.dev_b->bind_vc(self);
    w.dev_b->supply_buffer(vc, self.segment().base, 64);
    vcode::Builder bld;
    vcode::Label loop = bld.label();
    bld.bind(loop);
    bld.jmp(loop);
    core::AshOptions opts;
    opts.software_budget_checks = true;
    std::string error;
    const int id = w.ash_b->download(self, bld.take(), opts, &error);
    EXPECT_GE(id, 0) << error;
    w.ash_b->attach_an2(*w.dev_b, vc, id);
    co_await self.sleep_for(us(50000.0));
    EXPECT_EQ(w.ash_b->stats(id).involuntary_aborts, 1u);
  });
  w.sim.queue().schedule_at(us(200.0), [&] {
    const std::uint8_t m[] = {1, 2, 3, 4};
    w.dev_a->send(0, m);
  });
  w.sim.run();
}

TEST(AshOptionsCoverage, PreboundTranslationShavesDispatch) {
  auto kernel_cycles = [](bool prebound) {
    AshWorld w;
    w.b->kernel().spawn("owner", [&, prebound](Process& self) -> Task {
      const int vc = w.dev_b->bind_vc(self);
      w.dev_b->supply_buffer(vc, self.segment().base, 64);
      core::AshOptions opts;
      opts.prebound_translation = prebound;
      std::string error;
      const int id = w.ash_b->download(
          self, ashlib::make_remote_increment(), opts, &error);
      w.ash_b->attach_an2(*w.dev_b, vc, id, self.segment().base + 0x100);
      co_await self.sleep_for(us(50000.0));
    });
    w.sim.queue().schedule_at(us(200.0), [&] {
      const std::uint8_t m[] = {1, 2, 3, 4};
      w.dev_a->send(0, m);
    });
    w.sim.run();
    return w.b->kernel_cycles_total();
  };
  const auto with = kernel_cycles(true);
  const auto without = kernel_cycles(false);
  EXPECT_EQ(without - with, sim::CostModel{}.ash_context_install);
}

TEST(Livelock, WindowRefreshRestoresQuota) {
  AshWorld w;
  w.ash_b->set_livelock_quota(1, us(1000.0));
  int delivered_normally = 0;
  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    const int vc = w.dev_b->bind_vc(self);
    for (int i = 0; i < 8; ++i) {
      w.dev_b->supply_buffer(
          vc, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
    }
    vcode::Builder bld;
    bld.movi(vcode::kRegArg0, 1);
    bld.halt();
    std::string error;
    const int id = w.ash_b->download(self, bld.take(), {}, &error);
    w.ash_b->attach_an2(*w.dev_b, vc, id);
    co_await self.sleep_for(us(50000.0));
    // Two messages, >1 ms apart: both within quota (window refreshed).
    EXPECT_EQ(w.ash_b->stats(id).commits, 2u);
    EXPECT_EQ(w.ash_b->stats(id).livelock_deferrals, 0u);
    while (w.dev_b->poll(vc).has_value()) ++delivered_normally;
  });
  const std::uint8_t m[] = {1, 2, 3, 4};
  w.sim.queue().schedule_at(us(200.0), [&] { w.dev_a->send(0, m); });
  w.sim.queue().schedule_at(us(2000.0), [&] { w.dev_a->send(0, m); });
  w.sim.run();
  EXPECT_EQ(delivered_normally, 0);
}

}  // namespace
}  // namespace ash
