#include "ashlib/handlers.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "core/ash.hpp"
#include "sandbox/sfi.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/byteorder.hpp"

namespace ash::ashlib {
namespace {

/// Poll a device VC for a reply with a deadline. A named function, not a
/// lambda: coroutine lambdas must outlive their frames (see sim/task.hpp).
sim::Sub<std::optional<net::RxDesc>> poll_reply(sim::Process& self,
                                                net::An2Device& dev, int vc,
                                                sim::Cycles timeout) {
  const sim::Cycles deadline = self.node().now() + timeout;
  for (;;) {
    if (auto got = dev.poll(vc)) co_return got;
    if (self.node().now() >= deadline) co_return std::nullopt;
    co_await self.compute(self.node().cost().poll_iteration);
  }
}

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

struct World {
  Simulator sim;
  Node* a;
  Node* b;
  net::An2Device* dev_a;
  net::An2Device* dev_b;
  core::AshSystem* ash_b;

  World() {
    a = &sim.add_node("a");
    b = &sim.add_node("b");
    dev_a = new net::An2Device(*a);
    dev_b = new net::An2Device(*b);
    dev_a->connect(*dev_b);
    ash_b = new core::AshSystem(*b);
  }
  ~World() {
    delete ash_b;
    delete dev_a;
    delete dev_b;
  }

  /// Spawn a server process on b that downloads `prog` (per opts), attaches
  /// it with `user_arg` resolved via `make_arg(proc)`, then sleeps.
  template <typename MakeArg>
  void serve(const vcode::Program& prog, const core::AshOptions& opts,
             MakeArg make_arg, int* ash_id_out) {
    b->kernel().spawn("owner", [this, prog, opts, make_arg,
                                ash_id_out](Process& self) -> Task {
      const int vc = dev_b->bind_vc(self);
      for (int i = 0; i < 8; ++i) {
        dev_b->supply_buffer(
            vc, self.segment().base + 256u * static_cast<std::uint32_t>(i),
            256);
      }
      std::string error;
      const int id = ash_b->download(self, prog, opts, &error);
      EXPECT_GE(id, 0) << error;
      if (ash_id_out != nullptr) *ash_id_out = id;
      ash_b->attach_an2(*dev_b, vc, id, make_arg(self));
      co_await self.sleep_for(us(200000.0));
    });
  }

  /// Send raw messages from a and collect replies.
  void client(std::vector<std::vector<std::uint8_t>> msgs,
              std::vector<std::vector<std::uint8_t>>* replies) {
    a->kernel().spawn("client", [this, msgs = std::move(msgs),
                                 replies](Process& self) -> Task {
      const int vc = dev_a->bind_vc(self);
      for (int i = 0; i < 8; ++i) {
        dev_a->supply_buffer(
            vc, self.segment().base + 256u * static_cast<std::uint32_t>(i),
            256);
      }
      co_await self.sleep_for(us(500.0));
      for (const auto& m : msgs) {
        co_await self.syscall(dev_a->config().tx_kernel_work);
        dev_a->send(0, m);
        const auto d = co_await poll_reply(self, *dev_a, vc, us(50000.0));
        if (replies != nullptr) {
          if (d.has_value()) {
            const std::uint8_t* p = a->mem(d->addr, d->len);
            replies->emplace_back(p, p + d->len);
            dev_a->return_buffer(vc, d->addr, 256);
          } else {
            replies->emplace_back();  // timeout marker
          }
        }
      }
    });
  }
};

std::vector<std::uint8_t> words(std::initializer_list<std::uint32_t> ws) {
  std::vector<std::uint8_t> out(4 * ws.size());
  std::size_t i = 0;
  for (std::uint32_t w : ws) {
    util::store_u32(out.data() + 4 * i++, w);
  }
  return out;
}

TEST(Handlers, RemoteIncrementSandboxedEndToEnd) {
  World w;
  int id = -1;
  std::uint32_t ctr_addr = 0;
  std::vector<std::vector<std::uint8_t>> replies;
  w.serve(make_remote_increment(), {},
          [&](Process& self) {
            ctr_addr = self.segment().base + 0x3000;
            return ctr_addr;
          },
          &id);
  w.client({words({7}), words({8}), words({9})}, &replies);
  w.sim.run();
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[0], words({7}));  // echo
  EXPECT_EQ(util::load_u32(w.b->mem(ctr_addr, 4)), 3u);
  EXPECT_EQ(w.ash_b->stats(id).commits, 3u);
  // The paper's instruction-count regime: tens of instructions per
  // invocation, not thousands.
  EXPECT_LT(w.ash_b->stats(id).insns / 3, 400u);
}

TEST(Handlers, RemoteIncrementRejectsShortMessage) {
  World w;
  int id = -1;
  w.serve(make_remote_increment(), {},
          [&](Process& self) { return self.segment().base + 0x3000; }, &id);
  w.client({{1, 2}}, nullptr);  // 2-byte runt
  w.sim.run();
  EXPECT_EQ(w.ash_b->stats(id).voluntary_aborts, 1u);
  EXPECT_EQ(w.ash_b->stats(id).commits, 0u);
}

TEST(Handlers, RemoteWriteSpecificWritesPayload) {
  World w;
  int id = -1;
  std::uint32_t dst = 0;
  w.serve(make_remote_write_specific(), {},
          [&](Process& self) {
            dst = self.segment().base + 0x4000;
            return self.segment().base;
          },
          &id);
  // The message carries the destination pointer (trusted-peer protocol);
  // the owner is the first process on node b, so its segment base is
  // one kSegmentSize.
  auto msg = words({sim::Kernel::kSegmentSize + 0x4000, 0x11223344u,
                    0x55667788u});
  w.client({msg}, nullptr);
  w.sim.run();
  EXPECT_EQ(w.ash_b->stats(id).commits, 1u);
  EXPECT_EQ(util::load_u32(w.b->mem(dst, 4)), 0x11223344u);
  EXPECT_EQ(util::load_u32(w.b->mem(dst + 4, 4)), 0x55667788u);
}

TEST(Handlers, RemoteWriteSpecificCannotEscapeSegment) {
  World w;
  int id = -1;
  w.serve(make_remote_write_specific(), {},
          [&](Process& self) { return self.segment().base; }, &id);
  // Destination in the kernel area below every process segment:
  // TUserCopy must refuse, and the handler aborts.
  const std::uint32_t evil = 0x9000;
  w.client({words({evil, 0xdeadbeefu})}, nullptr);
  w.sim.run();
  EXPECT_EQ(w.ash_b->stats(id).commits, 0u);
  EXPECT_EQ(w.ash_b->stats(id).voluntary_aborts, 1u);
  EXPECT_EQ(util::load_u32(w.b->mem(evil, 4)), 0u);
}

TEST(Handlers, RemoteWriteGenericTranslatesAndBoundsChecks) {
  World w;
  int id = -1;
  std::uint32_t table = 0, region = 0;
  w.serve(make_remote_write_generic(), {},
          [&](Process& self) {
            table = self.segment().base + 0x100;
            region = self.segment().base + 0x8000;
            // table: n=2, seg0 = {region, 64}, seg1 = {region+0x100, 16}
            util::store_u32(w.b->mem(table, 4), 2);
            util::store_u32(w.b->mem(table + 4, 4), region);
            util::store_u32(w.b->mem(table + 8, 4), 64);
            util::store_u32(w.b->mem(table + 12, 4), region + 0x100);
            util::store_u32(w.b->mem(table + 16, 4), 16);
            return table;
          },
          &id);
  std::vector<std::vector<std::uint8_t>> msgs;
  // Valid: seg 0, offset 8, size 8.
  msgs.push_back(words({0, 8, 8, 0xaaaaaaaau, 0xbbbbbbbbu}));
  // Invalid segment number.
  msgs.push_back(words({5, 0, 4, 0x11111111u}));
  // Overflow: offset+size beyond limit of seg 1.
  msgs.push_back(words({1, 12, 8, 0x22222222u, 0x33333333u}));
  // Size larger than the message payload.
  msgs.push_back(words({0, 0, 64, 0x44444444u}));
  w.client(std::move(msgs), nullptr);
  w.sim.run();
  EXPECT_EQ(w.ash_b->stats(id).commits, 1u);
  EXPECT_EQ(w.ash_b->stats(id).voluntary_aborts, 3u);
  EXPECT_EQ(util::load_u32(w.b->mem(region + 8, 4)), 0xaaaaaaaau);
  EXPECT_EQ(util::load_u32(w.b->mem(region + 12, 4)), 0xbbbbbbbbu);
  EXPECT_EQ(util::load_u32(w.b->mem(region + 0x100 + 12, 4)), 0u);
}

TEST(Handlers, ActiveMessageDispatcherJumpsThroughSandbox) {
  World w;
  int id = -1;
  std::uint32_t cell = 0;
  w.serve(make_active_message_dispatcher(4), {},
          [&](Process& self) {
            cell = self.segment().base + 0x2000;
            return cell;
          },
          &id);
  // Invoke handlers 2, 0, 3: cell += 3 + 1 + 4 = 8.
  w.client({words({2}), words({0}), words({3}), words({99})}, nullptr);
  w.sim.run();
  EXPECT_EQ(w.ash_b->stats(id).commits, 3u);
  EXPECT_EQ(w.ash_b->stats(id).voluntary_aborts, 1u);  // index 99
  EXPECT_EQ(util::load_u32(w.b->mem(cell, 4)), 8u);
  // The downloaded program really is sandboxed with an indirect map.
  EXPECT_TRUE(w.ash_b->program(id).sandboxed);
  EXPECT_GE(w.ash_b->program(id).indirect_map.size(), 4u);
}

TEST(Handlers, DsmLockAcquireBusyRelease) {
  World w;
  int id = -1;
  std::uint32_t locks = 0;
  std::vector<std::vector<std::uint8_t>> replies;
  w.serve(make_dsm_lock_handler(8), {},
          [&](Process& self) {
            locks = self.segment().base + 0x1000;
            return locks;
          },
          &id);
  w.client(
      {
          words({1, 3, 42}),  // acquire lock 3 as node 42 -> granted
          words({1, 3, 43}),  // acquire as 43 -> busy
          words({2, 3, 42}),  // release by 42 -> released
          words({1, 3, 43}),  // now 43 gets it
      },
      &replies);
  w.sim.run();
  ASSERT_EQ(replies.size(), 4u);
  EXPECT_EQ(util::load_u32(replies[0].data()), 1u);  // granted
  EXPECT_EQ(util::load_u32(replies[1].data()), 0u);  // busy
  EXPECT_EQ(util::load_u32(replies[2].data()), 2u);  // released
  EXPECT_EQ(util::load_u32(replies[3].data()), 1u);  // granted
  EXPECT_EQ(util::load_u32(w.b->mem(locks + 12, 4)), 43u);
}

TEST(Handlers, AllBuildersProduceSandboxablePrograms) {
  sandbox::Options opts;
  opts.segment = {0x100000, 0x100000};
  for (const auto& prog :
       {make_remote_increment(), make_remote_write_specific(),
        make_remote_write_generic(), make_active_message_dispatcher(8),
        make_dsm_lock_handler(16)}) {
    std::string error;
    const auto boxed = sandbox::sandbox(prog, opts, &error);
    EXPECT_TRUE(boxed.has_value()) << error;
  }
}

}  // namespace
}  // namespace ash::ashlib
