#include "dilp/pipe.hpp"

#include <gtest/gtest.h>

#include "dilp/stdpipes.hpp"
#include "util/checksum.hpp"
#include "vcode/env_util.hpp"
#include "vcode/interp.hpp"

namespace ash::dilp {
namespace {

TEST(Pipe, StdPipesValidate) {
  vcode::Reg acc = 0;
  EXPECT_EQ(validate_pipe(make_cksum_pipe(&acc)), "");
  EXPECT_EQ(validate_pipe(make_byteswap_pipe()), "");
  EXPECT_EQ(validate_pipe(make_byteswap16_pipe()), "");
  EXPECT_EQ(validate_pipe(make_xor_pipe(nullptr)), "");
  EXPECT_EQ(validate_pipe(make_identity_pipe(Gauge::G8)), "");
}

TEST(Pipe, CksumPipeHasPaperAttributes) {
  vcode::Reg acc = 0;
  const Pipe p = make_cksum_pipe(&acc);
  EXPECT_TRUE(p.commutative());
  EXPECT_TRUE(p.no_mod());
  EXPECT_EQ(p.in_gauge, Gauge::G32);
  ASSERT_EQ(p.persistent.size(), 1u);
  EXPECT_EQ(p.persistent[0], acc);
}

TEST(Pipe, RejectsMemoryAccess) {
  PipeBuilder pb("bad", Gauge::G32, Gauge::G32, 0);
  const vcode::Reg v = pb.temp_reg();
  pb.code().pin32(v);
  pb.code().lw(v, v, 0);  // pipes must not touch memory
  pb.code().pout32(v);
  EXPECT_THROW(pb.finish(), std::invalid_argument);
}

TEST(Pipe, RejectsMissingInput) {
  PipeBuilder pb("bad", Gauge::G32, Gauge::G32, 0);
  const vcode::Reg v = pb.temp_reg();
  pb.code().movi(v, 1);
  pb.code().pout32(v);
  EXPECT_THROW(pb.finish(), std::invalid_argument);
}

TEST(Pipe, RejectsMissingOutputUnlessNoMod) {
  {
    PipeBuilder pb("bad", Gauge::G32, Gauge::G32, 0);
    const vcode::Reg v = pb.temp_reg();
    pb.code().pin32(v);
    EXPECT_THROW(pb.finish(), std::invalid_argument);
  }
  {
    PipeBuilder pb("ok", Gauge::G32, Gauge::G32, kNoMod);
    const vcode::Reg v = pb.temp_reg();
    pb.code().pin32(v);
    EXPECT_NO_THROW(pb.finish());
  }
}

TEST(Pipe, RejectsGaugeMismatch) {
  PipeBuilder pb("bad", Gauge::G16, Gauge::G16, 0);
  const vcode::Reg v = pb.temp_reg();
  pb.code().pin32(v);  // declared 16-bit gauge, reads 32
  pb.code().pout16(v);
  EXPECT_THROW(pb.finish(), std::invalid_argument);
}

TEST(Pipe, RejectsFloatingPointBody) {
  PipeBuilder pb("bad", Gauge::G32, Gauge::G32, 0);
  const vcode::Reg v = pb.temp_reg();
  pb.code().pin32(v);
  pb.code().fadd(v, v, v);
  pb.code().pout32(v);
  EXPECT_THROW(pb.finish(), std::invalid_argument);
}

TEST(PipeList, AssignsSequentialIds) {
  PipeList pl;
  EXPECT_EQ(pl.add(make_byteswap_pipe()), 0);
  EXPECT_EQ(pl.add(make_cksum_pipe(nullptr)), 1);
  EXPECT_EQ(pl.size(), 2u);
  EXPECT_EQ(pl.at(0).name, "byteswap32");
  EXPECT_EQ(pl.at(1).name, "cksum");
}

// Run the Fig. 2 checksum pipe standalone against a byte stream and check
// it against the reference Internet checksum.
TEST(Pipe, CksumPipeStandaloneMatchesReference) {
  vcode::Reg acc_reg = 0;
  const Pipe p = make_cksum_pipe(&acc_reg);

  std::vector<std::uint8_t> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }

  vcode::StreamEnv env;
  env.bind_input(data);
  vcode::Interpreter interp(p.body, env);
  interp.set_reg(acc_reg, 0);  // export: seed the accumulator
  // One invocation consumes one word; drive it data.size()/4 times.
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < data.size() / 4; ++i) {
    vcode::Interpreter step(p.body, env);
    step.set_reg(acc_reg, acc);
    const auto r = step.run();
    ASSERT_EQ(r.outcome, vcode::Outcome::Halted);
    acc = step.reg(acc_reg);  // import
  }
  EXPECT_EQ(util::fold16_le_word_sum(acc),
            util::fold16(util::cksum_partial(data)));
}

}  // namespace
}  // namespace ash::dilp
