#include "vcode/program.hpp"

#include <gtest/gtest.h>

#include "vcode/builder.hpp"

namespace ash::vcode {
namespace {

Program sample_program() {
  Builder b;
  const Reg x = b.reg();
  const Reg y = b.reg();
  Label loop = b.label();
  Label done = b.label();
  b.movi(x, 10);
  b.movi(y, 0);
  b.bind(loop);
  b.beq(x, kRegZero, done);
  b.addu(y, y, x);
  b.addiu(x, x, static_cast<std::uint32_t>(-1));
  b.jmp(loop);
  b.bind(done);
  b.mov(kRegArg0, y);
  b.halt();
  return b.take();
}

TEST(Program, SerializeDeserializeRoundTrip) {
  const Program prog = sample_program();
  const auto bytes = prog.serialize();
  const auto back = Program::deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, prog);
}

TEST(Program, DeserializeRejectsTruncation) {
  auto bytes = sample_program().serialize();
  for (std::size_t cut = 1; cut < bytes.size(); cut += 3) {
    const std::span<const std::uint8_t> slice(bytes.data(), bytes.size() - cut);
    EXPECT_FALSE(Program::deserialize(slice).has_value()) << cut;
  }
}

TEST(Program, DeserializeRejectsBadMagic) {
  auto bytes = sample_program().serialize();
  bytes[0] ^= 0xff;
  EXPECT_FALSE(Program::deserialize(bytes).has_value());
}

TEST(Program, DeserializeRejectsInvalidOpcode) {
  auto bytes = sample_program().serialize();
  bytes[16] = 0xee;  // first instruction's opcode byte
  EXPECT_FALSE(Program::deserialize(bytes).has_value());
}

TEST(Program, DeserializeRejectsTrailingGarbage) {
  auto bytes = sample_program().serialize();
  bytes.push_back(0);
  EXPECT_FALSE(Program::deserialize(bytes).has_value());
}

TEST(Builder, ThrowsOnUnboundLabel) {
  Builder b;
  Label l = b.label();
  b.jmp(l);
  b.halt();
  EXPECT_THROW(b.take(), std::logic_error);
}

TEST(Builder, ThrowsOnDoubleBind) {
  Builder b;
  Label l = b.label();
  b.bind(l);
  EXPECT_THROW(b.bind(l), std::logic_error);
}

TEST(Builder, IndirectTargetsRecordedSortedUnique) {
  Builder b;
  Label l1 = b.label();
  Label l2 = b.label();
  b.nop();
  b.bind(l2);
  b.nop();
  b.bind(l1);
  b.halt();
  b.mark_indirect(l1);
  b.mark_indirect(l2);
  b.mark_indirect(l1);  // duplicate
  const Program prog = b.take();
  ASSERT_EQ(prog.indirect_targets.size(), 2u);
  EXPECT_EQ(prog.indirect_targets[0], 1u);
  EXPECT_EQ(prog.indirect_targets[1], 2u);
}

TEST(Builder, RegisterExhaustionThrows) {
  Builder b;
  for (int i = 0; i < kNumRegs; ++i) {
    try {
      b.reg();
    } catch (const std::length_error&) {
      SUCCEED();
      return;
    }
  }
  FAIL() << "expected register exhaustion";
}

TEST(Disassemble, ContainsMnemonicsAndTargets) {
  const Program prog = sample_program();
  const std::string text = disassemble(prog);
  EXPECT_NE(text.find("movi"), std::string::npos);
  EXPECT_NE(text.find("beq"), std::string::npos);
  EXPECT_NE(text.find("halt"), std::string::npos);
  EXPECT_NE(text.find("@2"), std::string::npos);  // loop target
}

}  // namespace
}  // namespace ash::vcode
