#include "util/checksum.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "util/rng.hpp"

namespace ash::util {
namespace {

// RFC 1071 section 3 worked example: words 0x0001, 0xf203, 0xf4f5, 0xf6f7
// sum to 0xddf2 (with carries); checksum is its complement, 0x220d.
TEST(Checksum, Rfc1071WorkedExample) {
  const std::array<std::uint8_t, 8> data = {0x00, 0x01, 0xf2, 0x03,
                                            0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(fold16(cksum_partial(data)), 0xddf2);
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, EmptyDataSumsToZero) {
  EXPECT_EQ(cksum_partial({}), 0u);
  EXPECT_EQ(internet_checksum({}), 0xffff);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::array<std::uint8_t, 3> data = {0x12, 0x34, 0x56};
  // Words: 0x1234, 0x5600.
  EXPECT_EQ(fold16(cksum_partial(data)), 0x1234 + 0x5600);
}

TEST(Checksum, AllOnesFolds) {
  std::vector<std::uint8_t> data(64, 0xff);
  EXPECT_EQ(fold16(cksum_partial(data)), 0xffff);
  EXPECT_EQ(internet_checksum(data), 0x0000);
}

TEST(Checksum, VerifyWithEmbeddedChecksumField) {
  // Build a pseudo-header-free "packet" and embed its checksum; the sum
  // over the whole thing must then verify.
  std::vector<std::uint8_t> pkt = {0xde, 0xad, 0xbe, 0xef,
                                   0x00, 0x00,  // checksum field
                                   0x12, 0x34};
  const std::uint16_t ck = internet_checksum(pkt);
  pkt[4] = static_cast<std::uint8_t>(ck >> 8);
  pkt[5] = static_cast<std::uint8_t>(ck);
  EXPECT_TRUE(checksum_ok(pkt));
  pkt[7] ^= 0x01;
  EXPECT_FALSE(checksum_ok(pkt));
}

TEST(Checksum, Accumulate32MatchesReference) {
  // cksum32_accumulate is ones'-complement addition: adding 1 to the
  // all-ones accumulator wraps end-around to 1.
  EXPECT_EQ(cksum32_accumulate(0xffffffffu, 1u), 1u);
  EXPECT_EQ(cksum32_accumulate(0, 0), 0u);
  EXPECT_EQ(cksum32_accumulate(0x80000000u, 0x80000000u), 1u);
}

// Property: incremental computation over any split equals one-shot.
class ChecksumSplitProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChecksumSplitProperty, IncrementalEqualsOneShot) {
  Rng rng(GetParam());
  std::vector<std::uint8_t> data(rng.range(2, 512));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  // Splits must be at even offsets (16-bit word alignment), which is the
  // contract stated in the header and satisfied by all protocol users.
  const std::size_t split = (rng.below(data.size()) / 2) * 2;
  const std::uint32_t whole = cksum_partial(data);
  std::uint32_t acc = cksum_partial({data.data(), split});
  acc = cksum_partial({data.data() + split, data.size() - split}, acc);
  EXPECT_EQ(fold16(acc), fold16(whole)) << "split at " << split;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChecksumSplitProperty,
                         ::testing::Range(0, 50));

// Property: 32-bit word-at-a-time accumulation (the p_cksum32 pipe
// algorithm from Fig. 2) folds to the same checksum as the byte-serial
// reference, for 4-byte-multiple messages, on a little-endian machine
// (words must be byte-swapped into big-endian order before accumulating
// to mimic summing big-endian 16-bit words).
class Cksum32WordProperty : public ::testing::TestWithParam<int> {};

TEST_P(Cksum32WordProperty, WordAccumulationMatchesByteSerial) {
  Rng rng(GetParam() + 1000);
  std::vector<std::uint8_t> data(4 * rng.range(1, 256));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());

  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < data.size(); i += 4) {
    const std::uint32_t be_word = static_cast<std::uint32_t>(data[i]) << 24 |
                                  static_cast<std::uint32_t>(data[i + 1]) << 16 |
                                  static_cast<std::uint32_t>(data[i + 2]) << 8 |
                                  static_cast<std::uint32_t>(data[i + 3]);
    acc = cksum32_accumulate(acc, be_word);
  }
  EXPECT_EQ(fold16(acc), fold16(cksum_partial(data)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Cksum32WordProperty, ::testing::Range(0, 50));

}  // namespace
}  // namespace ash::util
