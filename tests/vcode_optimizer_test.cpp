#include "vcode/optimizer.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "vcode/builder.hpp"
#include "vcode/env_util.hpp"
#include "vcode/interp.hpp"

namespace ash::vcode {
namespace {

TEST(Optimizer, RemovesSelfMoves) {
  Builder b;
  const Reg x = b.reg();
  b.movi(x, 7);
  b.mov(x, x);
  b.mov(kRegArg0, x);
  b.halt();
  Program prog = b.take();
  const OptStats stats = optimize(prog);
  EXPECT_GE(stats.folded + stats.removed, 1u);
  Env env;
  EXPECT_EQ(execute(prog, env).result, 7u);
  EXPECT_EQ(prog.insns.size(), 3u);  // self-move compacted away
}

TEST(Optimizer, FoldsMoviAddiuPairs) {
  Builder b;
  const Reg x = b.reg();
  b.movi(x, 100);
  b.addiu(x, x, 23);
  b.mov(kRegArg0, x);
  b.halt();
  Program prog = b.take();
  optimize(prog);
  Env env;
  EXPECT_EQ(execute(prog, env).result, 123u);
  EXPECT_EQ(prog.insns.size(), 3u);
  EXPECT_EQ(prog.insns[0].op, Op::Movi);
  EXPECT_EQ(prog.insns[0].imm, 123u);
}

TEST(Optimizer, DoesNotFoldAcrossBranchTarget) {
  // A branch targets the addiu, so folding movi+addiu would change the
  // behaviour of that branch path.
  Builder b;
  const Reg x = b.reg();
  Label mid = b.label();
  b.movi(x, 100);
  b.bind(mid);
  b.addiu(x, x, 23);
  b.mov(kRegArg0, x);
  b.halt();
  b.beq(kRegZero, kRegZero, mid);  // unreachable, but a real target
  Program prog = b.take();
  const std::size_t before = prog.insns.size();
  optimize(prog);
  EXPECT_EQ(prog.insns.size(), before);
  EXPECT_EQ(prog.insns[0].op, Op::Movi);
  EXPECT_EQ(prog.insns[0].imm, 100u);
}

TEST(Optimizer, ThreadsJumpChains) {
  Builder b;
  Label l1 = b.label();
  Label l2 = b.label();
  Label l3 = b.label();
  b.jmp(l1);
  b.bind(l1);
  b.jmp(l2);
  b.bind(l2);
  b.jmp(l3);
  b.bind(l3);
  b.movi(kRegArg0, 5);
  b.halt();
  Program prog = b.take();
  const OptStats stats = optimize(prog);
  EXPECT_GE(stats.threaded, 1u);
  Env env;
  EXPECT_EQ(execute(prog, env).result, 5u);
}

TEST(Optimizer, SelfLoopDoesNotHangThreading) {
  Builder b;
  Label loop = b.label();
  b.bind(loop);
  b.jmp(loop);
  Program prog = b.take();
  optimize(prog);  // must terminate
  SUCCEED();
}

TEST(Optimizer, PreservesBranchSemanticsAfterCompaction) {
  Builder b;
  const Reg x = b.reg();
  Label skip = b.label();
  b.movi(x, 1);
  b.nop();
  b.nop();
  b.beq(x, x, skip);
  b.movi(kRegArg0, 111);  // skipped
  b.bind(skip);
  b.addiu(kRegArg0, kRegArg0, 9);
  b.halt();
  Program prog = b.take();
  optimize(prog);
  Env env;
  const ExecResult r = execute(prog, env);
  EXPECT_EQ(r.outcome, Outcome::Halted);
  EXPECT_EQ(r.result, 9u);
}

TEST(Optimizer, SkipsCompactionWithIndirectJumps) {
  Builder b;
  const Reg t = b.reg();
  Label target = b.label();
  b.nop();
  b.movi(t, 4);
  b.jr(t);
  b.nop();
  b.bind(target);
  b.mark_indirect(target);
  b.movi(kRegArg0, 3);
  b.halt();
  Program prog = b.take();
  const std::size_t before = prog.insns.size();
  optimize(prog);
  // Nops must survive: indices are live data.
  EXPECT_EQ(prog.insns.size(), before);
  Env env;
  EXPECT_EQ(execute(prog, env).result, 3u);
}

// Property: optimization preserves the result of random straight-line
// arithmetic programs with interleaved movi/addiu chains and jumps.
class OptimizerEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerEquivalence, SameResultBeforeAndAfter) {
  util::Rng rng(GetParam() + 99);
  Builder b;
  const Reg r1 = b.reg(), r2 = b.reg();
  b.movi(r1, static_cast<std::uint32_t>(rng.next()));
  b.movi(r2, static_cast<std::uint32_t>(rng.next()));
  const int len = static_cast<int>(rng.range(2, 30));
  for (int i = 0; i < len; ++i) {
    switch (rng.below(6)) {
      case 0: b.movi(r1, static_cast<std::uint32_t>(rng.next())); break;
      case 1: b.addiu(r1, r1, static_cast<std::uint32_t>(rng.below(100))); break;
      case 2: b.addu(r2, r2, r1); break;
      case 3: b.mov(r2, r2); break;
      case 4: b.nop(); break;
      default: {
        Label skip = b.label();
        b.jmp(skip);
        b.bind(skip);
        break;
      }
    }
  }
  b.xor_(kRegArg0, r1, r2);
  b.halt();
  Program prog = b.take();
  Program optimized = prog;
  optimize(optimized);
  Env env;
  EXPECT_EQ(execute(prog, env).result, execute(optimized, env).result);
  EXPECT_LE(optimized.insns.size(), prog.insns.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerEquivalence, ::testing::Range(0, 40));

}  // namespace
}  // namespace ash::vcode
