// Backend selection at the AshSystem level: the interp / codecache / jit
// knob must be a pure execution-path selector. Every kernel-visible
// observable — commit counters, abort taxonomy, fault records, simulated
// cycles, supervisor containment decisions, owner memory — must be
// bit-identical across all three backends.
#include "core/ash.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/an2.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "vcode/backend.hpp"
#include "vcode/builder.hpp"

namespace ash::core {
namespace {

using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;
using vcode::Backend;
using vcode::Builder;
using vcode::kRegArg0;
using vcode::kRegArg2;
using vcode::Reg;

struct AshWorld {
  Simulator sim;
  sim::Node* a;
  sim::Node* b;
  net::An2Device* dev_a;
  net::An2Device* dev_b;
  AshSystem* ash_b;

  AshWorld() {
    a = &sim.add_node("a");
    b = &sim.add_node("b");
    dev_a = new net::An2Device(*a);
    dev_b = new net::An2Device(*b);
    dev_a->connect(*dev_b);
    ash_b = new AshSystem(*b);
  }
  ~AshWorld() {
    delete ash_b;
    delete dev_a;
    delete dev_b;
  }
};

/// Counter-increment handler: loads the counter at r3, adds one, stores it
/// back, commits.
vcode::Program increment_ash() {
  Builder b;
  const Reg v = b.reg();
  b.lw(v, kRegArg2, 0);
  b.addiu(v, v, 1);
  b.sw(v, kRegArg2, 0);
  b.movi(kRegArg0, 1);
  b.halt();
  return b.take();
}

/// Everything a scenario run observes; compared field-by-field across
/// backends.
struct Snapshot {
  Backend backend = Backend::Interp;
  AshStats stats;
  vcode::BackendStats bstats;
  Health health = Health::Healthy;
  std::uint32_t counter = 0;
  sim::Cycles end_time = 0;
};

void expect_equivalent(const Snapshot& ref, const Snapshot& got,
                       const char* tag) {
  EXPECT_EQ(ref.stats.invocations, got.stats.invocations) << tag;
  EXPECT_EQ(ref.stats.commits, got.stats.commits) << tag;
  EXPECT_EQ(ref.stats.voluntary_aborts, got.stats.voluntary_aborts) << tag;
  EXPECT_EQ(ref.stats.involuntary_aborts, got.stats.involuntary_aborts)
      << tag;
  EXPECT_EQ(ref.stats.cycles, got.stats.cycles) << tag;
  EXPECT_EQ(ref.stats.insns, got.stats.insns) << tag;
  EXPECT_EQ(ref.stats.by_outcome, got.stats.by_outcome) << tag;
  EXPECT_EQ(ref.stats.quarantine_skips, got.stats.quarantine_skips) << tag;
  EXPECT_EQ(ref.stats.last_fault.valid, got.stats.last_fault.valid) << tag;
  if (ref.stats.last_fault.valid && got.stats.last_fault.valid) {
    EXPECT_EQ(static_cast<int>(ref.stats.last_fault.outcome),
              static_cast<int>(got.stats.last_fault.outcome))
        << tag;
    EXPECT_EQ(ref.stats.last_fault.pc, got.stats.last_fault.pc) << tag;
    EXPECT_EQ(ref.stats.last_fault.insns, got.stats.last_fault.insns) << tag;
    EXPECT_EQ(ref.stats.last_fault.cycles, got.stats.last_fault.cycles)
        << tag;
    EXPECT_EQ(ref.stats.last_fault.at, got.stats.last_fault.at) << tag;
  }
  EXPECT_EQ(static_cast<int>(ref.health), static_cast<int>(got.health))
      << tag;
  EXPECT_EQ(ref.counter, got.counter) << tag;
  EXPECT_EQ(ref.end_time, got.end_time) << tag;
  // Run counts must line up too, however the backend tracks them.
  EXPECT_EQ(ref.bstats.runs, got.bstats.runs) << tag;
}

/// Run `prog` under `be` against `n_msgs` arriving messages and snapshot
/// every kernel observable. `sup`, when enabled, arms the supervisor.
Snapshot run_scenario(const vcode::Program& prog, Backend be, int n_msgs,
                      const SupervisorConfig& sup = {}) {
  AshWorld w;
  Snapshot snap;
  if (sup.enabled) w.ash_b->set_supervisor(sup);
  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    const std::uint32_t counter_addr = self.segment().base + 0x200;
    const int vc = w.dev_b->bind_vc(self);
    for (int i = 0; i < 16; ++i) {
      w.dev_b->supply_buffer(
          vc, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
    }
    std::string error;
    AshOptions opts;
    opts.backend = be;
    const int id = w.ash_b->download(self, prog, opts, &error);
    EXPECT_GE(id, 0) << error;
    EXPECT_EQ(w.ash_b->backend(id), be);
    w.ash_b->attach_an2(*w.dev_b, vc, id, counter_addr);
    co_await self.sleep_for(us(400000.0));
    snap.backend = w.ash_b->backend(id);
    snap.stats = w.ash_b->stats(id);
    snap.bstats = w.ash_b->backend_stats(id);
    snap.health = w.ash_b->supervisor_state(id).health;
    std::memcpy(&snap.counter, w.b->mem(counter_addr, 4), 4);
  });
  for (int i = 0; i < n_msgs; ++i) {
    w.sim.queue().schedule_at(us(200.0 * (i + 1)), [&w, i] {
      const std::uint8_t m[] = {static_cast<std::uint8_t>(i), 2, 3, 4};
      w.dev_a->send(0, m);
    });
  }
  w.sim.run();
  snap.end_time = w.sim.now();
  return snap;
}

void expect_backends_equivalent(const vcode::Program& prog, int n_msgs,
                                const SupervisorConfig& sup = {}) {
  const Snapshot i = run_scenario(prog, Backend::Interp, n_msgs, sup);
  const Snapshot c = run_scenario(prog, Backend::CodeCache, n_msgs, sup);
  const Snapshot j = run_scenario(prog, Backend::Jit, n_msgs, sup);
  EXPECT_EQ(i.backend, Backend::Interp);
  EXPECT_EQ(c.backend, Backend::CodeCache);
  EXPECT_EQ(j.backend, Backend::Jit);
  expect_equivalent(i, c, "codecache-vs-interp");
  expect_equivalent(i, j, "jit-vs-interp");
}

TEST(BackendEquivalence, CommitPathCountersAndMemory) {
  expect_backends_equivalent(increment_ash(), 5);
  const Snapshot j = run_scenario(increment_ash(), Backend::Jit, 5);
  EXPECT_EQ(j.stats.commits, 5u);
  EXPECT_EQ(j.counter, 5u);
  EXPECT_EQ(j.bstats.backend, Backend::Jit);
  EXPECT_EQ(j.bstats.runs, 5u);
  EXPECT_GT(j.bstats.superblocks, 0u);
  EXPECT_GT(j.bstats.emitted_bytes, 0u);
}

TEST(BackendEquivalence, BudgetExhaustionAbortPath) {
  // Runaway handler: the timer budget kills it; the abort outcome, fault
  // pc, burned cycles, and fault timestamps must match across backends.
  Builder bld;
  vcode::Label loop = bld.label();
  bld.bind(loop);
  bld.jmp(loop);
  const vcode::Program prog = bld.take();
  expect_backends_equivalent(prog, 3);
  const Snapshot j = run_scenario(prog, Backend::Jit, 3);
  EXPECT_EQ(j.stats.involuntary_aborts, 3u);
  ASSERT_TRUE(j.stats.last_fault.valid);
  EXPECT_EQ(j.stats.last_fault.outcome, vcode::Outcome::BudgetExceeded);
}

TEST(BackendEquivalence, SandboxedWildStoreRewriteIdentical) {
  // Out-of-segment store: the SFI rewrite pins it inside the owner
  // segment, so the run commits — and must do so identically (cycles,
  // memory effect) on every backend.
  Builder bld;
  const Reg addr = bld.reg();
  const Reg v = bld.reg();
  bld.movi(addr, 3u * sim::Kernel::kSegmentSize + 0x40);
  bld.movi(v, 0xdead);
  bld.sw(v, addr, 0);
  bld.movi(kRegArg0, 1);
  bld.halt();
  const vcode::Program prog = bld.take();
  expect_backends_equivalent(prog, 3);
  const Snapshot j = run_scenario(prog, Backend::Jit, 3);
  EXPECT_EQ(j.stats.commits, 3u);
}

TEST(BackendEquivalence, FaultingHandlerQuarantinedAtSameInvocation) {
  // Divide-by-zero every run; with the supervisor armed the handler must
  // cross into quarantine at the same invocation and with the same skip
  // counters and fault record on every backend.
  Builder bld;
  const Reg q = bld.reg();
  bld.divu(q, kRegArg0, vcode::kRegZero);
  bld.halt();
  const vcode::Program prog = bld.take();

  SupervisorConfig sup;
  sup.enabled = true;
  sup.fault_threshold = 2;
  sup.fault_window = us(100000.0);
  sup.quarantine_base = us(500000.0);  // stays quarantined to the snapshot
  expect_backends_equivalent(prog, 5, sup);

  const Snapshot j = run_scenario(prog, Backend::Jit, 5, sup);
  EXPECT_EQ(j.health, Health::Quarantined);
  EXPECT_GT(j.stats.quarantine_skips, 0u);
  ASSERT_TRUE(j.stats.last_fault.valid);
  EXPECT_EQ(j.stats.last_fault.outcome, vcode::Outcome::DivideByZero);
}

TEST(BackendEquivalence, DivideByZeroFaultPinned) {
  Builder bld;
  const Reg v = bld.reg();
  bld.movi(v, 9);
  bld.divu(v, v, vcode::kRegZero);
  bld.halt();
  const vcode::Program prog = bld.take();
  expect_backends_equivalent(prog, 2);
  const Snapshot j = run_scenario(prog, Backend::Jit, 2);
  ASSERT_TRUE(j.stats.last_fault.valid);
  EXPECT_EQ(j.stats.last_fault.outcome, vcode::Outcome::DivideByZero);
}

TEST(BackendSelection, EnvVarOverridesDownloadOptions) {
  ::setenv("ASH_BACKEND", "jit", 1);
  AshWorld w;
  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    std::string error;
    const int id = w.ash_b->download(self, increment_ash(), {}, &error);
    EXPECT_GE(id, 0) << error;
    EXPECT_EQ(w.ash_b->backend(id), Backend::Jit);
    EXPECT_NE(w.ash_b->jit_backend(id), nullptr);
    EXPECT_EQ(w.ash_b->code_cache(id), nullptr);
    co_await self.compute(1);
  });
  w.sim.run();
  ::unsetenv("ASH_BACKEND");

  // And the explicit option still works without the env var.
  AshWorld w2;
  w2.b->kernel().spawn("owner", [&](Process& self) -> Task {
    std::string error;
    AshOptions opts;
    opts.backend = Backend::Interp;
    const int id = w2.ash_b->download(self, increment_ash(), opts, &error);
    EXPECT_GE(id, 0) << error;
    EXPECT_EQ(w2.ash_b->backend(id), Backend::Interp);
    EXPECT_EQ(w2.ash_b->jit_backend(id), nullptr);
    EXPECT_EQ(w2.ash_b->code_cache(id), nullptr);
    EXPECT_EQ(w2.ash_b->backend_stats(id).translations, 0u);
    co_await self.compute(1);
  });
  w2.sim.run();
}

}  // namespace
}  // namespace ash::core
