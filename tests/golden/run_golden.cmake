# Golden-output driver for `ashtool status | trace | metrics`.
#
# Runs the real binary over a freshly generated remote-increment image,
# normalizes exactly the cycle-valued fields (which move whenever the cost
# model is tuned), and byte-compares everything else against the checked-in
# golden. The formatters make this easy on purpose: cycle/time values
# always carry a ` cyc` suffix in text, a `*_cyc` key in JSON, and ts/dur/
# cycles keys in the Chrome export — so the normalizer below is the full
# list, and any new un-suffixed number in the output is a pinned field.
#
# Usage (see tools/CMakeLists.txt):
#   cmake -DASHTOOL=<path> -DMODE=<mode> -DGOLDEN=<file> -DWORK_DIR=<dir>
#         [-DRECORD=1] -P run_golden.cmake
# Modes: status trace trace-json trace-chrome metrics metrics-json
#        queues queues-json offload offload-json rules rules-json
#        dump-translated
# RECORD=1 rewrites the golden instead of comparing (for intentional
# output changes; review the diff).

foreach(var ASHTOOL MODE GOLDEN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_golden.cmake: -D${var}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")

# The image path is relative so the path echoed by `ashtool status` is
# stable no matter where the build tree lives.
set(image "remote-increment.ashv")
execute_process(
  COMMAND "${ASHTOOL}" gen remote-increment "${image}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ashtool gen failed (rc=${rc})")
endif()

if(MODE STREQUAL "status")
  set(cmd status ${image} 6)
elseif(MODE STREQUAL "trace")
  set(cmd trace ${image} 3)
elseif(MODE STREQUAL "trace-json")
  set(cmd trace ${image} 3 --json)
elseif(MODE STREQUAL "trace-chrome")
  set(cmd trace ${image} 3 --chrome)
elseif(MODE STREQUAL "metrics")
  set(cmd metrics ${image} 6)
elseif(MODE STREQUAL "metrics-json")
  set(cmd metrics ${image} 6 --json)
elseif(MODE STREQUAL "queues")
  set(cmd queues ${image} 44)
elseif(MODE STREQUAL "queues-json")
  set(cmd queues ${image} 44 --json)
elseif(MODE STREQUAL "offload")
  set(cmd offload ${image} 44)
elseif(MODE STREQUAL "offload-json")
  set(cmd offload ${image} 44 --json)
elseif(MODE STREQUAL "rules")
  # No image needed: the scenario is built in. No cycle values either, so
  # the normalizer passes the output through untouched.
  set(cmd rules kv)
elseif(MODE STREQUAL "rules-json")
  set(cmd rules kv --json)
elseif(MODE STREQUAL "dump-translated")
  # Both translated forms of the sandboxed image: the threaded codecache
  # listing and the superblock JIT CFG + emitted-form listing.
  set(image_sb "remote-increment-sb.ashv")
  execute_process(
    COMMAND "${ASHTOOL}" sandbox ${image} ${image_sb}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ashtool sandbox failed (rc=${rc})")
  endif()
  set(cmd dump-translated ${image_sb})
else()
  message(FATAL_ERROR "unknown MODE '${MODE}'")
endif()

execute_process(
  COMMAND "${ASHTOOL}" ${cmd}
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ashtool ${cmd} failed (rc=${rc})")
endif()

# --- the normalizer: cycle-valued fields only ---------------------------
# text:   t=1400 cyc   total=167 cyc   p50<=255 cyc   mean=157.0 cyc ...
# (the boundary stops `insns=32 cycles=...` matching ` cyc` as a prefix
# of `cycles` — insns counts are engine-deterministic and stay pinned)
string(REGEX REPLACE "=[0-9.]+ cyc($|[^a-z])" "=# cyc\\1" out "${out}")
# JSON:   "t_cyc":1400  "sum_cyc":942  "demux_cost_cyc":80 ...
string(REGEX REPLACE "_cyc\":[0-9]+" "_cyc\":#" out "${out}")
# Chrome: "ts":35.000  "dur":4.175  args "cycles":167
string(REGEX REPLACE "\"ts\":[0-9.]+" "\"ts\":#" out "${out}")
string(REGEX REPLACE "\"dur\":[0-9.]+" "\"dur\":#" out "${out}")
string(REGEX REPLACE "\"cycles\":[0-9]+" "\"cycles\":#" out "${out}")

file(WRITE "${WORK_DIR}/${MODE}.normalized" "${out}")

if(DEFINED RECORD)
  file(WRITE "${GOLDEN}" "${out}")
  message(STATUS "recorded ${GOLDEN}")
  return()
endif()

if(NOT EXISTS "${GOLDEN}")
  message(FATAL_ERROR "missing golden ${GOLDEN}; re-run with -DRECORD=1")
endif()
file(READ "${GOLDEN}" want)
if(NOT out STREQUAL want)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        "${WORK_DIR}/${MODE}.normalized" "${GOLDEN}"
    RESULT_VARIABLE ignored)
  message(FATAL_ERROR
      "golden mismatch for ashtool ${MODE}\n"
      "  actual: ${WORK_DIR}/${MODE}.normalized\n"
      "  golden: ${GOLDEN}\n"
      "diff the two files; if the change is intentional, regenerate with "
      "-DRECORD=1")
endif()
