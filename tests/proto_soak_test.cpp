// End-to-end soak tests: the full user-level protocol stack running over
// links that drop, duplicate, reorder, corrupt, truncate, and jitter
// frames. Every run is deterministic — the seeds below are the documented
// loss-sweep seeds (EXPERIMENTS.md); a failure replays exactly.
//
// Invariants asserted:
//  * TCP delivers the byte stream intact under every fault class and
//    tears down to Closed on both ends afterwards;
//  * UDP with checksums delivers only intact datagrams;
//  * IP reassembly under fragment loss/corruption completes only intact
//    datagrams and keeps its buffering bounded;
//  * ARP resolution eventually succeeds across a lossy link.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "proto/arp.hpp"
#include "proto/eth_link.hpp"
#include "proto/ip_frag.hpp"
#include "proto/tcp.hpp"
#include "proto/tcp_engine.hpp"
#include "proto/udp.hpp"
#include "proto/wire.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"

namespace ash::proto {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

const Ipv4Addr kIpA = Ipv4Addr::of(10, 0, 0, 1);
const Ipv4Addr kIpB = Ipv4Addr::of(10, 0, 0, 2);

void fill_pattern(Node& node, std::uint32_t addr, std::uint32_t len,
                  std::uint64_t seed) {
  util::Rng rng(seed);
  std::uint8_t* p = node.mem(addr, len);
  for (std::uint32_t i = 0; i < len; ++i) {
    p[i] = static_cast<std::uint8_t>(rng.next());
  }
}

bool check_pattern(Node& node, std::uint32_t addr, std::uint32_t len,
                   std::uint64_t seed) {
  util::Rng rng(seed);
  const std::uint8_t* p = node.mem(addr, len);
  for (std::uint32_t i = 0; i < len; ++i) {
    if (p[i] != static_cast<std::uint8_t>(rng.next())) return false;
  }
  return true;
}

// ------------------------------------------------------------- TCP soak

struct TcpSoakResult {
  bool connected = false;
  bool data_ok = false;
  TcpState client_state = TcpState::SynSent;
  TcpState server_state = TcpState::SynSent;
  std::size_t client_retx_depth = 999;
  std::size_t server_retx_depth = 999;
  std::uint64_t retransmits = 0;  // client + server
  std::uint64_t link_drops = 0;   // both directions
};

/// Transfer 24 KB a->b under `faults` (applied to BOTH link directions),
/// then close both ends. The whole stack must converge: stream intact,
/// both TCBs Closed, no segment left queued for retransmission.
TcpSoakResult tcp_soak(const net::FaultConfig& faults) {
  constexpr std::uint32_t kLen = 24 * 1024;
  constexpr std::uint64_t kPattern = 4242;
  TcpSoakResult r;

  Simulator sim;
  Node& na = sim.add_node("a");
  Node& nb = sim.add_node("b");
  net::An2Config cfg;
  cfg.faults = faults;
  net::An2Device dev_a(na, cfg);
  net::An2Device dev_b(nb, cfg);
  dev_a.connect(dev_b);

  nb.kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, dev_b, {});
    TcpConfig c;
    c.local_ip = kIpB;
    c.remote_ip = kIpA;
    c.local_port = 5000;
    c.remote_port = 4000;
    c.iss = 900;
    c.rto = us(5000.0);
    c.max_retries = 40;
    TcpConnection conn(link, c);
    co_await conn.accept();
    const std::uint32_t buf = self.segment().base;
    std::uint32_t got = 0;
    while (got < kLen) {
      const std::uint32_t n = co_await conn.read_into(buf + got, kLen - got);
      if (n == 0) break;
      got += n;
    }
    r.data_ok = got == kLen && check_pattern(nb, buf, kLen, kPattern);
    co_await conn.close();
    r.server_state = conn.state();
    r.server_retx_depth = conn.retx_depth();
    r.retransmits += conn.stats().retransmits;
  });
  na.kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, dev_a, {});
    TcpConfig c;
    c.local_ip = kIpA;
    c.remote_ip = kIpB;
    c.local_port = 4000;
    c.remote_port = 5000;
    c.iss = 100;
    c.rto = us(5000.0);
    c.max_retries = 40;
    TcpConnection conn(link, c);
    co_await self.sleep_for(us(500.0));
    r.connected = co_await conn.connect();
    const std::uint32_t buf = self.segment().base;
    fill_pattern(na, buf, kLen, kPattern);
    for (std::uint32_t off = 0; off < kLen; off += 8192) {
      co_await conn.write_from(buf + off, std::min(8192u, kLen - off));
    }
    co_await conn.close();
    r.client_state = conn.state();
    r.client_retx_depth = conn.retx_depth();
    r.retransmits += conn.stats().retransmits;
  });
  sim.run(us(2e7));
  r.link_drops =
      dev_a.fault_counters().drops + dev_b.fault_counters().drops;
  return r;
}

void expect_clean_soak(const TcpSoakResult& r) {
  EXPECT_TRUE(r.connected);
  EXPECT_TRUE(r.data_ok);
  EXPECT_EQ(r.client_state, TcpState::Closed);
  EXPECT_EQ(r.server_state, TcpState::Closed);
  EXPECT_EQ(r.client_retx_depth, 0u);
  EXPECT_EQ(r.server_retx_depth, 0u);
}

TEST(TcpSoak, SurvivesDrops) {
  net::FaultConfig f;
  f.drop_prob = 0.25;
  f.seed = 1001;
  const TcpSoakResult r = tcp_soak(f);
  expect_clean_soak(r);
  EXPECT_GT(r.link_drops, 0u);
  EXPECT_GT(r.retransmits, 0u);
}

TEST(TcpSoak, SurvivesDuplicates) {
  net::FaultConfig f;
  f.dup_prob = 0.25;
  f.seed = 1002;
  expect_clean_soak(tcp_soak(f));
}

TEST(TcpSoak, SurvivesReordering) {
  net::FaultConfig f;
  f.reorder_prob = 0.15;
  f.seed = 1003;
  expect_clean_soak(tcp_soak(f));
}

TEST(TcpSoak, SurvivesCorruption) {
  // The TCP checksum turns corruption into loss; retransmission heals it.
  net::FaultConfig f;
  f.corrupt_prob = 0.06;
  f.seed = 1004;
  const TcpSoakResult r = tcp_soak(f);
  expect_clean_soak(r);
}

TEST(TcpSoak, SurvivesTruncation) {
  // Truncated frames fail IP/TCP decode or checksum — again loss-shaped.
  net::FaultConfig f;
  f.truncate_prob = 0.06;
  f.seed = 1005;
  expect_clean_soak(tcp_soak(f));
}

TEST(TcpSoak, SurvivesJitter) {
  net::FaultConfig f;
  f.jitter_prob = 0.8;
  f.max_jitter = us(40.0);
  f.seed = 1006;
  expect_clean_soak(tcp_soak(f));
}

TEST(TcpSoak, SurvivesEverythingAtOnce) {
  net::FaultConfig f;
  f.drop_prob = 0.04;
  f.dup_prob = 0.08;
  f.reorder_prob = 0.06;
  f.corrupt_prob = 0.03;
  f.truncate_prob = 0.03;
  f.jitter_prob = 0.3;
  f.seed = 1007;
  expect_clean_soak(tcp_soak(f));
}

// ------------------------------------------------- TcpEngine reorder soak

struct EngineSoakResult {
  bool intact = false;
  sim::Cycles elapsed = 0;  // sim time until the sender fully tore down
  TcpEngine::Stats client;
  TcpEngine::Stats server;
};

/// Stream 96 KB a->b through two TcpEngines over a dropping, heavily
/// reordering link (identical seed both runs), with out-of-order
/// reassembly on or off. The `reassemble=false` receiver discards every
/// segment past a gap, so the same fault schedule costs strictly more
/// retransmissions and more sim time — the soak-leg comparison behind
/// the c10k bench's ooo-vs-drop regimes.
EngineSoakResult engine_stream_soak(bool reassemble) {
  constexpr std::uint32_t kLen = 96 * 1024;
  constexpr std::uint64_t kPattern = 7777;
  EngineSoakResult r;

  Simulator sim;
  Node& na = sim.add_node("a");
  Node& nb = sim.add_node("b");
  net::An2Config cfg;
  cfg.faults.drop_prob = 0.02;
  cfg.faults.reorder_prob = 0.3;
  cfg.faults.reorder_delay = us(400.0);
  cfg.faults.seed = 8001;
  net::An2Device dev_a(na, cfg);
  net::An2Device dev_b(nb, cfg);
  dev_a.connect(dev_b);

  An2Link::Config lc;
  lc.rx_buffers = 64;
  lc.buf_size = 1536;

  auto engine_cfg = [&](Ipv4Addr ip) {
    TcpEngine::Config ec;
    ec.local_ip = ip;
    ec.reassemble = reassemble;
    ec.rto = us(20000.0);
    ec.min_rto = us(5000.0);
    ec.max_retries = 40;
    return ec;
  };

  bool server_stop = false;
  std::string got;

  nb.kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, dev_b, lc);
    TcpEngine eng(link, engine_cfg(kIpB));
    bool closed = false;
    TcpEngine::ListenConfig listen_cfg;
    listen_cfg.callbacks.on_readable = [&](TcpEngine::ConnId id) {
      std::uint8_t buf[2048];
      for (;;) {
        const std::size_t n = eng.read(id, buf, sizeof buf);
        if (n == 0) break;
        got.append(reinterpret_cast<const char*>(buf), n);
      }
      const bool eof = eng.at_eof(id);
      if (eof && !closed) {
        closed = true;
        eng.close(id);
      }
    };
    eng.listen(5000, listen_cfg);
    co_await eng.run(server_stop, self.node().now() + us(2e7));
    r.server = eng.stats();
  });

  na.kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, dev_a, lc);
    TcpEngine eng(link, engine_cfg(kIpA));
    bool established = false;
    TcpEngine::Callbacks cbs;
    cbs.on_established = [&](TcpEngine::ConnId) { established = true; };
    co_await self.sleep_for(us(500.0));
    const TcpEngine::ConnId id = eng.connect(kIpB, 5000, 4000, cbs);
    EXPECT_NE(id, 0u);

    const sim::Cycles limit = self.node().now() + us(1.9e7);
    while (!established && self.node().now() < limit) {
      const bool got_frame = co_await eng.step(us(1000.0));
      (void)got_frame;
    }
    EXPECT_TRUE(established);

    std::vector<std::uint8_t> data(kLen);
    util::Rng rng(kPattern);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    EXPECT_TRUE(eng.write(id, data));
    eng.close(id);  // FIN rides out behind the stream

    while (eng.open_connections() > 0 && self.node().now() < limit) {
      const bool got_frame = co_await eng.step(us(1000.0));
      (void)got_frame;
    }
    r.elapsed = self.node().now();
    r.client = eng.stats();
    server_stop = true;
  });

  sim.run(us(2.1e7));

  bool ok = got.size() == kLen;
  util::Rng check(kPattern);
  for (std::size_t i = 0; ok && i < got.size(); ++i) {
    ok = static_cast<std::uint8_t>(got[i]) ==
         static_cast<std::uint8_t>(check.next());
  }
  r.intact = ok;
  return r;
}

TEST(TcpEngineSoak, ReassemblyBeatsDroppingOutOfOrderSegments) {
  const EngineSoakResult with = engine_stream_soak(/*reassemble=*/true);
  const EngineSoakResult without = engine_stream_soak(/*reassemble=*/false);

  // Both configurations must still deliver the stream intact...
  EXPECT_TRUE(with.intact);
  EXPECT_TRUE(without.intact);
  // ...and both must have really exercised their out-of-order path.
  EXPECT_GT(with.server.ooo_reassembled, 0u);
  EXPECT_GT(without.server.ooo_dropped, 0u);
  EXPECT_EQ(with.server.ooo_dropped, 0u);

  // The same fault schedule: buffering the out-of-order tail must beat
  // retransmitting it, in both retransmission count and completion time.
  const std::uint64_t retx_with =
      with.client.retransmits + with.server.retransmits;
  const std::uint64_t retx_without =
      without.client.retransmits + without.server.retransmits;
  EXPECT_LT(retx_with, retx_without);
  EXPECT_LT(with.elapsed, without.elapsed);
}

// ------------------------------------------------------------- UDP soak

TEST(UdpSoak, ChecksummedDatagramsArriveIntactOrNotAtAll) {
  net::An2Config cfg;
  cfg.faults.drop_prob = 0.1;
  cfg.faults.corrupt_prob = 0.15;
  cfg.faults.dup_prob = 0.1;
  cfg.faults.seed = 2001;
  Simulator sim;
  Node& na = sim.add_node("a");
  Node& nb = sim.add_node("b");
  net::An2Device dev_a(na, cfg);
  net::An2Device dev_b(nb, cfg);
  dev_a.connect(dev_b);

  constexpr int kDatagrams = 60;
  constexpr std::uint16_t kLen = 512;
  int intact = 0;
  int received = 0;
  bool done = false;
  std::uint64_t cksum_failures = 0;

  nb.kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, dev_b, {});
    const sim::Cycles deadline = self.node().now() + us(1e6);
    while (self.node().now() < deadline) {
      // UdpSocket::recv_* block forever, so poll the link with a timeout
      // and validate exactly the way the socket's parse() does.
      const auto d = co_await link.recv_for(us(50000.0));
      if (!d.has_value()) break;
      const std::uint8_t* p = self.node().mem(
          d->addr + link.rx_ip_offset(), d->len - link.rx_ip_offset());
      const auto ip = decode_ip({p, d->len - link.rx_ip_offset()});
      if (ip.has_value() && ip->protocol == kIpProtoUdp) {
        const std::uint32_t ulen = ip->total_len - kIpHeaderLen;
        const auto udp = decode_udp({p + kIpHeaderLen, ulen});
        if (udp.has_value()) {
          std::uint32_t acc = pseudo_header_sum(
              ip->src, ip->dst, kIpProtoUdp,
              static_cast<std::uint16_t>(ulen));
          acc = util::cksum_partial({p + kIpHeaderLen, ulen}, acc);
          if (udp->checksum != 0 && util::fold16(acc) != 0xffff) {
            ++cksum_failures;  // corrupted: must not count as delivery
          } else {
            ++received;
            const std::uint8_t* pay = p + kIpHeaderLen + kUdpHeaderLen;
            bool ok = true;
            util::Rng rng(3000);
            for (std::uint32_t i = 0; i < kLen; ++i) {
              ok &= pay[i] == static_cast<std::uint8_t>(rng.next());
            }
            intact += ok ? 1 : 0;
          }
        }
      }
      link.release(*d);
    }
    done = true;
  });
  na.kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, dev_a, {});
    UdpSocket sock(link, {kIpA, kIpB, 1000, 2000, /*checksum=*/true});
    const std::uint32_t buf = self.segment().base;
    fill_pattern(na, buf, kLen, 3000);
    for (int i = 0; i < kDatagrams; ++i) {
      co_await sock.send_from(buf, kLen);
      co_await self.sleep_for(us(500.0));
    }
  });
  sim.run(us(2e6));
  EXPECT_TRUE(done);
  EXPECT_GT(received, 0);
  EXPECT_EQ(intact, received);  // every datagram that passed is intact
  EXPECT_GT(cksum_failures, 0u);  // and corruption really happened
}

// ----------------------------------------------- IP reassembly soak

std::vector<std::uint8_t> make_fragment(Ipv4Addr src, std::uint16_t ident,
                                        std::uint32_t byte_off, bool more,
                                        std::span<const std::uint8_t> pay) {
  std::vector<std::uint8_t> d(kIpHeaderLen + pay.size());
  IpHeader h;
  h.protocol = 17;
  h.src = src;
  h.dst = kIpB;
  h.total_len = static_cast<std::uint16_t>(d.size());
  h.ident = ident;
  h.more_fragments = more;
  h.frag_offset = static_cast<std::uint16_t>(byte_off / 8);
  encode_ip({d.data(), kIpHeaderLen}, h);
  std::memcpy(d.data() + kIpHeaderLen, pay.data(), pay.size());
  return d;
}

TEST(ReassemblySoak, LossyFragmentStreamStaysBoundedAndIntact) {
  // Push 200 fragmented datagrams through a reassembler while a fault
  // injector mangles the fragment stream. Completed datagrams must be
  // intact; buffering must respect the configured bounds throughout.
  IpReassembler::Limits lim;
  lim.max_datagrams = 8;
  lim.max_buffered_bytes = 32 * 1024;
  lim.max_age_feeds = 64;
  IpReassembler reass(lim);

  net::FaultConfig fc;
  fc.drop_prob = 0.12;
  fc.corrupt_prob = 0.08;
  fc.dup_prob = 0.05;
  fc.seed = 4001;
  net::FaultInjector injector(fc);

  constexpr std::uint32_t kPayload = 2048;  // 3 fragments at 800 bytes
  int completed = 0;
  int intact = 0;

  for (std::uint16_t ident = 1; ident <= 200; ++ident) {
    std::vector<std::uint8_t> pay(kPayload);
    util::Rng rng(5000 + ident);
    for (auto& b : pay) b = static_cast<std::uint8_t>(rng.next());

    for (std::uint32_t off = 0; off < kPayload; off += 800) {
      const std::uint32_t chunk = std::min<std::uint32_t>(800, kPayload - off);
      const bool more = off + chunk < kPayload;
      std::vector<std::uint8_t> frag =
          make_fragment(kIpA, ident, off, more, {pay.data() + off, chunk});

      const net::FaultInjector::Decision dec = injector.inject(frag);
      if (dec.drop) continue;
      const int copies = dec.duplicate ? 2 : 1;
      for (int c = 0; c < copies; ++c) {
        const auto out = reass.feed(frag);
        ASSERT_LE(reass.pending(), lim.max_datagrams);
        ASSERT_LE(reass.buffered_bytes(), lim.max_buffered_bytes);
        if (out.has_value()) {
          ++completed;
          util::Rng check(5000 + ident);
          bool ok = out->payload.size() == kPayload;
          for (std::size_t i = 0; ok && i < out->payload.size(); ++i) {
            ok = out->payload[i] == static_cast<std::uint8_t>(check.next());
          }
          intact += ok ? 1 : 0;
        }
      }
    }
  }
  EXPECT_GT(completed, 0);
  EXPECT_GT(intact, 0);
  // intact < completed is allowed: IP has no payload checksum, so a
  // corrupted fragment body can complete a datagram. What the
  // reassembler guarantees is the shape (every completion is exactly
  // kPayload bytes — checked inside the loop) and that the fault stream
  // was actually exercising its defenses:
  EXPECT_GT(reass.stats().malformed + reass.stats().expired +
                reass.stats().evicted + reass.stats().overlaps,
            0u);
}

// ------------------------------------------------------------- ARP soak

const MacAddr kMacA{{{2, 0, 0, 0, 0, 1}}};
const MacAddr kMacB{{{2, 0, 0, 0, 0, 2}}};

TEST(ArpSoak, ResolutionSucceedsAcrossLossyLink) {
  net::EthernetConfig cfg;
  cfg.faults.drop_prob = 0.3;
  cfg.faults.seed = 6001;
  Simulator sim;
  Node& na = sim.add_node("a");
  Node& nb = sim.add_node("b");
  net::EthernetDevice dev_a(na, cfg);
  net::EthernetDevice dev_b(nb, cfg);
  dev_a.connect(dev_b);

  std::optional<MacAddr> resolved;
  int attempts = 0;

  nb.kernel().spawn("responder", [&](Process& self) -> Task {
    ArpService arp(self, dev_b, {kMacB, kIpB});
    co_await arp.serve(us(400000.0));
  });
  na.kernel().spawn("resolver", [&](Process& self) -> Task {
    ArpService arp(self, dev_a, {kMacA, kIpA});
    co_await self.sleep_for(us(1000.0));
    // One request per resolve(); a lossy link needs application retry.
    while (!resolved.has_value() && attempts < 20) {
      ++attempts;
      resolved = co_await arp.resolve(kIpB, us(10000.0));
    }
  });
  sim.run(us(1e6));
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(*resolved, kMacB);
  EXPECT_GE(attempts, 1);
}

}  // namespace
}  // namespace ash::proto
