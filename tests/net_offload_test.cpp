// NicProcessor in isolation: the memory-window reservation arithmetic,
// the enqueue protocol (overflow before quota, mirroring RxQueue), punt
// attribution per reason, detach-while-parked semantics, and the summary
// formats `ashtool offload` prints. Hooks here are test-local lambdas —
// the AshSystem-backed end-to-end paths live in net_offload_diff_test and
// net_offload_property_test.
#include "net/nic_offload.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/rx_queue.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"

namespace ash::net {
namespace {

using sim::KernelCpu;
using sim::MemSegment;
using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::us;

struct FakeSink final : RxSink {
  std::uint64_t batches = 0;
  std::vector<int> consumed;              // channels committed on-device
  std::vector<int> punted;                // channels handed back
  std::vector<std::uint16_t> punt_cpus;   // host CPU each punt completed on
  std::vector<std::uint32_t> drop_bufs;   // recycled buffers from NIC drops

  void rx_batch(std::span<const RxFrame>, const KernelCpu&) override {
    ++batches;
  }
  void rx_drop(const RxFrame& f) override { drop_bufs.push_back(f.buf_addr); }
  void nic_consumed(const RxFrame& f) override {
    consumed.push_back(f.channel);
  }
  void nic_punt(const RxFrame& f, const KernelCpu& cpu) override {
    punted.push_back(f.channel);
    punt_cpus.push_back(cpu.cpu_id());
  }
};

struct FakeQuota final : RxQuota {
  std::uint32_t cap = 1u << 30;
  std::uint32_t pending = 0;
  std::uint64_t admit_calls = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t drops_overflow = 0;
  std::uint64_t drops_quota = 0;

  bool try_admit(const sim::Process* owner) override {
    ++admit_calls;
    if (owner == nullptr) return true;
    if (pending >= cap) return false;
    ++pending;
    return true;
  }
  void on_dispatched(const sim::Process* owner) override {
    ++dispatches;
    if (owner != nullptr && pending > 0) --pending;
  }
  void on_drop(const sim::Process*, RxDropReason reason) override {
    (reason == RxDropReason::Overflow ? drops_overflow : drops_quota) += 1;
  }
};

RxFrame frame(FakeSink& sink, int channel, std::uint32_t buf = 0,
              sim::Process* owner = nullptr) {
  RxFrame f;
  f.sink = &sink;
  f.channel = channel;
  f.addr = 0x1000;
  f.len = 32;
  f.buf_addr = buf;
  f.buf_len = 64;
  f.owner = owner;
  return f;
}

/// A hook that commits on-device, charging `busy` unit-cycles.
NicHook consume_hook(std::uint64_t* runs, sim::Cycles busy,
                     std::uint32_t replies = 0) {
  return [runs, busy, replies](const RxFrame&, NicExecUnit& u) {
    if (runs != nullptr) ++*runs;
    NicExecResult r;
    r.ran = true;
    r.consumed = true;
    r.replies = replies;
    r.charged = u.cost().dispatch + u.scale(busy);
    u.work(r.charged);
    return r;
  };
}

NicHook punt_hook(bool faulted) {
  return [faulted](const RxFrame&, NicExecUnit& u) {
    NicExecResult r;
    r.ran = true;
    r.consumed = false;
    r.faulted = faulted;
    r.charged = u.cost().dispatch + u.cost().punt_handoff;
    u.work(r.charged);
    return r;
  };
}

TEST(OffloadUnit, WindowAccountingAcrossAttachDetachReattach) {
  Simulator sim;
  Node& n = sim.add_node("n");
  RxQueueSet rxq(n, {});
  NicConfig cfg;
  cfg.mem_window_bytes = 1000;
  NicProcessor nic(n, rxq, cfg);
  FakeSink sink;

  EXPECT_TRUE(nic.attach(&sink, 0, 600, consume_hook(nullptr, 0)));
  EXPECT_EQ(nic.window_used(), 600u);
  EXPECT_TRUE(nic.resident(&sink, 0));

  // Does not fit: recorded (counted NotResident later), not reserved.
  EXPECT_FALSE(nic.attach(&sink, 1, 600, consume_hook(nullptr, 0)));
  EXPECT_EQ(nic.window_used(), 600u);
  EXPECT_FALSE(nic.resident(&sink, 1));
  EXPECT_EQ(nic.attached(), 2u);

  // Detach releases the reservation; the no-fit channel can then land.
  nic.detach(&sink, 0);
  EXPECT_EQ(nic.window_used(), 0u);
  EXPECT_EQ(nic.attached(), 1u);
  EXPECT_TRUE(nic.attach(&sink, 1, 600, consume_hook(nullptr, 0)));
  EXPECT_EQ(nic.window_used(), 600u);

  // Re-attach (re-download) of a resident channel sizes the *new* image
  // against the window with the old reservation released first.
  EXPECT_TRUE(nic.attach(&sink, 1, 900, consume_hook(nullptr, 0)));
  EXPECT_EQ(nic.window_used(), 900u);
  EXPECT_FALSE(nic.attach(&sink, 1, 1200, consume_hook(nullptr, 0)));
  EXPECT_EQ(nic.window_used(), 0u);  // shrank out of residency entirely
  EXPECT_FALSE(nic.resident(&sink, 1));

  // Detaching something never attached is a no-op.
  nic.detach(&sink, 7);
  EXPECT_EQ(nic.attached(), 1u);
}

TEST(OffloadUnit, OfferIgnoresNeverOffloadedChannels) {
  Simulator sim;
  Node& n = sim.add_node("n");
  RxQueueSet rxq(n, {});
  NicProcessor nic(n, rxq, {});
  FakeSink sink;
  EXPECT_FALSE(nic.offer(frame(sink, 3)));
  EXPECT_EQ(nic.totals().offered, 0u);  // plain host traffic, uncounted
}

TEST(OffloadUnit, NotResidentFramesAreCountedPuntsOnTheHostPath) {
  Simulator sim;
  Node& n = sim.add_node("n");
  RxQueueSet rxq(n, {});
  NicConfig cfg;
  cfg.mem_window_bytes = 100;
  NicProcessor nic(n, rxq, cfg);
  FakeSink sink;
  std::uint64_t runs = 0;
  EXPECT_FALSE(nic.attach(&sink, 0, 4096, consume_hook(&runs, 0)));

  // false = caller continues down the host path; but the punt is counted.
  EXPECT_FALSE(nic.offer(frame(sink, 0)));
  EXPECT_FALSE(nic.offer(frame(sink, 0)));
  const auto t = nic.totals();
  EXPECT_EQ(t.offered, 2u);
  EXPECT_EQ(t.punted, 2u);
  EXPECT_EQ(t.by_punt_reason[static_cast<std::size_t>(
                PuntReason::NotResident)],
            2u);
  EXPECT_EQ(runs, 0u);
  sim.run(us(1000.0));
  EXPECT_TRUE(sink.punted.empty());  // the host path delivers, not nic_punt
}

TEST(OffloadUnit, ConsumeOnDeviceCountsRepliesAndCycles) {
  Simulator sim;
  Node& n = sim.add_node("n");
  RxQueueSet rxq(n, {});
  NicProcessor nic(n, rxq, {});
  FakeSink sink;
  std::uint64_t runs = 0;
  ASSERT_TRUE(nic.attach(&sink, 2, 512,
                         consume_hook(&runs, us(4.0), /*replies=*/1)));

  EXPECT_TRUE(nic.offer(frame(sink, 2)));
  sim.run(us(1000.0));

  EXPECT_EQ(runs, 1u);
  const auto& s = nic.stats(0);  // single queue
  EXPECT_EQ(s.offered, 1u);
  EXPECT_EQ(s.nic_executed, 1u);
  EXPECT_EQ(s.punted, 0u);
  EXPECT_EQ(s.replies, 1u);
  EXPECT_GT(s.nic_cycles, 0u);
  ASSERT_EQ(sink.consumed.size(), 1u);
  EXPECT_EQ(sink.consumed[0], 2);
  // The unit really was occupied: its charge ledger matches the stats.
  EXPECT_EQ(nic.unit(0, 0).charged_total(), s.nic_cycles);
  EXPECT_EQ(nic.depth(0), 0u);
}

TEST(OffloadUnit, OverflowIsADeviceDropCheckedBeforeTheQuota) {
  Simulator sim;
  Node& n = sim.add_node("n");
  Process owner(n, /*pid=*/9, "t", MemSegment{0, 4096});
  FakeQuota quota;
  RxQueueSet::Config qc;
  qc.quota = &quota;
  RxQueueSet rxq(n, qc);
  NicConfig cfg;
  cfg.units_per_queue = 1;
  cfg.queue_capacity = 1;
  NicProcessor nic(n, rxq, cfg);
  FakeSink sink;
  std::uint64_t runs = 0;
  ASSERT_TRUE(nic.attach(&sink, 0, 256, consume_hook(&runs, us(500.0))));

  // Frame 1 goes straight to the (only) unit, frame 2 parks, frame 3
  // overflows the single descriptor slot — a device-attributed drop that
  // must never consult (or charge) the tenant quota.
  EXPECT_TRUE(nic.offer(frame(sink, 0, 0xA0, &owner)));
  EXPECT_TRUE(nic.offer(frame(sink, 0, 0xB0, &owner)));
  EXPECT_TRUE(nic.offer(frame(sink, 0, 0xC0, &owner)));
  EXPECT_EQ(quota.admit_calls, 2u);

  sim.run(us(5000.0));
  EXPECT_EQ(runs, 2u);
  const auto& s = nic.stats(0);
  EXPECT_EQ(s.offered, 3u);
  EXPECT_EQ(s.nic_executed, 2u);
  EXPECT_EQ(s.dropped, 1u);
  EXPECT_EQ(s.overflow_drops, 1u);
  EXPECT_EQ(s.quota_drops, 0u);
  EXPECT_EQ(quota.drops_overflow, 1u);
  EXPECT_EQ(quota.dispatches, 2u);
  ASSERT_EQ(sink.drop_bufs.size(), 1u);   // dropped frame's buffer recycled
  EXPECT_EQ(sink.drop_bufs[0], 0xC0u);
  EXPECT_EQ(s.offered, s.nic_executed + s.punted + s.dropped);
}

TEST(OffloadUnit, QuotaDropIsAttributedToTheTenant) {
  Simulator sim;
  Node& n = sim.add_node("n");
  Process owner(n, /*pid=*/4, "t", MemSegment{0, 4096});
  FakeQuota quota;
  quota.cap = 1;
  RxQueueSet::Config qc;
  qc.quota = &quota;
  RxQueueSet rxq(n, qc);
  NicConfig cfg;
  cfg.units_per_queue = 1;
  NicProcessor nic(n, rxq, cfg);
  FakeSink sink;
  std::uint64_t runs = 0;
  ASSERT_TRUE(nic.attach(&sink, 0, 256, consume_hook(&runs, us(500.0))));

  EXPECT_TRUE(nic.offer(frame(sink, 0, 0xA0, &owner)));
  EXPECT_TRUE(nic.offer(frame(sink, 0, 0xB0, &owner)));  // over occupancy
  const auto& s = nic.stats(0);
  EXPECT_EQ(s.quota_drops, 1u);
  EXPECT_EQ(quota.drops_quota, 1u);

  sim.run(us(5000.0));
  EXPECT_EQ(runs, 1u);
  EXPECT_EQ(s.offered, s.nic_executed + s.punted + s.dropped);
}

TEST(OffloadUnit, DetachWhileParkedPuntsWithoutRunningTheHandler) {
  Simulator sim;
  Node& n = sim.add_node("n");
  RxQueueSet rxq(n, {});
  NicConfig cfg;
  cfg.units_per_queue = 1;
  NicProcessor nic(n, rxq, cfg);
  FakeSink sink;
  std::uint64_t runs = 0;
  ASSERT_TRUE(nic.attach(&sink, 0, 256, consume_hook(&runs, us(500.0))));

  EXPECT_TRUE(nic.offer(frame(sink, 0)));
  EXPECT_TRUE(nic.offer(frame(sink, 0)));
  // Revocation races the parked frames: the hook must never run again,
  // and both frames complete as HostService punts on the host queue CPU.
  nic.detach(&sink, 0);
  sim.run(us(5000.0));

  EXPECT_EQ(runs, 0u);
  const auto& s = nic.stats(0);
  EXPECT_EQ(s.punted, 2u);
  EXPECT_EQ(s.by_punt_reason[static_cast<std::size_t>(
                PuntReason::HostService)],
            2u);
  ASSERT_EQ(sink.punted.size(), 2u);
  EXPECT_EQ(sink.punt_cpus[0], rxq.queue(0).cpu().cpu_id());
  EXPECT_EQ(s.offered, s.nic_executed + s.punted + s.dropped);
}

TEST(OffloadUnit, FaultedRunsArePuntedWithFaultAttribution) {
  Simulator sim;
  Node& n = sim.add_node("n");
  RxQueueSet rxq(n, {});
  NicProcessor nic(n, rxq, {});
  FakeSink sink;
  ASSERT_TRUE(nic.attach(&sink, 0, 256, punt_hook(/*faulted=*/true)));
  ASSERT_TRUE(nic.attach(&sink, 1, 256, punt_hook(/*faulted=*/false)));

  EXPECT_TRUE(nic.offer(frame(sink, 0)));
  EXPECT_TRUE(nic.offer(frame(sink, 1)));
  sim.run(us(5000.0));

  const auto t = nic.totals();
  EXPECT_EQ(t.punted, 2u);
  EXPECT_EQ(t.by_punt_reason[static_cast<std::size_t>(PuntReason::Fault)],
            1u);
  EXPECT_EQ(t.by_punt_reason[static_cast<std::size_t>(
                PuntReason::HostService)],
            1u);
  EXPECT_EQ(sink.punted.size(), 2u);
}

TEST(OffloadUnit, MultiQueueSteeringMatchesTheHostPolicyAndTotalsSum) {
  Simulator sim;
  Node& n = sim.add_node("n");
  RxQueueSet::Config qc;
  qc.queues = 2;
  RxQueueSet rxq(n, qc);
  NicProcessor nic(n, rxq, {});
  EXPECT_EQ(nic.queues(), 2u);
  FakeSink sink;
  ASSERT_TRUE(nic.attach(&sink, 0, 128, consume_hook(nullptr, us(1.0))));
  ASSERT_TRUE(nic.attach(&sink, 1, 128, consume_hook(nullptr, us(1.0))));

  EXPECT_TRUE(nic.offer(frame(sink, 0)));
  EXPECT_TRUE(nic.offer(frame(sink, 1)));
  EXPECT_TRUE(nic.offer(frame(sink, 1)));
  sim.run(us(1000.0));

  EXPECT_EQ(nic.stats(0).offered, 1u);  // channel hash: ch % queues
  EXPECT_EQ(nic.stats(1).offered, 2u);
  EXPECT_EQ(nic.totals().offered, 3u);
  EXPECT_EQ(nic.totals().nic_executed, 3u);
}

TEST(OffloadUnit, SummaryFormatsCarryTheOffloadColumns) {
  Simulator sim;
  Node& n = sim.add_node("n");
  RxQueueSet::Config qc;
  qc.queues = 2;
  RxQueueSet rxq(n, qc);
  NicConfig cfg;
  cfg.mem_window_bytes = 1024;
  NicProcessor nic(n, rxq, cfg);
  FakeSink sink;
  ASSERT_TRUE(nic.attach(&sink, 0, 512, consume_hook(nullptr, us(1.0))));
  EXPECT_FALSE(nic.attach(&sink, 1, 1024, consume_hook(nullptr, us(1.0))));
  EXPECT_TRUE(nic.offer(frame(sink, 0)));
  EXPECT_FALSE(nic.offer(frame(sink, 1)));  // NotResident
  sim.run(us(1000.0));

  const std::string text = nic.format_summary();
  EXPECT_NE(text.find("nic offload: 2 queue(s)"), std::string::npos);
  EXPECT_NE(text.find("window 512/1024 B"), std::string::npos);
  EXPECT_NE(text.find("2 attached (1 resident)"), std::string::npos);
  EXPECT_NE(text.find("q0:"), std::string::npos);
  EXPECT_NE(text.find("not-resident=1"), std::string::npos);
  EXPECT_NE(text.find("total:"), std::string::npos);
  EXPECT_NE(text.find(" cyc"), std::string::npos);

  const std::string json = nic.summary_json();
  EXPECT_NE(json.find("\"queues\":2"), std::string::npos);
  EXPECT_NE(json.find("\"window_used\":512"), std::string::npos);
  EXPECT_NE(json.find("\"totals\":"), std::string::npos);
  EXPECT_NE(json.find("\"per_queue\":["), std::string::npos);
  EXPECT_NE(json.find("\"not_resident\":1"), std::string::npos);
  EXPECT_NE(json.find("\"nic_cyc\":"), std::string::npos);

  EXPECT_STREQ(to_string(PuntReason::NotResident), "not-resident");
  EXPECT_STREQ(to_string(PuntReason::HostService), "host-service");
  EXPECT_STREQ(to_string(PuntReason::Fault), "fault");
}

}  // namespace
}  // namespace ash::net
