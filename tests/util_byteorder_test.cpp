#include "util/byteorder.hpp"

#include <gtest/gtest.h>

#include <array>

namespace ash::util {
namespace {

TEST(ByteOrder, Bswap16) {
  EXPECT_EQ(bswap16(0x1234), 0x3412);
  EXPECT_EQ(bswap16(0x0000), 0x0000);
  EXPECT_EQ(bswap16(0xff00), 0x00ff);
}

TEST(ByteOrder, Bswap32) {
  EXPECT_EQ(bswap32(0x12345678u), 0x78563412u);
  EXPECT_EQ(bswap32(bswap32(0xdeadbeefu)), 0xdeadbeefu);
}

TEST(ByteOrder, LoadStoreBigEndianRoundTrip) {
  std::array<std::uint8_t, 8> buf{};
  store_be16(buf.data(), 0xabcd);
  EXPECT_EQ(buf[0], 0xab);
  EXPECT_EQ(buf[1], 0xcd);
  EXPECT_EQ(load_be16(buf.data()), 0xabcd);

  store_be32(buf.data() + 3, 0x01020304u);  // unaligned on purpose
  EXPECT_EQ(buf[3], 0x01);
  EXPECT_EQ(buf[6], 0x04);
  EXPECT_EQ(load_be32(buf.data() + 3), 0x01020304u);
}

TEST(ByteOrder, NativeLoadStoreRoundTrip) {
  std::array<std::uint8_t, 7> buf{};
  store_u32(buf.data() + 1, 0xcafebabeu);
  EXPECT_EQ(load_u32(buf.data() + 1), 0xcafebabeu);
}

}  // namespace
}  // namespace ash::util
