// Differential execution: the download-time translated engines — the
// pre-decoded code cache and the superblock JIT — must be bit-identical
// to the interpreter (outcome, insns, cycles, result, abort_code,
// fault_pc, final registers, and final memory) on random verified
// programs (sandboxed and unsandboxed) and on handcrafted edge cases
// around fused pairs, hoisted budget checks, and indirect jumps. Every
// sweep is a three-way interp/codecache/jit cross-check, including
// engine-tagged trace-event equivalence.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "sandbox/sfi.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "vcode/codecache.hpp"
#include "vcode/interp.hpp"
#include "vcode/jit/jit.hpp"
#include "vcode/program.hpp"
#include "vcode/verifier.hpp"

namespace ash::vcode {
namespace {

constexpr std::uint32_t kSegBase = 0x10000;
constexpr std::uint32_t kSegSize = 0x10000;

// Deterministic environment: flat memory window, pseudo-random (but
// stateless) cache-model cycles, deterministic trusted entry points that
// exercise the bound-register path, and argument-dependent denials.
class DiffEnv : public Env {
 public:
  explicit DiffEnv(std::uint64_t seed, std::uint32_t base = kSegBase,
                   std::uint32_t size = kSegSize)
      : base_(base), mem_(size) {
    for (std::size_t i = 0; i < mem_.size(); ++i) {
      mem_[i] = static_cast<std::uint8_t>(i * 31 + seed * 7 + 5);
    }
  }

  const std::vector<std::uint8_t>& memory() const { return mem_; }

  void bind_regs(std::uint32_t* regs) override { regs_ = regs; }

  bool mem_read(std::uint32_t addr, void* dst, std::uint32_t len) override {
    if (!in_range(addr, len)) return false;
    std::memcpy(dst, mem_.data() + (addr - base_), len);
    return true;
  }
  bool mem_write(std::uint32_t addr, const void* src,
                 std::uint32_t len) override {
    if (!in_range(addr, len)) return false;
    std::memcpy(mem_.data() + (addr - base_), src, len);
    return true;
  }
  std::uint64_t mem_cycles(std::uint32_t addr, std::uint32_t len,
                           bool is_write) override {
    return ((addr * 2654435761u) >> 28 & 7u) + len / 4 + (is_write ? 1 : 0);
  }
  // Offered on half the differential runs so the cache engine is diffed
  // against the interpreter on both its direct and its virtual memory path.
  bool fast_mem(FastMem* out) override {
    if (!offer_fast_mem_) return false;
    out->mem = mem_.data();
    out->mem_base = base_;
    out->owner_lo = base_;
    out->owner_hi = base_ + static_cast<std::uint32_t>(mem_.size());
    return true;
  }
  void set_offer_fast_mem(bool on) { offer_fast_mem_ = on; }

  bool t_msglen(std::uint32_t* len_out, std::uint64_t* cycles) override {
    *len_out = 4096;
    *cycles = 3;
    return true;
  }
  bool t_send(std::uint32_t chan, std::uint32_t addr, std::uint32_t len,
              std::uint32_t* status, std::uint64_t* cycles) override {
    if (chan % 7 == 3) return false;
    *status = chan ^ len ^ (addr >> 4);
    *cycles = 10 + (addr & 3);
    return true;
  }
  bool t_dilp(std::uint32_t id, std::uint32_t src, std::uint32_t dst,
              std::uint32_t len, std::uint32_t* status,
              std::uint64_t* cycles) override {
    if (id % 5 == 4) return false;
    // Touch a persistent register through the bound register file, the
    // way the real DILP engine exports accumulators.
    if (regs_ != nullptr) regs_[48] += len + 1;
    *status = id + src + dst;
    *cycles = 5 + (len & 7);
    return true;
  }
  bool t_usercopy(std::uint32_t dst, std::uint32_t src, std::uint32_t len,
                  std::uint32_t* status, std::uint64_t* cycles) override {
    if (len > 0x1000) return false;
    *status = dst ^ src;
    *cycles = 4 + len % 3;
    return true;
  }
  bool t_msgload(std::uint32_t offset, std::uint32_t* value,
                 std::uint64_t* cycles) override {
    if (offset > 0x100000) return false;
    *value = offset * 2654435761u;
    *cycles = 2 + (offset & 1);
    return true;
  }

 private:
  bool in_range(std::uint32_t addr, std::uint32_t len) const {
    return addr >= base_ && addr - base_ <= mem_.size() - len &&
           len <= mem_.size();
  }
  std::uint32_t base_;
  std::vector<std::uint8_t> mem_;
  std::uint32_t* regs_ = nullptr;
  bool offer_fast_mem_ = true;
};

std::array<std::uint32_t, kNumRegs> seed_regs(util::Rng& rng) {
  std::array<std::uint32_t, kNumRegs> regs{};
  for (std::uint32_t r = 1; r <= 12; ++r) {
    if (rng.chance(1, 2)) {
      regs[r] = kSegBase + (static_cast<std::uint32_t>(rng.next()) &
                            (kSegSize - 4));
    } else {
      regs[r] = static_cast<std::uint32_t>(rng.next());
    }
  }
  return regs;
}

/// One engine-tagged trace-event stream check: exactly one engine-exec
/// record per run (mid-run delegation to the interpreter core must NOT
/// surface as a second event), observables matching the run's result, and
/// the expected engine tag.
void expect_one_exec_event(const std::vector<ash::trace::Event>& ev,
                           ash::trace::Engine engine, const ExecResult& r,
                           const std::string& tag) {
  ASSERT_EQ(ev.size(), 1u) << tag;
  const ash::trace::Event& e = ev[0];
  ASSERT_EQ(static_cast<int>(e.type),
            static_cast<int>(ash::trace::EventType::VcodeExec)) << tag;
  ASSERT_EQ(static_cast<int>(e.engine), static_cast<int>(engine)) << tag;
  ASSERT_EQ(e.arg0, static_cast<std::uint32_t>(r.outcome)) << tag;
  ASSERT_EQ(e.insns, r.insns) << tag;
  ASSERT_EQ(e.cycles, r.cycles) << tag;
}

/// Run `prog` through all three engines with identical seeds and compare
/// every observable. `tag` makes failures attributable to a seed/limit
/// combo.
void expect_identical(const Program& prog,
                      const std::array<std::uint32_t, kNumRegs>& seeds,
                      const ExecLimits& limits, std::uint64_t env_seed,
                      const std::string& tag) {
  if (ash::trace::enabled()) ash::trace::global().clear();
  DiffEnv env_a(env_seed);
  Interpreter interp(prog, env_a);
  for (std::uint32_t r = 1; r < kNumRegs; ++r) {
    interp.set_reg(static_cast<Reg>(r), seeds[r]);
  }
  const ExecResult a = interp.run(limits);
  std::vector<ash::trace::Event> ev_a;
  if (ash::trace::enabled()) ev_a = ash::trace::global().all_events();

  if (ash::trace::enabled()) ash::trace::global().clear();
  DiffEnv env_b(env_seed);
  env_b.set_offer_fast_mem(env_seed % 2 == 0);
  CodeCache cache(prog);
  std::array<std::uint32_t, kNumRegs> regs = seeds;
  regs[kRegZero] = 0;
  const ExecResult b = cache.run(env_b, regs, limits);
  std::vector<ash::trace::Event> ev_b;
  if (ash::trace::enabled()) ev_b = ash::trace::global().all_events();

  if (ash::trace::enabled()) ash::trace::global().clear();
  DiffEnv env_j(env_seed);
  env_j.set_offer_fast_mem(env_seed % 2 == 0);
  JitBackend jit(prog);
  std::array<std::uint32_t, kNumRegs> jregs = seeds;
  jregs[kRegZero] = 0;
  const ExecResult j = jit.run(env_j, jregs, limits);
  std::vector<ash::trace::Event> ev_j;
  if (ash::trace::enabled()) ev_j = ash::trace::global().all_events();

  ASSERT_EQ(static_cast<int>(a.outcome), static_cast<int>(b.outcome))
      << tag << " interp=" << to_string(a.outcome)
      << " cache=" << to_string(b.outcome);
  ASSERT_EQ(a.insns, b.insns) << tag;
  ASSERT_EQ(a.cycles, b.cycles) << tag;
  ASSERT_EQ(a.result, b.result) << tag;
  ASSERT_EQ(a.abort_code, b.abort_code) << tag;
  ASSERT_EQ(a.fault_pc, b.fault_pc) << tag;
  ASSERT_EQ(static_cast<int>(a.outcome), static_cast<int>(j.outcome))
      << tag << " interp=" << to_string(a.outcome)
      << " jit=" << to_string(j.outcome);
  ASSERT_EQ(a.insns, j.insns) << tag << " jit";
  ASSERT_EQ(a.cycles, j.cycles) << tag << " jit";
  ASSERT_EQ(a.result, j.result) << tag << " jit";
  ASSERT_EQ(a.abort_code, j.abort_code) << tag << " jit";
  ASSERT_EQ(a.fault_pc, j.fault_pc) << tag << " jit";
  for (std::uint32_t r = 0; r < kNumRegs; ++r) {
    ASSERT_EQ(interp.reg(static_cast<Reg>(r)), regs[r])
        << tag << " register r" << r;
    ASSERT_EQ(interp.reg(static_cast<Reg>(r)), jregs[r])
        << tag << " jit register r" << r;
  }
  ASSERT_EQ(env_a.memory(), env_b.memory()) << tag;
  ASSERT_EQ(env_a.memory(), env_j.memory()) << tag << " jit";

  // With the tracer on, the three engine-tagged event streams must be
  // semantically equivalent: the only difference is the engine tag.
  if (ash::trace::enabled()) {
    expect_one_exec_event(ev_a, ash::trace::Engine::Interp, a, tag);
    expect_one_exec_event(ev_b, ash::trace::Engine::CodeCache, b, tag);
    expect_one_exec_event(ev_j, ash::trace::Engine::Jit, j, tag);
  }
}

/// Random verified program over registers r0..r20 (sandbox-compatible).
Program random_program(util::Rng& rng) {
  Program prog;
  const std::uint32_t n = static_cast<std::uint32_t>(rng.range(4, 40));
  auto reg = [&] { return static_cast<std::uint8_t>(rng.below(21)); };
  std::vector<std::uint32_t> targets;

  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    Insn in{};
    const std::uint64_t pick = rng.below(100);
    if (pick < 20) {
      static constexpr Op kAlu3[] = {Op::Addu, Op::Subu, Op::Mulu, Op::And,
                                     Op::Or,   Op::Xor,  Op::Sll,  Op::Srl,
                                     Op::Sra,  Op::Sltu, Op::Slt};
      in.op = kAlu3[rng.below(std::size(kAlu3))];
      in.a = reg();
      in.b = reg();
      in.c = reg();
    } else if (pick < 35) {
      static constexpr Op kAluI[] = {Op::Addiu, Op::Andi, Op::Ori, Op::Xori,
                                     Op::Slli,  Op::Srli, Op::Srai};
      in.op = kAluI[rng.below(std::size(kAluI))];
      in.a = reg();
      in.b = reg();
      in.imm = static_cast<std::uint32_t>(rng.next());
    } else if (pick < 40) {
      in.op = rng.chance(1, 2) ? Op::Movi : Op::Mov;
      in.a = reg();
      in.b = reg();
      in.imm = static_cast<std::uint32_t>(rng.next());
    } else if (pick < 50) {
      static constexpr Op kMem[] = {Op::Lw, Op::Lhu,   Op::Lh,  Op::Lbu,
                                    Op::Lb, Op::Lwu_u, Op::Sw,  Op::Sh,
                                    Op::Sb, Op::Sw_u};
      in.op = kMem[rng.below(std::size(kMem))];
      in.a = reg();
      in.b = reg();
      in.imm = static_cast<std::uint32_t>(rng.below(64));
    } else if (pick < 60) {
      static constexpr Op kBr[] = {Op::Beq, Op::Bne, Op::Bltu,
                                   Op::Bgeu, Op::Blt, Op::Bge};
      in.op = kBr[rng.below(std::size(kBr))];
      in.a = reg();
      in.b = rng.chance(1, 3) ? 0 : reg();  // r0 compares feed fusion
      in.imm = static_cast<std::uint32_t>(rng.below(n));
    } else if (pick < 63) {
      in.op = Op::Jmp;
      in.imm = static_cast<std::uint32_t>(rng.below(n));
    } else if (pick < 65) {
      in.op = Op::Call;
      in.imm = static_cast<std::uint32_t>(rng.below(n));
    } else if (pick < 67) {
      in.op = Op::Ret;
    } else if (pick < 70 && i + 2 < n) {
      // Seeded indirect jump: Movi a, target ; Jr a — usually lands.
      const auto tgt = static_cast<std::uint32_t>(rng.below(n));
      targets.push_back(tgt);
      in.op = Op::Movi;
      in.a = reg();
      in.imm = tgt;
      prog.insns.push_back(in);
      ++i;
      in = Insn{};
      in.op = Op::Jr;
      in.a = prog.insns.back().a;
    } else if (pick < 75) {
      static constexpr Op kNet[] = {Op::Cksum32, Op::Bswap32, Op::Bswap16};
      in.op = kNet[rng.below(std::size(kNet))];
      in.a = reg();
      in.b = reg();
    } else if (pick < 83) {
      static constexpr Op kTrusted[] = {Op::TMsgLen, Op::TSend, Op::TDilp,
                                        Op::TUserCopy, Op::TMsgLoad};
      in.op = kTrusted[rng.below(std::size(kTrusted))];
      in.a = reg();
      in.b = reg();
      in.c = reg();
      in.imm = in.op == Op::TDilp
                   ? static_cast<std::uint32_t>(rng.below(kNumRegs))
                   : static_cast<std::uint32_t>(rng.below(32));
    } else if (pick < 86) {
      in.op = Op::Budget;
      in.imm = static_cast<std::uint32_t>(rng.below(16));
    } else if (pick < 88) {
      in.op = Op::Abort;
      in.imm = static_cast<std::uint32_t>(rng.below(1000));
    } else if (pick < 90) {
      in.op = Op::Halt;
    } else if (pick < 94) {
      in.op = rng.chance(1, 2) ? Op::Divu : Op::Remu;
      in.a = reg();
      in.b = reg();
      in.c = reg();
    } else {
      in.op = Op::Nop;
    }
    prog.insns.push_back(in);
  }
  Insn halt{};
  halt.op = Op::Halt;
  prog.insns.push_back(halt);

  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  prog.indirect_targets = std::move(targets);
  return prog;
}

TEST(CodeCacheDifferential, RandomProgramsMatchInterpreter) {
  // The whole 1200-program sweep runs with the tracer recording: every
  // expect_identical also checks bit-identical results are reported
  // through semantically equivalent engine-tagged event streams.
  ash::trace::Session tracing;

  VerifyPolicy policy;
  policy.allow_trusted = true;
  policy.allow_indirect = true;

  int programs_run = 0;
  std::uint64_t seed = 0;
  while (programs_run < 1200) {
    util::Rng rng(seed++);
    Program prog = random_program(rng);
    if (!verify(prog, policy).ok()) continue;
    ++programs_run;

    const auto seeds = seed_regs(rng);
    const std::uint64_t env_seed = rng.next();
    const std::string tag = "seed=" + std::to_string(seed - 1);

    ExecLimits relaxed;
    relaxed.max_insns = 5000;
    expect_identical(prog, seeds, relaxed, env_seed, tag + " relaxed");

    ExecLimits cycle_capped;
    cycle_capped.max_insns = 5000;
    cycle_capped.max_cycles = rng.range(1, 300);
    expect_identical(prog, seeds, cycle_capped, env_seed, tag + " cycles");

    ExecLimits tight;
    tight.max_insns = rng.range(1, 60);
    tight.software_budget = rng.range(1, 50);
    expect_identical(prog, seeds, tight, env_seed, tag + " tight");

    // Sandboxed variant of the same program, same comparisons.
    sandbox::Options sopts;
    sopts.segment = {kSegBase, kSegSize};
    sopts.mode = rng.chance(1, 5) ? sandbox::Mode::X86Segments
                                  : sandbox::Mode::Mips;
    sopts.software_budget_checks = rng.chance(1, 2);
    sopts.general_epilogue = rng.chance(1, 2);
    std::string err;
    auto sres = sandbox::sandbox(prog, sopts, &err);
    if (!sres.has_value()) continue;
    expect_identical(sres->program, seeds, relaxed, env_seed, tag + " sb");
    expect_identical(sres->program, seeds, cycle_capped, env_seed,
                     tag + " sb-cycles");
    expect_identical(sres->program, seeds, tight, env_seed, tag + " sb-tight");
  }
  EXPECT_GE(programs_run, 1200);
}

// Sweep every instruction/cycle ceiling across a program holding all three
// fusion families plus a dynamic-cost trusted call, so the budget ceiling
// lands exactly on superinstruction and basic-block boundaries.
TEST(CodeCacheDifferential, BudgetBoundarySweep) {
  Program prog;
  auto add = [&](Op op, std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint32_t imm) {
    prog.insns.push_back({op, a, b, c, imm});
  };
  add(Op::Movi, 5, 0, 0, 0x8000);
  add(Op::Movi, 6, 0, 0, 0xABCD);
  add(Op::Andi, 7, 5, 0, 0xFFFC);    // fused with the Sw below
  add(Op::Sw, 6, 7, 0, 0);
  add(Op::Addiu, 7, 7, 0, 4);        // fused with the Lw below
  add(Op::Lw, 8, 7, 0, 0);
  add(Op::Sltu, 9, 8, 6, 0);         // fused with the Bne below
  add(Op::Bne, 9, 0, 0, 9);
  add(Op::Nop, 0, 0, 0, 0);
  add(Op::TMsgLen, 10, 0, 0, 0);     // dynamic trusted cycles
  add(Op::Cksum32, 10, 8, 0, 0);
  add(Op::Halt, 0, 0, 0, 0);

  std::array<std::uint32_t, kNumRegs> seeds{};
  // Full flat memory at 0 so the masked addresses stay valid.
  for (std::uint64_t max_insns = 0; max_insns <= 14; ++max_insns) {
    for (std::uint64_t max_cycles = 0; max_cycles <= 40; ++max_cycles) {
      ExecLimits lim;
      lim.max_insns = max_insns;
      lim.max_cycles = max_cycles;

      DiffEnv env_a(1, /*base=*/0, /*size=*/0x10000);
      Interpreter interp(prog, env_a);
      const ExecResult a = interp.run(lim);

      DiffEnv env_b(1, /*base=*/0, /*size=*/0x10000);
      CodeCache cache(prog);
      std::array<std::uint32_t, kNumRegs> regs = seeds;
      const ExecResult b = cache.run(env_b, regs, lim);

      DiffEnv env_j(1, /*base=*/0, /*size=*/0x10000);
      JitBackend jit(prog);
      std::array<std::uint32_t, kNumRegs> jregs = seeds;
      const ExecResult j = jit.run(env_j, jregs, lim);

      ASSERT_EQ(static_cast<int>(a.outcome), static_cast<int>(b.outcome))
          << "insns=" << max_insns << " cycles=" << max_cycles;
      ASSERT_EQ(a.insns, b.insns) << max_insns << "/" << max_cycles;
      ASSERT_EQ(a.cycles, b.cycles) << max_insns << "/" << max_cycles;
      ASSERT_EQ(a.fault_pc, b.fault_pc) << max_insns << "/" << max_cycles;
      ASSERT_EQ(a.result, b.result) << max_insns << "/" << max_cycles;
      ASSERT_EQ(static_cast<int>(a.outcome), static_cast<int>(j.outcome))
          << "jit insns=" << max_insns << " cycles=" << max_cycles;
      ASSERT_EQ(a.insns, j.insns) << "jit " << max_insns << "/" << max_cycles;
      ASSERT_EQ(a.cycles, j.cycles) << "jit " << max_insns << "/" << max_cycles;
      ASSERT_EQ(a.fault_pc, j.fault_pc)
          << "jit " << max_insns << "/" << max_cycles;
      ASSERT_EQ(a.result, j.result) << "jit " << max_insns << "/" << max_cycles;
      for (std::uint32_t r = 0; r < kNumRegs; ++r) {
        ASSERT_EQ(interp.reg(static_cast<Reg>(r)), regs[r]) << "r" << r;
        ASSERT_EQ(interp.reg(static_cast<Reg>(r)), jregs[r]) << "jit r" << r;
      }
    }
  }
  // The program really does fuse all three families.
  CodeCache cache(prog);
  EXPECT_EQ(cache.fused_count(), 3u);
}

TEST(CodeCacheDifferential, JrChkUnmappedTargetFaults) {
  Program prog;
  prog.insns.push_back({Op::Movi, 5, 0, 0, 7});
  prog.insns.push_back({Op::JrChk, 5, 0, 0, 0});
  prog.insns.push_back({Op::Halt, 0, 0, 0, 0});
  prog.indirect_map = {{3, 2}};
  prog.sandboxed = true;

  DiffEnv env_a(2);
  Interpreter interp(prog, env_a);
  const ExecResult a = interp.run({});

  DiffEnv env_b(2);
  CodeCache cache(prog);
  std::array<std::uint32_t, kNumRegs> regs{};
  const ExecResult b = cache.run(env_b, regs, {});

  DiffEnv env_jit(2);
  JitBackend jit(prog);
  std::array<std::uint32_t, kNumRegs> jregs{};
  const ExecResult j = jit.run(env_jit, jregs, {});

  EXPECT_EQ(a.outcome, Outcome::IndirectJumpFault);
  EXPECT_EQ(b.outcome, Outcome::IndirectJumpFault);
  EXPECT_EQ(j.outcome, Outcome::IndirectJumpFault);
  EXPECT_EQ(a.fault_pc, 1u);
  EXPECT_EQ(b.fault_pc, 1u);
  EXPECT_EQ(j.fault_pc, 1u);
  EXPECT_EQ(a.insns, b.insns);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.insns, j.insns);
  EXPECT_EQ(a.cycles, j.cycles);

  // Mapped variant lands, including through the sparse (out-of-dense-range)
  // side of the shared jump table.
  Program mapped = prog;
  mapped.indirect_map = {{7, 2}};
  DiffEnv env_c(2);
  Interpreter interp2(mapped, env_c);
  EXPECT_EQ(interp2.run({}).outcome, Outcome::Halted);
  DiffEnv env_d(2);
  CodeCache cache2(mapped);
  std::array<std::uint32_t, kNumRegs> regs2{};
  EXPECT_EQ(cache2.run(env_d, regs2, {}).outcome, Outcome::Halted);

  Program sparse = prog;
  const std::uint32_t big = static_cast<std::uint32_t>(kMaxProgramLen) + 123;
  sparse.insns[0].imm = big;
  sparse.indirect_map = {{big, 2}};
  DiffEnv env_e(2);
  Interpreter interp3(sparse, env_e);
  EXPECT_EQ(interp3.run({}).outcome, Outcome::Halted);
  DiffEnv env_f(2);
  CodeCache cache3(sparse);
  std::array<std::uint32_t, kNumRegs> regs3{};
  EXPECT_EQ(cache3.run(env_f, regs3, {}).outcome, Outcome::Halted);

  DiffEnv env_g(2);
  JitBackend jit2(mapped);
  std::array<std::uint32_t, kNumRegs> jregs2{};
  EXPECT_EQ(jit2.run(env_g, jregs2, {}).outcome, Outcome::Halted);
  DiffEnv env_h(2);
  JitBackend jit3(sparse);
  std::array<std::uint32_t, kNumRegs> jregs3{};
  EXPECT_EQ(jit3.run(env_h, jregs3, {}).outcome, Outcome::Halted);
}

TEST(CodeCacheDifferential, FaultInsideFusedPairReportsSecondHalf) {
  // Andi+Sw fuse; the store's address is outside every segment, so the
  // fault must surface at the store's own pc with both halves counted.
  Program prog;
  prog.insns.push_back({Op::Movi, 5, 0, 0, 0xdead0000});
  prog.insns.push_back({Op::Andi, 6, 5, 0, 0xFFFF0000});
  prog.insns.push_back({Op::Sw, 5, 6, 0, 0});
  prog.insns.push_back({Op::Halt, 0, 0, 0, 0});

  DiffEnv env_a(3);
  Interpreter interp(prog, env_a);
  const ExecResult a = interp.run({});

  DiffEnv env_b(3);
  CodeCache cache(prog);
  std::array<std::uint32_t, kNumRegs> regs{};
  const ExecResult b = cache.run(env_b, regs, {});

  DiffEnv env_j(3);
  JitBackend jit(prog);
  std::array<std::uint32_t, kNumRegs> jregs{};
  const ExecResult j = jit.run(env_j, jregs, {});

  EXPECT_EQ(cache.fused_count(), 1u);
  EXPECT_EQ(a.outcome, Outcome::MemFault);
  EXPECT_EQ(b.outcome, Outcome::MemFault);
  EXPECT_EQ(j.outcome, Outcome::MemFault);
  EXPECT_EQ(a.fault_pc, 2u);
  EXPECT_EQ(b.fault_pc, 2u);
  EXPECT_EQ(j.fault_pc, 2u);
  EXPECT_EQ(a.insns, 3u);
  EXPECT_EQ(b.insns, 3u);
  EXPECT_EQ(j.insns, 3u);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.cycles, j.cycles);
}

TEST(CodeCacheDifferential, AbortReachedThroughFusedBranch) {
  // Sltu+Bne fuse; the taken branch lands on an Abort in another block.
  Program prog;
  prog.insns.push_back({Op::Movi, 5, 0, 0, 1});
  prog.insns.push_back({Op::Movi, 6, 0, 0, 2});
  prog.insns.push_back({Op::Sltu, 7, 5, 6, 0});
  prog.insns.push_back({Op::Bne, 7, 0, 0, 5});
  prog.insns.push_back({Op::Halt, 0, 0, 0, 0});
  prog.insns.push_back({Op::Abort, 0, 0, 0, 77});

  DiffEnv env_a(4);
  Interpreter interp(prog, env_a);
  const ExecResult a = interp.run({});

  DiffEnv env_b(4);
  CodeCache cache(prog);
  std::array<std::uint32_t, kNumRegs> regs{};
  const ExecResult b = cache.run(env_b, regs, {});

  DiffEnv env_j(4);
  JitBackend jit(prog);
  std::array<std::uint32_t, kNumRegs> jregs{};
  const ExecResult j = jit.run(env_j, jregs, {});

  EXPECT_EQ(cache.fused_count(), 1u);
  EXPECT_EQ(a.outcome, Outcome::VoluntaryAbort);
  EXPECT_EQ(b.outcome, Outcome::VoluntaryAbort);
  EXPECT_EQ(j.outcome, Outcome::VoluntaryAbort);
  EXPECT_EQ(a.abort_code, 77u);
  EXPECT_EQ(b.abort_code, 77u);
  EXPECT_EQ(j.abort_code, 77u);
  EXPECT_EQ(a.fault_pc, 5u);
  EXPECT_EQ(b.fault_pc, 5u);
  EXPECT_EQ(j.fault_pc, 5u);
  EXPECT_EQ(a.insns, b.insns);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.insns, j.insns);
  EXPECT_EQ(a.cycles, j.cycles);
}

TEST(CodeCacheTranslation, DumpShowsBlocksAndFusions) {
  Program prog;
  prog.insns.push_back({Op::Andi, 6, 5, 0, 0xFFFC});
  prog.insns.push_back({Op::Lw, 7, 6, 0, 0});
  prog.insns.push_back({Op::Halt, 0, 0, 0, 0});
  CodeCache cache(prog);
  const std::string d = cache.dump();
  EXPECT_NE(d.find("block @0"), std::string::npos);
  EXPECT_NE(d.find("fuse[alu+mem]"), std::string::npos);
  EXPECT_NE(d.find("codecache:"), std::string::npos);
  EXPECT_EQ(cache.block_count(), count_basic_blocks(prog));
}

TEST(CodeCacheTranslation, RunCountTracksExecutions) {
  Program prog;
  prog.insns.push_back({Op::Movi, 5, 0, 0, 7});
  prog.insns.push_back({Op::Halt, 0, 0, 0, 0});
  CodeCache cache(prog);
  EXPECT_EQ(cache.run_count(), 0u);
  std::array<std::uint32_t, kNumRegs> regs{};
  DiffEnv env(1);
  for (int i = 0; i < 3; ++i) {
    regs.fill(0);
    const ExecResult r = cache.run(env, regs);
    EXPECT_EQ(r.outcome, Outcome::Halted);
  }
  EXPECT_EQ(cache.run_count(), 3u);
}

}  // namespace
}  // namespace ash::vcode
