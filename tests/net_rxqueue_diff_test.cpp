// Differential replay of a seeded fuzz corpus through every receive
// configuration (ISSUE 5): inline, single-queue coalescing-off, and two
// multi-queue/coalescing shapes. Steering may reorder deliveries across
// queues, but the delivered message *set* — payload digests and
// per-channel counts, on both the plain notification-ring path and the
// ASH-attached reply path — must be identical: no drop, no duplicate, no
// corruption. Same seeds as the packetfuzz corpus targets (1001..1007
// per-parser, 2001/4001/6001 the cross-target sweeps).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "ashlib/handlers.hpp"
#include "core/ash.hpp"
#include "net/an2.hpp"
#include "net/rx_queue.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace ash::net {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

constexpr int kVcs = 6;        // VCs 0..3 plain ring, VCs 4..5 ASH-attached
constexpr int kFirstAshVc = 4;
constexpr int kBufsPerVc = 160;

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h = (h ^ p[i]) * 1099511628211ull;
  }
  return h;
}

/// One corpus message: arrival-schedule offset, target VC, payload.
struct CorpusMsg {
  sim::Cycles at;
  int vc;
  std::vector<std::uint8_t> bytes;
};

/// The corpus for one seed: bursty arrivals (zero-gap trains mixed with
/// idle stretches), mixed lengths including zero-length frames on the
/// ring VCs, fixed-size increment requests on the ASH VCs.
std::vector<CorpusMsg> make_corpus(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<CorpusMsg> corpus;
  sim::Cycles t = us(100.0);
  const std::size_t n = 90 + rng.below(40);
  for (std::size_t m = 0; m < n; ++m) {
    // ~1/3 of messages extend a zero-gap burst; the rest space out.
    if (rng.below(3) != 0) t += static_cast<sim::Cycles>(rng.below(480));
    CorpusMsg msg;
    msg.at = t;
    msg.vc = static_cast<int>(rng.below(kVcs));
    const std::size_t len = msg.vc >= kFirstAshVc ? 8 : rng.below(49);
    msg.bytes.resize(len);
    for (auto& b : msg.bytes) b = static_cast<std::uint8_t>(rng.below(256));
    corpus.push_back(std::move(msg));
  }
  return corpus;
}

struct RxConfigCase {
  const char* name;
  std::size_t queues;  // 0 = inline path (no RxQueueSet)
  bool coalesce;
  bool adaptive;
};

constexpr RxConfigCase kCases[] = {
    {"inline", 0, false, false},
    {"1q-off", 1, false, false},
    {"2q-coalesce", 2, true, false},
    {"4q-adaptive", 4, true, true},
};

/// What one replay delivered, as order-insensitive multisets.
struct Delivered {
  // Plain VCs: sorted payload digests + counts from the server's rings.
  std::map<int, std::vector<std::uint64_t>> ring;
  // ASH VCs: sorted reply digests seen at the client, plus any messages
  // that fell back to the server ring (still part of the delivered set).
  std::map<int, std::vector<std::uint64_t>> replies;
  std::map<int, std::vector<std::uint64_t>> fallback;
  std::uint32_t counters[2] = {0, 0};
};

Delivered replay(const std::vector<CorpusMsg>& corpus,
                 const RxConfigCase& cfg) {
  Simulator sim;
  Node& a = sim.add_node("client");
  Node& b = sim.add_node("server");
  An2Device dev_a(a), dev_b(b);
  dev_a.connect(dev_b);
  core::AshSystem ash_sys(b);

  std::unique_ptr<RxQueueSet> rxq;
  if (cfg.queues > 0) {
    RxQueueSet::Config qc;
    qc.queues = cfg.queues;
    qc.coalesce.enabled = cfg.coalesce;
    qc.coalesce.max_frames = 4;
    qc.coalesce.max_delay = us(30.0);
    qc.coalesce.adaptive = cfg.adaptive;
    rxq = std::make_unique<RxQueueSet>(b, qc);
    dev_b.set_rx_queues(rxq.get());
  }

  std::uint32_t ctr_addr[2] = {0, 0};
  b.kernel().spawn("server", [&](Process& self) -> Task {
    core::AshOptions opts;
    std::string error;
    const int id = ash_sys.download(self, ashlib::make_remote_increment(),
                                    opts, &error);
    EXPECT_GE(id, 0) << error;
    for (int v = 0; v < kVcs; ++v) {
      const int vc = dev_b.bind_vc(self);
      for (int i = 0; i < kBufsPerVc; ++i) {
        // Unique address per buffer so a corrupting double-delivery
        // cannot hide behind reuse.
        dev_b.supply_buffer(
            vc,
            self.segment().base +
                64u * static_cast<std::uint32_t>(v * kBufsPerVc + i),
            64);
      }
      if (v >= kFirstAshVc) {
        ctr_addr[v - kFirstAshVc] =
            self.segment().base + 0x80000 + 0x100u * (v - kFirstAshVc);
        ash_sys.attach_an2(dev_b, vc, id, ctr_addr[v - kFirstAshVc]);
      }
    }
    co_await self.sleep_for(us(1e6));
  });

  a.kernel().spawn("client", [&](Process& self) -> Task {
    for (int v = 0; v < kVcs; ++v) {
      dev_a.bind_vc(self);
      if (v >= kFirstAshVc) {
        for (int i = 0; i < kBufsPerVc; ++i) {
          dev_a.supply_buffer(
              v,
              self.segment().base +
                  64u * static_cast<std::uint32_t>(v * kBufsPerVc + i),
              64);
        }
      }
    }
    co_await self.sleep_for(us(1e6));
  });

  for (const CorpusMsg& m : corpus) {
    sim.queue().schedule_at(m.at, [&dev_a, &m] {
      ASSERT_TRUE(dev_a.send(m.vc, m.bytes));
    });
  }
  sim.run(us(50000.0));

  Delivered out;
  for (int v = 0; v < kVcs; ++v) {
    EXPECT_EQ(dev_b.drops(v), 0u) << cfg.name << " server vc " << v;
    EXPECT_EQ(dev_a.drops(v), 0u) << cfg.name << " client vc " << v;
    // Drain the server-side notification ring (poll is free).
    while (const auto d = dev_b.poll(v)) {
      const std::uint8_t* p = d->len ? b.mem(d->addr, d->len) : nullptr;
      const std::uint64_t h = fnv1a(p, d->len);
      (v >= kFirstAshVc ? out.fallback[v] : out.ring[v]).push_back(h);
    }
    // Drain ASH replies at the client.
    while (const auto d = dev_a.poll(v)) {
      const std::uint8_t* p = d->len ? a.mem(d->addr, d->len) : nullptr;
      out.replies[v].push_back(fnv1a(p, d->len));
    }
  }
  for (int i = 0; i < 2; ++i) {
    const std::uint8_t* p = b.mem(ctr_addr[i], 4);
    out.counters[i] = static_cast<std::uint32_t>(p[0]) |
                      (static_cast<std::uint32_t>(p[1]) << 8) |
                      (static_cast<std::uint32_t>(p[2]) << 16) |
                      (static_cast<std::uint32_t>(p[3]) << 24);
  }
  for (auto* m : {&out.ring, &out.replies, &out.fallback}) {
    for (auto& [vc, v] : *m) std::sort(v.begin(), v.end());
  }
  return out;
}

TEST(RxQueueDiff, CorpusDeliverySetIsIdenticalAcrossConfigs) {
  const std::uint64_t seeds[] = {1001, 1002, 1003, 1004, 1005,
                                 1006, 1007, 2001, 4001, 6001};
  for (const std::uint64_t seed : seeds) {
    const auto corpus = make_corpus(seed);
    // Expected per-VC offered counts and (plain-VC) payload digests,
    // straight from the corpus.
    std::map<int, std::vector<std::uint64_t>> want_ring;
    std::map<int, std::size_t> offered;
    for (const auto& m : corpus) {
      ++offered[m.vc];
      if (m.vc < kFirstAshVc) {
        want_ring[m.vc].push_back(fnv1a(m.bytes.data(), m.bytes.size()));
      }
    }
    for (auto& [vc, v] : want_ring) std::sort(v.begin(), v.end());

    const Delivered base = replay(corpus, kCases[0]);
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    // The inline run must deliver exactly the offered set.
    EXPECT_EQ(base.ring, want_ring);
    for (int v = kFirstAshVc; v < kVcs; ++v) {
      const std::size_t got =
          (base.replies.count(v) ? base.replies.at(v).size() : 0) +
          (base.fallback.count(v) ? base.fallback.at(v).size() : 0);
      EXPECT_EQ(got, offered[v]) << "ash vc " << v;
    }

    for (std::size_t c = 1; c < std::size(kCases); ++c) {
      const Delivered got = replay(corpus, kCases[c]);
      SCOPED_TRACE(::testing::Message() << "config=" << kCases[c].name);
      EXPECT_EQ(got.ring, base.ring);
      EXPECT_EQ(got.replies, base.replies);
      EXPECT_EQ(got.fallback, base.fallback);
      EXPECT_EQ(got.counters[0], base.counters[0]);
      EXPECT_EQ(got.counters[1], base.counters[1]);
    }
  }
}

}  // namespace
}  // namespace ash::net
