#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace ash::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, RangeInclusive) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
}

}  // namespace
}  // namespace ash::util
