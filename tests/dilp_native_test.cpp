#include "dilp/native.hpp"

#include <gtest/gtest.h>

#include "util/byteorder.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"

namespace ash::dilp::native {
namespace {

std::vector<std::uint8_t> random_words(util::Rng& rng, std::size_t words) {
  std::vector<std::uint8_t> data(words * 4);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  return data;
}

TEST(Native, CksumPassMatchesReferenceChecksum) {
  util::Rng rng(1);
  const auto data = random_words(rng, 257);
  const std::uint32_t acc = cksum_pass(data.data(), data.size(), 0);
  EXPECT_EQ(util::fold16_le_word_sum(acc),
            util::fold16(util::cksum_partial(data)));
}

TEST(Native, BswapPassIsInvolution) {
  util::Rng rng(2);
  auto data = random_words(rng, 64);
  const auto original = data;
  bswap_pass(data.data(), data.size());
  EXPECT_NE(data, original);
  bswap_pass(data.data(), data.size());
  EXPECT_EQ(data, original);
}

TEST(Native, XorPassIsInvolution) {
  util::Rng rng(3);
  auto data = random_words(rng, 64);
  const auto original = data;
  xor_pass(data.data(), data.size(), 0xdeadbeefu);
  EXPECT_NE(data, original);
  xor_pass(data.data(), data.size(), 0xdeadbeefu);
  EXPECT_EQ(data, original);
}

TEST(Native, IntegratedCopyCksumEqualsSeparatePasses) {
  util::Rng rng(4);
  const auto data = random_words(rng, 128);
  std::vector<std::uint8_t> dst1(data.size()), dst2(data.size());

  copy_pass(data.data(), dst1.data(), data.size());
  const std::uint32_t acc_sep = cksum_pass(dst1.data(), dst1.size(), 0);

  const std::uint32_t acc_int =
      integrated_copy_cksum(data.data(), dst2.data(), data.size(), 0);

  EXPECT_EQ(dst1, dst2);
  EXPECT_EQ(acc_sep, acc_int);
}

TEST(Native, IntegratedCopyCksumBswapEqualsSeparatePasses) {
  util::Rng rng(5);
  const auto data = random_words(rng, 128);
  std::vector<std::uint8_t> dst1(data.size()), dst2(data.size());

  copy_pass(data.data(), dst1.data(), data.size());
  const std::uint32_t acc_sep = cksum_pass(dst1.data(), dst1.size(), 0);
  bswap_pass(dst1.data(), dst1.size());

  const std::uint32_t acc_int =
      integrated_copy_cksum_bswap(data.data(), dst2.data(), data.size(), 0);

  EXPECT_EQ(dst1, dst2);
  EXPECT_EQ(acc_sep, acc_int);
}

TEST(Native, ComposeDispatchesFusedForShortPipelines) {
  const StageKind one[] = {StageKind::Cksum};
  EXPECT_TRUE(compose(one).fused);
  const StageKind two[] = {StageKind::Cksum, StageKind::Bswap};
  EXPECT_TRUE(compose(two).fused);
  const StageKind three[] = {StageKind::Cksum, StageKind::Bswap,
                             StageKind::Xor};
  EXPECT_FALSE(compose(three).fused);
  EXPECT_TRUE(compose({}).fused);
}

// Property: fused dispatch and generic fallback agree for every
// composition up to depth 3.
class ComposeEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ComposeEquivalence, FusedEqualsStageByStage) {
  util::Rng rng(GetParam() + 7);
  std::vector<StageKind> stages;
  const int n = 1 + GetParam() % 3;
  for (int i = 0; i < n; ++i) {
    stages.push_back(static_cast<StageKind>(rng.below(3)));
  }
  const auto data = random_words(rng, rng.range(1, 64));
  std::vector<std::uint32_t> state1, state2;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const auto seed = static_cast<std::uint32_t>(rng.next());
    state1.push_back(seed);
    state2.push_back(seed);
  }

  // Reference: apply stages one pass at a time.
  std::vector<std::uint8_t> ref(data);
  for (std::size_t s = 0; s < stages.size(); ++s) {
    switch (stages[s]) {
      case StageKind::Cksum:
        state1[s] = cksum_pass(ref.data(), ref.size(), state1[s]);
        break;
      case StageKind::Bswap:
        bswap_pass(ref.data(), ref.size());
        break;
      case StageKind::Xor:
        xor_pass(ref.data(), ref.size(), state1[s]);
        break;
    }
  }

  std::vector<std::uint8_t> out(data.size());
  compose(stages).kernel(data.data(), out.data(), data.size(), state2.data());
  EXPECT_EQ(out, ref);
  EXPECT_EQ(state1, state2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComposeEquivalence, ::testing::Range(0, 60));

}  // namespace
}  // namespace ash::dilp::native
