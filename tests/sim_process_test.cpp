#include <gtest/gtest.h>

#include "sim/kernel.hpp"
#include "sim/memops.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"

namespace ash::sim {
namespace {

NodeConfig quiet_config() {
  NodeConfig cfg;
  // Zero scheduling overheads make arithmetic in basic tests exact.
  cfg.cost.context_switch = 0;
  return cfg;
}

TEST(Process, ComputeAdvancesSimulatedTime) {
  Simulator sim;
  Node& node = sim.add_node("n0", quiet_config());
  Cycles finished = 0;
  node.kernel().spawn("worker", [&](Process& self) -> Task {
    co_await self.compute(1000);
    co_await self.compute(500);
    finished = self.node().now();
  });
  sim.run();
  EXPECT_EQ(finished, 1500u);
}

TEST(Process, SyscallChargesCrossingsAndWork) {
  Simulator sim;
  NodeConfig cfg = quiet_config();
  cfg.cost.kernel_crossing = 100;
  cfg.cost.syscall_overhead = 50;
  Node& node = sim.add_node("n0", cfg);
  Cycles finished = 0;
  node.kernel().spawn("worker", [&](Process& self) -> Task {
    co_await self.syscall(10);
    finished = self.node().now();
  });
  sim.run();
  EXPECT_EQ(finished, 2u * 100 + 50 + 10);
}

TEST(Process, SleepBlocksForDuration) {
  Simulator sim;
  Node& node = sim.add_node("n0", quiet_config());
  Cycles woke = 0;
  node.kernel().spawn("sleeper", [&](Process& self) -> Task {
    co_await self.sleep_for(5000);
    woke = self.node().now();
  });
  sim.run();
  EXPECT_EQ(woke, 5000u);
}

TEST(Process, ContextSwitchCostCharged) {
  Simulator sim;
  NodeConfig cfg;
  cfg.cost.context_switch = 400;
  Node& node = sim.add_node("n0", cfg);
  Cycles finished = 0;
  node.kernel().spawn("worker", [&](Process& self) -> Task {
    co_await self.compute(100);
    finished = self.node().now();
  });
  sim.run();
  EXPECT_EQ(finished, 500u);  // initial dispatch pays the switch
}

TEST(Process, TwoProcessesShareCpuSerially) {
  Simulator sim;
  Node& node = sim.add_node("n0", quiet_config());
  Cycles a_done = 0, b_done = 0;
  node.kernel().spawn("a", [&](Process& self) -> Task {
    co_await self.compute(1000);
    a_done = self.node().now();
  });
  node.kernel().spawn("b", [&](Process& self) -> Task {
    co_await self.compute(1000);
    b_done = self.node().now();
  });
  sim.run();
  // a runs to completion first (compute shorter than quantum), then b.
  EXPECT_EQ(a_done, 1000u);
  EXPECT_EQ(b_done, 2000u);
}

TEST(Process, QuantumPreemptionInterleavesLongComputes) {
  Simulator sim;
  NodeConfig cfg = quiet_config();
  cfg.cost.quantum = 10000;  // short quantum
  Node& node = sim.add_node("n0", cfg);
  Cycles a_done = 0, b_done = 0;
  node.kernel().spawn("a", [&](Process& self) -> Task {
    co_await self.compute(50000);
    a_done = self.node().now();
  });
  node.kernel().spawn("b", [&](Process& self) -> Task {
    co_await self.compute(50000);
    b_done = self.node().now();
  });
  sim.run();
  // With strict serial execution b would finish at 100000 and a at 50000;
  // with preemption both finish near the end.
  EXPECT_GT(a_done, 50000u);
  EXPECT_LE(b_done, 101000u);
  EXPECT_LT(b_done - a_done, 15000u);
}

TEST(Process, YieldRotatesReadyQueue) {
  Simulator sim;
  Node& node = sim.add_node("n0", quiet_config());
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    node.kernel().spawn("p", [&order, i](Process& self) -> Task {
      for (int r = 0; r < 2; ++r) {
        order.push_back(i);
        co_await self.compute(10);
        co_await self.yield_now();
      }
    });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(Process, WaitChannelDeliversTokensWithoutLoss) {
  Simulator sim;
  Node& node = sim.add_node("n0", quiet_config());
  WaitChannel ch;
  int received = 0;
  node.kernel().spawn("consumer", [&](Process& self) -> Task {
    for (int i = 0; i < 3; ++i) {
      co_await ch.wait(self);
      ++received;
    }
  });
  // Notify before the consumer even starts (token semantics), then later.
  ch.notify();
  sim.queue().schedule_at(1000, [&] { ch.notify(); });
  sim.queue().schedule_at(2000, [&] { ch.notify(); });
  sim.run();
  EXPECT_EQ(received, 3);
}

TEST(Process, WaitChannelNotifyBetweenCheckAndWaitIsNotLost) {
  Simulator sim;
  Node& node = sim.add_node("n0", quiet_config());
  WaitChannel ch;
  bool got = false;
  node.kernel().spawn("consumer", [&](Process& self) -> Task {
    co_await self.compute(500);  // notify lands during this compute
    co_await ch.wait(self);
    got = true;
  });
  sim.queue().schedule_at(100, [&] { ch.notify(); });
  sim.run();
  EXPECT_TRUE(got);
}

TEST(Process, BlockedProcessFreesCpuForOthers) {
  Simulator sim;
  Node& node = sim.add_node("n0", quiet_config());
  WaitChannel ch;
  Cycles worker_done = 0;
  node.kernel().spawn("blocked", [&](Process& self) -> Task {
    co_await ch.wait(self);
  });
  node.kernel().spawn("worker", [&](Process& self) -> Task {
    co_await self.compute(100);
    worker_done = self.node().now();
  });
  sim.queue().schedule_at(100000, [&] { ch.notify(); });
  sim.run();
  EXPECT_LE(worker_done, 200u);  // didn't wait behind the blocked process
}

TEST(Process, ExceptionsPropagateToSimulatorRun) {
  Simulator sim;
  Node& node = sim.add_node("n0", quiet_config());
  node.kernel().spawn("thrower", [&](Process& self) -> Task {
    co_await self.compute(10);
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Process, KernelWorkDelaysProcessCompute) {
  Simulator sim;
  Node& node = sim.add_node("n0", quiet_config());
  Cycles done = 0;
  node.kernel().spawn("worker", [&](Process& self) -> Task {
    co_await self.compute(100);   // finishes at 100
    co_await self.compute(100);   // must wait for interrupt work
    done = self.node().now();
  });
  // Interrupt-style kernel work arrives at t=100 and occupies 500 cycles.
  sim.queue().schedule_at(100, [&] { node.kernel_work(500); });
  sim.run();
  EXPECT_EQ(done, 700u);
}

TEST(Process, SpawnExhaustsMemory) {
  Simulator sim;
  NodeConfig cfg = quiet_config();
  cfg.memory_bytes = 4u << 20;  // room for 3 segments beyond kernel area
  Node& node = sim.add_node("n0", cfg);
  auto noop = [](Process& self) -> Task {
    co_await self.compute(1);
  };
  node.kernel().spawn("a", noop);
  node.kernel().spawn("b", noop);
  node.kernel().spawn("c", noop);
  EXPECT_THROW(node.kernel().spawn("d", noop), std::length_error);
}

TEST(Process, LiveProcessCountTracksExits) {
  Simulator sim;
  Node& node = sim.add_node("n0", quiet_config());
  node.kernel().spawn("a", [](Process& self) -> Task {
    co_await self.compute(10);
  });
  node.kernel().spawn("b", [](Process& self) -> Task {
    co_await self.compute(10000);
  });
  EXPECT_EQ(node.kernel().live_processes(), 2u);
  sim.run();
  EXPECT_EQ(node.kernel().live_processes(), 0u);
}

TEST(Scheduler, PriorityBoostWakesToFrontAndPreempts) {
  Simulator sim;
  NodeConfig cfg = quiet_config();
  cfg.policy = SchedPolicy::PriorityBoost;
  cfg.cost.quantum = us(100000.0);  // quantum never expires in this test
  Node& node = sim.add_node("n0", cfg);
  WaitChannel ch;
  Cycles woken_ran_at = 0;

  node.kernel().spawn("sleeper", [&](Process& self) -> Task {
    co_await ch.wait(self);
    woken_ran_at = self.node().now();
  });
  // Two CPU hogs that would otherwise run for a very long time.
  for (int i = 0; i < 2; ++i) {
    node.kernel().spawn("hog", [&](Process& self) -> Task {
      for (int r = 0; r < 1000; ++r) co_await self.compute(1000);
    });
  }
  sim.queue().schedule_at(10000, [&] { ch.notify(/*boost=*/true); });
  sim.run(us(100000.0));
  EXPECT_GT(woken_ran_at, 0u);
  // Boosted process ran promptly (within a few chunks), not after the hogs.
  EXPECT_LT(woken_ran_at, 20000u);
}

TEST(Scheduler, ObliviousPolicyMakesWokenProcessWait) {
  Simulator sim;
  NodeConfig cfg = quiet_config();
  cfg.policy = SchedPolicy::RoundRobinOblivious;
  cfg.cost.quantum = us(1000.0);  // 1 ms quantum
  Node& node = sim.add_node("n0", cfg);
  WaitChannel ch;
  Cycles woken_ran_at = 0;

  node.kernel().spawn("sleeper", [&](Process& self) -> Task {
    co_await ch.wait(self);
    woken_ran_at = self.node().now();
  });
  for (int i = 0; i < 2; ++i) {
    node.kernel().spawn("hog", [&](Process& self) -> Task {
      for (int r = 0; r < 200; ++r) co_await self.compute(1000);
    });
  }
  sim.queue().schedule_at(10000, [&] { ch.notify(/*boost=*/true); });
  sim.run();
  // Oblivious: the woken process waits for the running hog's quantum (and
  // the other hog ahead of it in the queue).
  EXPECT_GT(woken_ran_at, us(1000.0));
}

namespace subhelpers {

Sub<int> leaf(Process& self, int x) {
  co_await self.compute(100);
  co_return x * 2;
}

Sub<int> middle(Process& self, int x) {
  const int a = co_await leaf(self, x);
  co_await self.compute(50);
  const int b = co_await leaf(self, a);
  co_return b + 1;
}

Sub<void> thrower(Process& self) {
  co_await self.compute(10);
  throw std::runtime_error("sub boom");
}

}  // namespace subhelpers

TEST(Sub, NestedSubroutinesResumeInnermost) {
  Simulator sim;
  Node& node = sim.add_node("n0", quiet_config());
  int result = 0;
  Cycles done = 0;
  node.kernel().spawn("worker", [&](Process& self) -> Task {
    result = co_await subhelpers::middle(self, 5);
    done = self.node().now();
  });
  sim.run();
  EXPECT_EQ(result, 21);        // ((5*2)*2)+1
  EXPECT_EQ(done, 250u);        // 100 + 50 + 100 cycles charged
}

TEST(Sub, ExceptionsPropagateThroughSubroutines) {
  Simulator sim;
  Node& node = sim.add_node("n0", quiet_config());
  bool caught = false;
  node.kernel().spawn("worker", [&](Process& self) -> Task {
    try {
      co_await subhelpers::thrower(self);
    } catch (const std::runtime_error&) {
      caught = true;
    }
  });
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Sub, SubCanBlockOnChannel) {
  Simulator sim;
  Node& node = sim.add_node("n0", quiet_config());
  WaitChannel ch;
  Cycles woke = 0;
  auto waiter = [](Process& self, WaitChannel& c) -> Sub<int> {
    co_await c.wait(self);
    co_await self.compute(10);
    co_return 7;
  };
  int got = 0;
  node.kernel().spawn("worker", [&](Process& self) -> Task {
    got = co_await waiter(self, ch);
    woke = self.node().now();
  });
  sim.queue().schedule_at(5000, [&] { ch.notify(); });
  sim.run();
  EXPECT_EQ(got, 7);
  EXPECT_EQ(woke, 5010u);
}

TEST(MemOps, CopyMovesBytesAndChargesCache) {
  Simulator sim;
  Node& node = sim.add_node("n0", quiet_config());
  auto* src = node.mem(0x1000, 64);
  ASSERT_NE(src, nullptr);
  for (int i = 0; i < 64; ++i) src[i] = static_cast<std::uint8_t>(i);

  node.dcache().flush_all();
  const Cycles cold = memops::copy(node, 0x2000, 0x1000, 64);
  const Cycles warm = memops::copy(node, 0x3000, 0x1000, 64);
  EXPECT_GT(cold, warm);  // second copy's source is cached
  const auto* dst = node.mem(0x2000, 64);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(dst[i], static_cast<std::uint8_t>(i));
  }
}

TEST(MemOps, CksumMatchesReference) {
  Simulator sim;
  Node& node = sim.add_node("n0", quiet_config());
  auto* p = node.mem(0x1000, 32);
  for (int i = 0; i < 32; ++i) p[i] = static_cast<std::uint8_t>(i * 3);
  std::uint32_t acc1 = 0, acc2 = 0;
  memops::cksum(node, 0x1000, 32, &acc1);
  memops::copy_cksum(node, 0x2000, 0x1000, 32, &acc2);
  EXPECT_EQ(acc1, acc2);
  EXPECT_NE(acc1, 0u);
}

TEST(MemOps, IntegratedCheaperThanSeparate) {
  Simulator sim;
  Node& node = sim.add_node("n0", quiet_config());
  const std::uint32_t len = 4096;
  std::uint32_t acc = 0;

  node.dcache().flush_all();
  const Cycles sep_copy = memops::copy(node, 0x10000, 0x4000, len);
  const Cycles sep_ck = memops::cksum(node, 0x10000, len, &acc);
  node.dcache().flush_all();
  const Cycles integrated = memops::copy_cksum(node, 0x20000, 0x4000, len, &acc);
  EXPECT_LT(integrated, sep_copy + sep_ck);
}

TEST(MemOps, OutOfBoundsThrows) {
  Simulator sim;
  Node& node = sim.add_node("n0", quiet_config());
  const auto size = static_cast<std::uint32_t>(node.memory_size());
  EXPECT_THROW(memops::copy(node, size - 8, 0, 64), std::out_of_range);
  std::uint32_t acc = 0;
  EXPECT_THROW(memops::cksum(node, size - 4, 64, &acc), std::out_of_range);
}

}  // namespace
}  // namespace ash::sim
