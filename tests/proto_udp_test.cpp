#include "proto/udp.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "sim/kernel.hpp"
#include "sim/simulator.hpp"

namespace ash::proto {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

const Ipv4Addr kIpA = Ipv4Addr::of(10, 0, 0, 1);
const Ipv4Addr kIpB = Ipv4Addr::of(10, 0, 0, 2);

struct UdpWorld {
  Simulator sim;
  Node* a;
  Node* b;
  net::An2Device* dev_a;
  net::An2Device* dev_b;

  explicit UdpWorld(const net::An2Config& cfg = {}) {
    a = &sim.add_node("a");
    b = &sim.add_node("b");
    dev_a = new net::An2Device(*a, cfg);
    dev_b = new net::An2Device(*b, cfg);
    dev_a->connect(*dev_b);
  }
  ~UdpWorld() {
    delete dev_a;
    delete dev_b;
  }

  UdpSocket::Options opts_a(bool checksum = true) const {
    return {kIpA, kIpB, 1000, 2000, checksum};
  }
  UdpSocket::Options opts_b(bool checksum = true) const {
    return {kIpB, kIpA, 2000, 1000, checksum};
  }
};

TEST(Udp, EchoRoundTripInPlace) {
  UdpWorld w;
  bool ok = false;

  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    UdpSocket sock(link, w.opts_b());
    for (int i = 0; i < 3; ++i) {
      auto dg = co_await sock.recv_in_place();
      // Echo the payload back from where it landed (zero copy).
      co_await sock.send_from(dg.payload_addr, dg.payload_len);
      sock.release(dg);
    }
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    UdpSocket sock(link, w.opts_a());
    const std::uint8_t ping[] = {0xca, 0xfe, 0xba, 0xbe};
    for (int i = 0; i < 3; ++i) {
      co_await sock.send(ping);
      auto dg = co_await sock.recv_in_place();
      EXPECT_EQ(dg.payload_len, 4);
      const std::uint8_t* p = w.a->mem(dg.payload_addr, 4);
      ok = p != nullptr && std::memcmp(p, ping, 4) == 0;
      sock.release(dg);
    }
  });
  w.sim.run(us(3e6));
  EXPECT_TRUE(ok);
}

TEST(Udp, RecvCopyDeliversToAppBuffer) {
  UdpWorld w;
  std::uint32_t got_len = 0;

  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    UdpSocket sock(link, w.opts_b());
    const std::uint32_t app_buf = self.segment().base + 256;
    const auto dg = co_await sock.recv_copy(app_buf, 1024);
    got_len = dg.payload_len;
    const std::uint8_t* p = w.b->mem(app_buf, dg.payload_len);
    bool match = true;
    for (std::uint32_t i = 0; i < dg.payload_len; ++i) {
      match &= p[i] == static_cast<std::uint8_t>(i);
    }
    EXPECT_TRUE(match);
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    UdpSocket sock(link, w.opts_a());
    std::vector<std::uint8_t> data(100);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>(i);
    }
    co_await sock.send(data);
  });
  w.sim.run(us(3e6));
  EXPECT_EQ(got_len, 100u);
}

TEST(Udp, ChecksumDetectsCorruption) {
  // The "bad" sender claims source IP 10.0.0.9 in its IP header while
  // checksumming against that pseudo-header; the receiving socket is
  // connected to 10.0.0.1 and verifies against ITS peer's pseudo-header,
  // so the datagram fails checksum verification and is dropped — the
  // connected-socket discipline our UDP implements.
  UdpWorld w;
  int received = 0;
  std::uint64_t failures = 0;

  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    UdpSocket sock(link, w.opts_b());
    // recv with a deadline via the link directly to avoid hanging forever:
    // one good datagram is expected, the bad one is dropped.
    for (;;) {
      auto dg = co_await sock.recv_in_place();
      ++received;
      sock.release(dg);
      if (received >= 1) break;
    }
    failures = sock.checksum_failures();
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    // Bad socket: claims source IP 10.0.0.9 in the IP header, so the
    // receiver's pseudo-header check fails.
    UdpSocket bad(link, {Ipv4Addr::of(10, 0, 0, 9), kIpB, 1000, 2000, true});
    const std::uint8_t payload[] = {1, 2, 3, 4};
    co_await bad.send(payload);
    co_await self.sleep_for(us(500.0));
    UdpSocket good(link, w.opts_a());
    co_await good.send(payload);
  });
  w.sim.run(us(3e6));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(failures, 1u);  // the bad datagram was caught by verification
}

TEST(Udp, ShortAndUnalignedPayloads) {
  UdpWorld w;
  std::vector<std::uint32_t> lens;
  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    UdpSocket sock(link, w.opts_b());
    for (int i = 0; i < 4; ++i) {
      auto dg = co_await sock.recv_in_place();
      lens.push_back(dg.payload_len);
      sock.release(dg);
    }
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    UdpSocket sock(link, w.opts_a());
    for (const std::uint32_t n : {1u, 3u, 7u, 1001u}) {
      std::vector<std::uint8_t> data(n, 0x42);
      co_await sock.send(data);
      co_await self.sleep_for(us(300.0));
    }
  });
  w.sim.run(us(3e6));
  EXPECT_EQ(lens, (std::vector<std::uint32_t>{1, 3, 7, 1001}));
}

TEST(Udp, LatencyBallparkMatchesTableII) {
  // 4-byte UDP ping-pong with checksum, polling: the paper reports 244 us
  // per round trip (Table II). The simulation should land in that band.
  UdpWorld w;
  sim::Cycles t0 = 0, t1 = 0;
  constexpr int kIters = 10;

  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    UdpSocket sock(link, w.opts_b());
    for (int i = 0; i < kIters; ++i) {
      auto dg = co_await sock.recv_in_place();
      co_await sock.send_from(dg.payload_addr, dg.payload_len);
      sock.release(dg);
    }
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    UdpSocket sock(link, w.opts_a());
    const std::uint8_t ping[] = {1, 2, 3, 4};
    co_await self.sleep_for(us(1000.0));  // let the server start
    t0 = self.node().now();
    for (int i = 0; i < kIters; ++i) {
      co_await sock.send(ping);
      auto dg = co_await sock.recv_in_place();
      sock.release(dg);
    }
    t1 = self.node().now();
  });
  w.sim.run(us(3e6));
  const double rtt = sim::to_us(t1 - t0) / kIters;
  EXPECT_GT(rtt, 215.0);
  EXPECT_LT(rtt, 275.0);
}

}  // namespace
}  // namespace ash::proto
