#include "ashlib/tcp_fastpath.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "vcode/verifier.hpp"

namespace ash::ashlib {
namespace {

using proto::An2Link;
using proto::Ipv4Addr;
using proto::TcpConfig;
using proto::TcpConnection;
using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

const Ipv4Addr kIpA = Ipv4Addr::of(10, 0, 0, 1);
const Ipv4Addr kIpB = Ipv4Addr::of(10, 0, 0, 2);

TcpConfig client_cfg() {
  TcpConfig c;
  c.local_ip = kIpA;
  c.remote_ip = kIpB;
  c.local_port = 4000;
  c.remote_port = 5000;
  c.iss = 100;
  return c;
}
TcpConfig server_cfg() {
  TcpConfig c;
  c.local_ip = kIpB;
  c.remote_ip = kIpA;
  c.local_port = 5000;
  c.remote_port = 4000;
  c.iss = 900;
  return c;
}

struct World {
  Simulator sim;
  Node* a;
  Node* b;
  net::An2Device* dev_a;
  net::An2Device* dev_b;
  core::AshSystem* ash_b;
  core::UpcallManager* up_b;

  World() {
    a = &sim.add_node("a");
    b = &sim.add_node("b");
    dev_a = new net::An2Device(*a);
    dev_b = new net::An2Device(*b);
    dev_a->connect(*dev_b);
    ash_b = new core::AshSystem(*b);
    up_b = new core::UpcallManager(*b);
  }
  ~World() {
    delete up_b;
    delete ash_b;
    delete dev_a;
    delete dev_b;
  }
};

void fill_pattern(Node& node, std::uint32_t addr, std::uint32_t len,
                  std::uint64_t seed) {
  util::Rng rng(seed);
  std::uint8_t* p = node.mem(addr, len);
  for (std::uint32_t i = 0; i < len; ++i) {
    p[i] = static_cast<std::uint8_t>(rng.next());
  }
}

bool check_pattern(Node& node, std::uint32_t addr, std::uint32_t len,
                   std::uint64_t seed) {
  util::Rng rng(seed);
  const std::uint8_t* p = node.mem(addr, len);
  for (std::uint32_t i = 0; i < len; ++i) {
    if (p[i] != static_cast<std::uint8_t>(rng.next())) return false;
  }
  return true;
}

TEST(TcpFastPath, ProgramVerifiesAndSandboxes) {
  const vcode::Program prog = make_tcp_fastpath_program(0);
  vcode::VerifyPolicy policy;
  const auto verdict = vcode::verify(prog, policy);
  EXPECT_TRUE(verdict.ok()) << verdict.to_string();

  sandbox::Options opts;
  opts.segment = {0x100000, 0x100000};
  std::string error;
  const auto boxed = sandbox::sandbox(prog, opts, &error);
  ASSERT_TRUE(boxed.has_value()) << error;
  // Paper regime: ~90-instruction handler + substantial sandbox overhead.
  EXPECT_GT(prog.insns.size(), 80u);
  EXPECT_GT(boxed->report.added(), 20u);
}

enum class Mode { SandboxedAsh, UnsafeAsh, Upcall };

struct RunResult {
  bool data_ok = false;
  std::uint32_t ash_commits = 0;
  std::uint32_t ash_fallbacks = 0;
  TcpConnection::Stats lib_stats;
};

/// Bulk transfer a -> b with the fast path installed on b in `mode`.
RunResult run_transfer(Mode mode, std::uint32_t total_len, bool checksum) {
  World w;
  RunResult out;

  w.b->kernel().spawn("server", [&w, &out, mode, total_len,
                                 checksum](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    TcpConfig cfg = server_cfg();
    cfg.checksum = checksum;
    TcpConnection conn(link, cfg);

    std::string error;
    if (mode == Mode::Upcall) {
      install_tcp_fastpath_upcall(*w.up_b, *w.dev_b, link.vc(), conn);
    } else {
      core::AshOptions opts;
      opts.sandboxed = mode == Mode::SandboxedAsh;
      const auto fp = install_tcp_fastpath(*w.ash_b, *w.dev_b, link.vc(),
                                           conn, opts, &error);
      EXPECT_TRUE(fp.has_value()) << error;
    }

    const bool accepted = co_await conn.accept();
    EXPECT_TRUE(accepted);
    const std::uint32_t buf = self.segment().base;
    std::uint32_t got = 0;
    while (got < total_len) {
      const std::uint32_t n =
          co_await conn.read_into(buf + got, total_len - got);
      if (n == 0) break;
      got += n;
    }
    out.data_ok = got == total_len && check_pattern(*w.b, buf, total_len, 7);
    out.ash_commits = conn.shm().get(proto::tcb::kAshCommits);
    out.ash_fallbacks = conn.shm().get(proto::tcb::kAshFallbacks);
    out.lib_stats = conn.stats();
  });

  w.a->kernel().spawn("client", [&w, total_len, checksum](Process& self)
                                    -> Task {
    An2Link link(self, *w.dev_a, {});
    TcpConfig cfg = client_cfg();
    cfg.checksum = checksum;
    TcpConnection conn(link, cfg);
    co_await self.sleep_for(us(500.0));
    const bool connected = co_await conn.connect();
    EXPECT_TRUE(connected);
    const std::uint32_t buf = self.segment().base;
    fill_pattern(*w.a, buf, total_len, 7);
    for (std::uint32_t off = 0; off < total_len; off += 8192) {
      const bool wrote = co_await conn.write_from(
          buf + off, std::min(8192u, total_len - off));
      EXPECT_TRUE(wrote);
    }
  });

  w.sim.run(us(5e6));
  return out;
}

TEST(TcpFastPath, SandboxedAshCarriesBulkTransfer) {
  const RunResult r = run_transfer(Mode::SandboxedAsh, 64 * 1024, true);
  EXPECT_TRUE(r.data_ok);
  // The handler processed nearly every data segment in kernel context.
  EXPECT_GT(r.ash_commits, 20u);
  // Handshake/teardown segments fall back; data segments rarely do
  // (paper: non-prediction aborts under 0.2%).
  EXPECT_LT(r.ash_fallbacks, 8u);
  // The library's own receive path therefore saw almost nothing.
  EXPECT_LT(r.lib_stats.fastpath_hits, 3u);
}

TEST(TcpFastPath, UnsafeAshMatches) {
  const RunResult r = run_transfer(Mode::UnsafeAsh, 32 * 1024, true);
  EXPECT_TRUE(r.data_ok);
  EXPECT_GT(r.ash_commits, 10u);
}

TEST(TcpFastPath, UpcallVariantMatches) {
  const RunResult r = run_transfer(Mode::Upcall, 32 * 1024, true);
  EXPECT_TRUE(r.data_ok);
  EXPECT_GT(r.ash_commits, 10u);
}

TEST(TcpFastPath, WorksWithoutChecksums) {
  const RunResult r = run_transfer(Mode::SandboxedAsh, 32 * 1024, false);
  EXPECT_TRUE(r.data_ok);
  EXPECT_GT(r.ash_commits, 10u);
}

TEST(TcpFastPath, PingPongThroughHandler) {
  World w;
  int echoes = 0;
  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    TcpConnection conn(link, server_cfg());
    std::string error;
    core::AshOptions opts;
    const auto fp = install_tcp_fastpath(*w.ash_b, *w.dev_b, link.vc(),
                                         conn, opts, &error);
    EXPECT_TRUE(fp.has_value()) << error;
    const bool accepted = co_await conn.accept();
    EXPECT_TRUE(accepted);
    const std::uint32_t buf = self.segment().base;
    for (int i = 0; i < 4; ++i) {
      const std::uint32_t n = co_await conn.read_into(buf, 64);
      EXPECT_EQ(n, 4u);
      const bool wrote = co_await conn.write_from(buf, n);
      EXPECT_TRUE(wrote);
    }
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    TcpConnection conn(link, client_cfg());
    co_await self.sleep_for(us(500.0));
    const bool connected = co_await conn.connect();
    EXPECT_TRUE(connected);
    const std::uint32_t buf = self.segment().base;
    for (int i = 0; i < 4; ++i) {
      std::uint8_t* p = w.a->mem(buf, 4);
      p[0] = static_cast<std::uint8_t>(0x40 + i);
      p[1] = p[2] = p[3] = 1;
      const bool wrote = co_await conn.write_from(buf, 4);
      EXPECT_TRUE(wrote);
      const std::uint32_t n = co_await conn.read_into(buf + 32, 64);
      EXPECT_EQ(n, 4u);
      if (w.a->mem(buf + 32, 1)[0] == 0x40 + i) ++echoes;
    }
  });
  w.sim.run(us(5e6));
  EXPECT_EQ(echoes, 4);
}

}  // namespace
}  // namespace ash::ashlib
