// Differential replay of the seeded fuzz corpus with smart-NIC offload on
// vs off (the host/offload differential proof). The offload contract is
// canonical-single-run: a handler executes exactly once through the same
// AshSystem machinery wherever it runs, and a punt transfers only the
// *completion* of a frame back to the host — never a re-execution. So the
// delivered message set (payload digests + per-channel counts, on both
// the plain notification-ring path and the ASH reply path) AND every
// per-handler AshStats outcome taxonomy must be identical with offload on
// or off; only where the cycles are charged (NIC units vs host CPUs)
// differs. Same seeds as the packetfuzz corpus targets (1001..1007
// per-parser, 2001/4001/6001 the cross-target sweeps).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "ashlib/handlers.hpp"
#include "core/ash.hpp"
#include "dpf/dpf.hpp"
#include "net/an2.hpp"
#include "net/ethernet.hpp"
#include "net/nic_offload.hpp"
#include "net/rx_queue.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "vcode/builder.hpp"

namespace ash::net {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

constexpr int kVcs = 6;        // VCs 0..3 plain ring, VCs 4..5 ASH-attached
constexpr int kFirstAshVc = 4;
constexpr int kBufsPerVc = 160;

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h = (h ^ p[i]) * 1099511628211ull;
  }
  return h;
}

/// VC 5's handler: count and echo even-first-byte messages, voluntarily
/// abort odd ones. Aborts take the fallback delivery path on the host and
/// become HostService punts on the device — the differential proof needs
/// both flavors in one corpus, not just commits.
vcode::Program make_parity_filter() {
  using vcode::Builder;
  Builder b;
  const vcode::Reg t = b.reg();
  const vcode::Reg v = b.reg();
  vcode::Label odd = b.label();
  b.lbu(t, vcode::kRegArg0, 0);
  b.andi(t, t, 1);
  b.bne(t, vcode::kRegZero, odd);
  b.lw(v, vcode::kRegArg2, 0);
  b.addiu(v, v, 1);
  b.sw(v, vcode::kRegArg2, 0);
  b.t_send(vcode::kRegArg3, vcode::kRegArg0, vcode::kRegArg1);
  b.halt();
  b.bind(odd);
  b.abort(7);
  return b.take();
}

/// One corpus message: arrival-schedule offset, target VC, payload. Same
/// generator shape as net_rxqueue_diff_test so the corpora line up.
struct CorpusMsg {
  sim::Cycles at;
  int vc;
  std::vector<std::uint8_t> bytes;
};

std::vector<CorpusMsg> make_corpus(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<CorpusMsg> corpus;
  sim::Cycles t = us(100.0);
  const std::size_t n = 90 + rng.below(40);
  for (std::size_t m = 0; m < n; ++m) {
    if (rng.below(3) != 0) t += static_cast<sim::Cycles>(rng.below(480));
    CorpusMsg msg;
    msg.at = t;
    msg.vc = static_cast<int>(rng.below(kVcs));
    const std::size_t len = msg.vc >= kFirstAshVc ? 8 : rng.below(49);
    msg.bytes.resize(len);
    for (auto& b : msg.bytes) b = static_cast<std::uint8_t>(rng.below(256));
    corpus.push_back(std::move(msg));
  }
  return corpus;
}

struct OffloadCase {
  const char* name;
  std::size_t queues;
  std::size_t nic_units;  // 0 = host-only (no NicProcessor)
  bool tiny_window;       // window fits only VC 4's handler
};

constexpr OffloadCase kCases[] = {
    {"host-4q", 4, 0, false},
    {"nic-4q", 4, 4, false},
    {"nic-4q-tiny-window", 4, 4, true},
    {"nic-1q-1unit", 1, 1, false},
};

/// Everything one run's outcome taxonomy: the by_outcome array plus the
/// summary counters and the execution totals (cycles exclude dispatch, so
/// they are identical host- or NIC-side by construction).
struct Taxonomy {
  std::uint64_t invocations, commits, vaborts, iaborts, cycles, insns;
  std::array<std::uint64_t, vcode::kOutcomeCount> by_outcome;
  bool operator==(const Taxonomy&) const = default;
};

Taxonomy taxonomy_of(const core::AshStats& s) {
  return {s.invocations, s.commits,          s.voluntary_aborts,
          s.involuntary_aborts, s.cycles, s.insns, s.by_outcome};
}

struct Delivered {
  std::map<int, std::vector<std::uint64_t>> ring;
  std::map<int, std::vector<std::uint64_t>> replies;
  std::map<int, std::vector<std::uint64_t>> fallback;
  std::uint32_t counters[2] = {0, 0};
  Taxonomy tax[2] = {};
  // Offload-side ground truth (zero in host-only runs).
  std::uint64_t nic_offered = 0, nic_executed = 0, nic_punted = 0;
  std::uint64_t nic_not_resident = 0;
};

Delivered replay(const std::vector<CorpusMsg>& corpus,
                 const OffloadCase& cfg) {
  Simulator sim;
  Node& a = sim.add_node("client");
  Node& b = sim.add_node("server");
  An2Device dev_a(a), dev_b(b);
  dev_a.connect(dev_b);
  core::AshSystem ash_sys(b);

  RxQueueSet::Config qc;
  qc.queues = cfg.queues;
  qc.coalesce.enabled = true;
  qc.coalesce.max_frames = 4;
  qc.coalesce.max_delay = us(30.0);
  RxQueueSet rxq(b, qc);
  dev_b.set_rx_queues(&rxq);

  std::unique_ptr<NicProcessor> nic;  // built post-download (window sizing)

  std::uint32_t ctr_addr[2] = {0, 0};
  b.kernel().spawn("server", [&](Process& self) -> Task {
    core::AshOptions opts;
    std::string error;
    const int id_inc = ash_sys.download(self, ashlib::make_remote_increment(),
                                        opts, &error);
    EXPECT_GE(id_inc, 0) << error;
    const int id_par =
        ash_sys.download(self, make_parity_filter(), opts, &error);
    EXPECT_GE(id_par, 0) << error;

    if (cfg.nic_units > 0) {
      NicConfig nc;
      nc.units_per_queue = cfg.nic_units;
      // The tiny window holds exactly VC 4's handler: VC 5's frames must
      // then be *counted* NotResident punts running on the host path.
      if (cfg.tiny_window) nc.mem_window_bytes = ash_sys.nic_footprint(id_inc);
      nic = std::make_unique<NicProcessor>(b, rxq, nc);
      dev_b.set_nic(nic.get());
    }

    for (int v = 0; v < kVcs; ++v) {
      const int vc = dev_b.bind_vc(self);
      for (int i = 0; i < kBufsPerVc; ++i) {
        dev_b.supply_buffer(
            vc,
            self.segment().base +
                64u * static_cast<std::uint32_t>(v * kBufsPerVc + i),
            64);
      }
      if (v >= kFirstAshVc) {
        ctr_addr[v - kFirstAshVc] =
            self.segment().base + 0x80000 + 0x100u * (v - kFirstAshVc);
        const int id = v == kFirstAshVc ? id_inc : id_par;
        // offload_an2 falls back to a plain host attach when no NIC is
        // present — one code path for every case in the table.
        const bool res =
            ash_sys.offload_an2(dev_b, vc, id, ctr_addr[v - kFirstAshVc]);
        if (cfg.nic_units > 0) {
          EXPECT_EQ(res, !(cfg.tiny_window && v != kFirstAshVc))
              << cfg.name << " vc " << v;
        } else {
          EXPECT_FALSE(res);
        }
      }
    }
    co_await self.sleep_for(us(1e6));
  });

  a.kernel().spawn("client", [&](Process& self) -> Task {
    for (int v = 0; v < kVcs; ++v) {
      dev_a.bind_vc(self);
      if (v >= kFirstAshVc) {
        for (int i = 0; i < kBufsPerVc; ++i) {
          dev_a.supply_buffer(
              v,
              self.segment().base +
                  64u * static_cast<std::uint32_t>(v * kBufsPerVc + i),
              64);
        }
      }
    }
    co_await self.sleep_for(us(1e6));
  });

  for (const CorpusMsg& m : corpus) {
    sim.queue().schedule_at(m.at, [&dev_a, &m] {
      ASSERT_TRUE(dev_a.send(m.vc, m.bytes));
    });
  }
  sim.run(us(50000.0));

  Delivered out;
  for (int v = 0; v < kVcs; ++v) {
    EXPECT_EQ(dev_b.drops(v), 0u) << cfg.name << " server vc " << v;
    EXPECT_EQ(dev_a.drops(v), 0u) << cfg.name << " client vc " << v;
    while (const auto d = dev_b.poll(v)) {
      const std::uint8_t* p = d->len ? b.mem(d->addr, d->len) : nullptr;
      const std::uint64_t h = fnv1a(p, d->len);
      (v >= kFirstAshVc ? out.fallback[v] : out.ring[v]).push_back(h);
    }
    while (const auto d = dev_a.poll(v)) {
      const std::uint8_t* p = d->len ? a.mem(d->addr, d->len) : nullptr;
      out.replies[v].push_back(fnv1a(p, d->len));
    }
  }
  for (int i = 0; i < 2; ++i) {
    const std::uint8_t* p = b.mem(ctr_addr[i], 4);
    out.counters[i] = static_cast<std::uint32_t>(p[0]) |
                      (static_cast<std::uint32_t>(p[1]) << 8) |
                      (static_cast<std::uint32_t>(p[2]) << 16) |
                      (static_cast<std::uint32_t>(p[3]) << 24);
    out.tax[i] = taxonomy_of(ash_sys.stats(i));
  }
  if (nic != nullptr) {
    const auto t = nic->totals();
    out.nic_offered = t.offered;
    out.nic_executed = t.nic_executed;
    out.nic_punted = t.punted;
    out.nic_not_resident =
        t.by_punt_reason[static_cast<std::size_t>(PuntReason::NotResident)];
    EXPECT_EQ(t.offered, t.nic_executed + t.punted + t.dropped) << cfg.name;
    EXPECT_EQ(t.dropped, 0u) << cfg.name;
    for (std::size_t q = 0; q < nic->queues(); ++q) {
      EXPECT_EQ(nic->depth(q), 0u) << cfg.name << " queue " << q;
    }
  }
  for (auto* m : {&out.ring, &out.replies, &out.fallback}) {
    for (auto& [vc, v] : *m) std::sort(v.begin(), v.end());
  }
  return out;
}

TEST(OffloadDiff, CorpusDeliveryAndStatsIdenticalHostVsOffload) {
  const std::uint64_t seeds[] = {1001, 1002, 1003, 1004, 1005,
                                 1006, 1007, 2001, 4001, 6001};
  for (const std::uint64_t seed : seeds) {
    const auto corpus = make_corpus(seed);
    std::map<int, std::size_t> offered;
    for (const auto& m : corpus) ++offered[m.vc];

    const Delivered base = replay(corpus, kCases[0]);
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    // The host run must account for every offered ASH message.
    for (int v = kFirstAshVc; v < kVcs; ++v) {
      const std::size_t got =
          (base.replies.count(v) ? base.replies.at(v).size() : 0) +
          (base.fallback.count(v) ? base.fallback.at(v).size() : 0);
      EXPECT_EQ(got, offered[v]) << "ash vc " << v;
    }
    EXPECT_EQ(base.tax[0].invocations, offered[kFirstAshVc]);
    EXPECT_EQ(base.tax[1].invocations, offered[kFirstAshVc + 1]);
    EXPECT_EQ(base.tax[1].commits + base.tax[1].vaborts,
              base.tax[1].invocations);

    for (std::size_t c = 1; c < std::size(kCases); ++c) {
      const Delivered got = replay(corpus, kCases[c]);
      SCOPED_TRACE(::testing::Message() << "config=" << kCases[c].name);
      EXPECT_EQ(got.ring, base.ring);
      EXPECT_EQ(got.replies, base.replies);
      EXPECT_EQ(got.fallback, base.fallback);
      EXPECT_EQ(got.counters[0], base.counters[0]);
      EXPECT_EQ(got.counters[1], base.counters[1]);
      // The whole point: the handler ran once per message through the
      // same machinery, so the outcome taxonomy (and even the execution
      // cycle/insn totals) match the host run exactly.
      EXPECT_EQ(got.tax[0], base.tax[0]);
      EXPECT_EQ(got.tax[1], base.tax[1]);

      // Offload ground truth. Full window: every ASH frame was offered to
      // the NIC. Tiny window: VC 5's frames are NotResident punts.
      const std::size_t ash_msgs =
          offered[kFirstAshVc] + offered[kFirstAshVc + 1];
      EXPECT_EQ(got.nic_offered, ash_msgs);
      if (kCases[c].tiny_window) {
        EXPECT_EQ(got.nic_not_resident, offered[kFirstAshVc + 1]);
        EXPECT_EQ(got.nic_executed, base.tax[0].commits);
      } else {
        EXPECT_EQ(got.nic_not_resident, 0u);
        EXPECT_EQ(got.nic_executed,
                  base.tax[0].commits + base.tax[1].commits);
        EXPECT_EQ(got.nic_punted, base.tax[1].vaborts);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// offload_eth end-to-end: the Ethernet device's DPF-demuxed receive path
// drives the same NIC units as An2 (striped message access, device-framed
// replies). A plain attach_eth run is ground truth: the counter, the
// echoed-reply set at the sender, and the handler's outcome taxonomy must
// match with every frame executing on-device in the offload run.
// ---------------------------------------------------------------------------

struct EthRun {
  std::uint32_t counter = 0;
  std::vector<std::uint64_t> replies;
  Taxonomy tax{};
  std::uint64_t nic_offered = 0, nic_executed = 0, nic_punted = 0;
  std::uint64_t nic_replies = 0;
};

EthRun replay_eth(bool offload) {
  constexpr int kFrames = 24;
  Simulator sim;
  Node& a = sim.add_node("client");
  Node& b = sim.add_node("server");
  EthernetDevice dev_a(a), dev_b(b);
  dev_a.connect(dev_b);
  core::AshSystem ash_sys(b);

  RxQueueSet::Config qc;
  qc.queues = 2;
  RxQueueSet rxq(b, qc);
  dev_b.set_rx_queues(&rxq);
  std::unique_ptr<NicProcessor> nic;

  dpf::Filter filt;
  filt.atoms = {dpf::atom_be16(12, 0x0800)};

  std::uint32_t ctr_addr = 0;
  b.kernel().spawn("server", [&](Process& self) -> Task {
    const int ep = dev_b.attach(self, filt);
    for (int i = 0; i < 2 * kFrames; ++i) {
      dev_b.supply_buffer(
          ep, self.segment().base + 2048u * static_cast<std::uint32_t>(i),
          2048);
    }
    std::string error;
    const int id =
        ash_sys.download(self, ashlib::make_remote_increment(), {}, &error);
    EXPECT_GE(id, 0) << error;
    ctr_addr = self.segment().base + 0x80000;
    if (offload) {
      NicConfig nc;
      nc.units_per_queue = 2;
      nic = std::make_unique<NicProcessor>(b, rxq, nc);
      dev_b.set_nic(nic.get());
      EXPECT_TRUE(ash_sys.offload_eth(dev_b, ep, id, ctr_addr));
    } else {
      ash_sys.attach_eth(dev_b, ep, id, ctr_addr);
    }
    co_await self.sleep_for(us(1e6));
  });

  int ep_a = -1;
  a.kernel().spawn("client", [&](Process& self) -> Task {
    ep_a = dev_a.attach(self, filt);  // catches the handler's echoes
    for (int i = 0; i < 2 * kFrames; ++i) {
      dev_a.supply_buffer(
          ep_a, self.segment().base + 2048u * static_cast<std::uint32_t>(i),
          2048);
    }
    co_await self.sleep_for(us(1e6));
  });

  std::vector<std::vector<std::uint8_t>> frames;
  for (int i = 0; i < kFrames; ++i) {
    std::vector<std::uint8_t> f(14 + 60, static_cast<std::uint8_t>(i));
    f[12] = 0x08;
    f[13] = 0x00;
    frames.push_back(std::move(f));
  }
  for (int i = 0; i < kFrames; ++i) {
    sim.queue().schedule_at(us(100.0 + 200.0 * i), [&dev_a, &frames, i] {
      ASSERT_TRUE(dev_a.send(frames[static_cast<std::size_t>(i)]));
    });
  }
  sim.run(us(50000.0));

  EthRun out;
  while (const auto d = dev_a.poll(ep_a)) {
    const std::uint8_t* p = d->len ? a.mem(d->addr, d->len) : nullptr;
    out.replies.push_back(fnv1a(p, d->len));
  }
  std::sort(out.replies.begin(), out.replies.end());
  const std::uint8_t* p = b.mem(ctr_addr, 4);
  out.counter = static_cast<std::uint32_t>(p[0]) |
                (static_cast<std::uint32_t>(p[1]) << 8) |
                (static_cast<std::uint32_t>(p[2]) << 16) |
                (static_cast<std::uint32_t>(p[3]) << 24);
  out.tax = taxonomy_of(ash_sys.stats(0));
  if (nic != nullptr) {
    const auto t = nic->totals();
    out.nic_offered = t.offered;
    out.nic_executed = t.nic_executed;
    out.nic_punted = t.punted;
    out.nic_replies = t.replies;
    EXPECT_EQ(t.offered, t.nic_executed + t.punted + t.dropped);
    for (std::size_t q = 0; q < nic->queues(); ++q) {
      EXPECT_EQ(nic->depth(q), 0u) << "queue " << q;
    }
  }
  return out;
}

TEST(OffloadDiff, EthernetOffloadMatchesHostAttach) {
  const EthRun host = replay_eth(false);
  EXPECT_EQ(host.counter, 24u);
  EXPECT_EQ(host.tax.invocations, 24u);
  EXPECT_EQ(host.tax.commits, 24u);
  EXPECT_EQ(host.replies.size(), 24u);

  const EthRun nic = replay_eth(true);
  EXPECT_EQ(nic.counter, host.counter);
  EXPECT_EQ(nic.replies, host.replies);
  EXPECT_EQ(nic.tax, host.tax);
  // The window fits the single handler, nothing aborts: every frame
  // executes on-device and every echo is a device-initiated TSend.
  EXPECT_EQ(nic.nic_offered, 24u);
  EXPECT_EQ(nic.nic_executed, 24u);
  EXPECT_EQ(nic.nic_punted, 0u);
  EXPECT_EQ(nic.nic_replies, 24u);
}

}  // namespace
}  // namespace ash::net
