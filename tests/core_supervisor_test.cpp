// Supervisor fault containment: the policy engine in isolation, the
// quarantine/revocation machinery end-to-end through the AN2 receive path,
// and the abort-path side-effect containment guarantees (TSend release,
// DILP persistent-register writeback).
#include "core/ash.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "core/supervisor.hpp"
#include "dilp/pipe.hpp"
#include "dpf/dpf.hpp"
#include "net/ethernet.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "vcode/builder.hpp"

namespace ash::core {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;
using vcode::Builder;
using vcode::kRegArg0;
using vcode::kRegArg1;
using vcode::kRegArg2;
using vcode::kRegArg3;
using vcode::Reg;

// ---------------------------------------------------------------------------
// The policy engine alone: a pure state machine over a bare cycle counter.
// ---------------------------------------------------------------------------

SupervisorConfig tight_config() {
  SupervisorConfig c;
  c.enabled = true;
  c.fault_threshold = 3;
  c.fault_window = 1000;
  c.quarantine_base = 100;
  c.quarantine_cap = 400;
  c.probation_successes = 2;
  c.max_quarantines = 0;  // never revoke unless the test says so
  return c;
}

TEST(Supervisor, QuarantinesAtThresholdWithinWindow) {
  Supervisor sup;
  sup.set_config(tight_config());
  Supervisor::HandlerState h;

  EXPECT_EQ(sup.note_result(h, true, 0), Supervisor::Action::None);
  EXPECT_EQ(sup.note_result(h, true, 10), Supervisor::Action::None);
  EXPECT_EQ(h.health, Health::Healthy);
  EXPECT_EQ(sup.note_result(h, true, 20), Supervisor::Action::Quarantine);
  EXPECT_EQ(h.health, Health::Quarantined);
  EXPECT_EQ(h.quarantine_len, 100u);
  EXPECT_EQ(h.quarantine_until, 120u);
  EXPECT_EQ(h.quarantine_trips, 1u);
}

TEST(Supervisor, SlidingWindowForgetsOldFaults) {
  Supervisor sup;
  sup.set_config(tight_config());
  Supervisor::HandlerState h;

  EXPECT_EQ(sup.note_result(h, true, 0), Supervisor::Action::None);
  EXPECT_EQ(sup.note_result(h, true, 10), Supervisor::Action::None);
  // Window (1000 cycles) expires: the old two faults no longer count.
  EXPECT_EQ(sup.note_result(h, true, 2000), Supervisor::Action::None);
  EXPECT_EQ(sup.note_result(h, true, 2010), Supervisor::Action::None);
  EXPECT_EQ(h.health, Health::Healthy);
  EXPECT_EQ(sup.note_result(h, true, 2020), Supervisor::Action::Quarantine);
}

TEST(Supervisor, AdmissionDeniedUntilBackoffThenProbation) {
  Supervisor sup;
  sup.set_config(tight_config());
  Supervisor::HandlerState h;
  for (int i = 0; i < 3; ++i) sup.note_result(h, true, 0);
  ASSERT_EQ(h.health, Health::Quarantined);

  EXPECT_EQ(sup.admit(h, 50), Supervisor::Admission::Denied);
  EXPECT_EQ(h.health, Health::Quarantined);
  // Backoff elapsed: the next message is the probe, run on probation.
  EXPECT_EQ(sup.admit(h, 100), Supervisor::Admission::Run);
  EXPECT_EQ(h.health, Health::Probation);
}

TEST(Supervisor, BackoffDoublesAndCaps) {
  Supervisor sup;
  sup.set_config(tight_config());
  Supervisor::HandlerState h;

  for (int i = 0; i < 3; ++i) sup.note_result(h, true, 0);
  EXPECT_EQ(h.quarantine_len, 100u);  // base
  ASSERT_EQ(sup.admit(h, 100), Supervisor::Admission::Run);
  sup.note_result(h, true, 100);  // probe faults: straight back, doubled
  EXPECT_EQ(h.health, Health::Quarantined);
  EXPECT_EQ(h.quarantine_len, 200u);
  ASSERT_EQ(sup.admit(h, 300), Supervisor::Admission::Run);
  sup.note_result(h, true, 300);
  EXPECT_EQ(h.quarantine_len, 400u);  // cap
  ASSERT_EQ(sup.admit(h, 700), Supervisor::Admission::Run);
  sup.note_result(h, true, 700);
  EXPECT_EQ(h.quarantine_len, 400u);  // stays at cap
  EXPECT_EQ(h.quarantine_trips, 4u);
}

TEST(Supervisor, ProbationRecoveryRestoresHealthyAndResetsBackoff) {
  Supervisor sup;
  sup.set_config(tight_config());
  Supervisor::HandlerState h;
  for (int i = 0; i < 3; ++i) sup.note_result(h, true, 0);
  ASSERT_EQ(sup.admit(h, 100), Supervisor::Admission::Run);

  EXPECT_EQ(sup.note_result(h, false, 110), Supervisor::Action::None);
  EXPECT_EQ(h.health, Health::Probation);  // one clean run is not enough
  EXPECT_EQ(sup.note_result(h, false, 120), Supervisor::Action::None);
  EXPECT_EQ(h.health, Health::Healthy);
  EXPECT_EQ(h.quarantine_len, 0u);  // backoff reset: next trip starts at base
  EXPECT_EQ(h.faults_in_window, 0u);

  for (int i = 0; i < 3; ++i) sup.note_result(h, true, 200);
  EXPECT_EQ(h.health, Health::Quarantined);
  EXPECT_EQ(h.quarantine_len, 100u);  // base again, not doubled
}

TEST(Supervisor, RevokedAfterMaxQuarantineTrips) {
  Supervisor sup;
  SupervisorConfig cfg = tight_config();
  cfg.max_quarantines = 2;
  sup.set_config(cfg);
  Supervisor::HandlerState h;

  for (int i = 0; i < 3; ++i) sup.note_result(h, true, 0);
  ASSERT_EQ(h.health, Health::Quarantined);
  ASSERT_EQ(sup.admit(h, 100), Supervisor::Admission::Run);
  EXPECT_EQ(sup.note_result(h, true, 100), Supervisor::Action::Revoke);
  EXPECT_EQ(h.health, Health::Revoked);
  EXPECT_EQ(sup.admit(h, 1u << 30), Supervisor::Admission::Denied);
  // Results on a revoked handler are ignored (stale in-flight completions).
  EXPECT_EQ(sup.note_result(h, true, 200), Supervisor::Action::None);
}

// ---------------------------------------------------------------------------
// End-to-end through the AN2 receive path.
// ---------------------------------------------------------------------------

struct SupWorld {
  Simulator sim;
  Node* a;
  Node* b;
  net::An2Device* dev_a;
  net::An2Device* dev_b;
  AshSystem* ash_b;

  SupWorld() {
    a = &sim.add_node("a");
    b = &sim.add_node("b");
    dev_a = new net::An2Device(*a);
    dev_b = new net::An2Device(*b);
    dev_a->connect(*dev_b);
    ash_b = new AshSystem(*b);
  }
  ~SupWorld() {
    delete ash_b;
    delete dev_a;
    delete dev_b;
  }
};

/// Faults with DivideByZero iff the first message word is zero — a cheap,
/// data-dependent involuntary abort (no timer budget burned).
vcode::Program div_by_word0_ash() {
  Builder b;
  const Reg v = b.reg();
  const Reg q = b.reg();
  b.lw(v, kRegArg0, 0);
  b.divu(q, kRegArg1, v);
  b.movi(kRegArg0, 1);
  b.halt();
  return b.take();
}

constexpr std::uint8_t kBadMsg[4] = {0, 0, 0, 0};
constexpr std::uint8_t kGoodMsg[4] = {1, 0, 0, 0};

TEST(Quarantine, FaultThresholdQuarantinesAndSkipsAtLowCost) {
  SupWorld w;
  SupervisorConfig sup;
  sup.enabled = true;
  sup.fault_threshold = 2;
  w.ash_b->set_supervisor(sup);

  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    const int vc = w.dev_b->bind_vc(self);
    for (int i = 0; i < 8; ++i) {
      w.dev_b->supply_buffer(
          vc, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
    }
    std::string error;
    const int id = w.ash_b->download(self, div_by_word0_ash(), {}, &error);
    EXPECT_GE(id, 0) << error;
    w.ash_b->attach_an2(*w.dev_b, vc, id);
    co_await self.sleep_for(us(20000.0));

    const AshStats& s = w.ash_b->stats(id);
    // Two faults run, then the supervisor stops paying: messages 3 and 4
    // are skipped at demux cost.
    EXPECT_EQ(s.invocations, 2u);
    EXPECT_EQ(s.involuntary_aborts, 2u);
    EXPECT_EQ(s.quarantine_skips, 2u);
    EXPECT_EQ(w.ash_b->health(id), Health::Quarantined);
    EXPECT_EQ(w.ash_b->supervisor_state(id).quarantine_trips, 1u);

    // Abort taxonomy + last-fault forensics.
    EXPECT_EQ(s.by_outcome[static_cast<std::size_t>(
                  vcode::Outcome::DivideByZero)],
              2u);
    EXPECT_TRUE(s.last_fault.valid);
    EXPECT_EQ(s.last_fault.outcome, vcode::Outcome::DivideByZero);
    EXPECT_GT(s.last_fault.insns, 0u);
    EXPECT_NE(w.ash_b->format_status().find("Quarantined"),
              std::string::npos);

    // All four messages still reached the owner via normal delivery.
    int delivered = 0;
    while (w.dev_b->poll(vc).has_value()) ++delivered;
    EXPECT_EQ(delivered, 4);
  });
  for (int i = 1; i <= 4; ++i) {
    w.sim.queue().schedule_at(us(1000.0 * i),
                              [&] { w.dev_a->send(0, kBadMsg); });
  }
  w.sim.run();
}

TEST(Quarantine, ProbeFaultEscalatesToRevocationAndClearsHook) {
  SupWorld w;
  SupervisorConfig sup;
  sup.enabled = true;
  sup.fault_threshold = 1;
  sup.quarantine_base = us(1000.0);
  sup.max_quarantines = 2;
  w.ash_b->set_supervisor(sup);

  int vc = -1;
  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    vc = w.dev_b->bind_vc(self);
    for (int i = 0; i < 8; ++i) {
      w.dev_b->supply_buffer(
          vc, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
    }
    std::string error;
    const int id = w.ash_b->download(self, div_by_word0_ash(), {}, &error);
    EXPECT_GE(id, 0) << error;
    w.ash_b->attach_an2(*w.dev_b, vc, id);
    EXPECT_TRUE(w.dev_b->has_kernel_hook(vc));
    co_await self.sleep_for(us(50000.0));

    const AshStats& s = w.ash_b->stats(id);
    // Fault 1 -> quarantine trip 1; message 2 skipped; the probe faults
    // -> trip 2 = max_quarantines -> revoked, hook cleared.
    EXPECT_EQ(s.invocations, 2u);
    EXPECT_EQ(s.quarantine_skips, 1u);
    EXPECT_EQ(w.ash_b->health(id), Health::Revoked);
    EXPECT_FALSE(w.dev_b->has_kernel_hook(vc));
    // Message 4 took the plain device path: the ASH system never saw it.
    EXPECT_EQ(s.revoked_skips, 0u);
    // Revocation already cleared the attachment; detach finds nothing.
    EXPECT_FALSE(w.ash_b->detach_an2(*w.dev_b, vc));

    int delivered = 0;
    while (w.dev_b->poll(vc).has_value()) ++delivered;
    EXPECT_EQ(delivered, 4);
  });
  // t=1ms fault; t=1.5ms skipped; t=4ms probe faults; t=6ms hook-less.
  for (const double t : {1000.0, 1500.0, 4000.0, 6000.0}) {
    w.sim.queue().schedule_at(us(t), [&] { w.dev_a->send(0, kBadMsg); });
  }
  w.sim.run();
}

TEST(Quarantine, CleanProbationRunsRestoreHealthy) {
  SupWorld w;
  SupervisorConfig sup;
  sup.enabled = true;
  sup.fault_threshold = 1;
  sup.quarantine_base = us(1000.0);
  sup.probation_successes = 2;
  sup.max_quarantines = 0;
  w.ash_b->set_supervisor(sup);

  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    const int vc = w.dev_b->bind_vc(self);
    for (int i = 0; i < 8; ++i) {
      w.dev_b->supply_buffer(
          vc, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
    }
    std::string error;
    const int id = w.ash_b->download(self, div_by_word0_ash(), {}, &error);
    EXPECT_GE(id, 0) << error;
    w.ash_b->attach_an2(*w.dev_b, vc, id);
    co_await self.sleep_for(us(50000.0));

    const AshStats& s = w.ash_b->stats(id);
    EXPECT_EQ(s.involuntary_aborts, 1u);
    EXPECT_EQ(s.commits, 2u);  // both probes ran clean
    EXPECT_EQ(w.ash_b->health(id), Health::Healthy);
    EXPECT_EQ(w.ash_b->supervisor_state(id).quarantine_len, 0u);
    EXPECT_EQ(w.ash_b->supervisor_state(id).quarantine_trips, 1u);
  });
  w.sim.queue().schedule_at(us(1000.0), [&] { w.dev_a->send(0, kBadMsg); });
  w.sim.queue().schedule_at(us(4000.0), [&] { w.dev_a->send(0, kGoodMsg); });
  w.sim.queue().schedule_at(us(5000.0), [&] { w.dev_a->send(0, kGoodMsg); });
  w.sim.run();
}

TEST(Quarantine, OwnerFaultLimitRevokesEveryHandlerOfTheProcess) {
  SupWorld w;
  SupervisorConfig sup;
  sup.enabled = true;
  sup.fault_threshold = 100;  // per-handler quarantine effectively off
  sup.owner_fault_limit = 3;
  w.ash_b->set_supervisor(sup);

  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    const int vc0 = w.dev_b->bind_vc(self);
    const int vc1 = w.dev_b->bind_vc(self);
    for (int i = 0; i < 8; ++i) {
      w.dev_b->supply_buffer(
          vc0, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
      w.dev_b->supply_buffer(
          vc1,
          self.segment().base + 0x1000 + 64u * static_cast<std::uint32_t>(i),
          64);
    }
    std::string error;
    const int id0 = w.ash_b->download(self, div_by_word0_ash(), {}, &error);
    const int id1 = w.ash_b->download(self, div_by_word0_ash(), {}, &error);
    EXPECT_GE(id0, 0);
    EXPECT_GE(id1, 0);
    w.ash_b->attach_an2(*w.dev_b, vc0, id0);
    w.ash_b->attach_an2(*w.dev_b, vc1, id1);
    co_await self.sleep_for(us(50000.0));

    // Faults aggregate across the owner's handlers: vc0, vc1, vc0 -> the
    // third fault crosses the owner limit and takes BOTH handlers down.
    EXPECT_EQ(w.ash_b->owner_faults(w.ash_b->owner(id0)), 3u);
    EXPECT_EQ(w.ash_b->health(id0), Health::Revoked);
    EXPECT_EQ(w.ash_b->health(id1), Health::Revoked);
    EXPECT_FALSE(w.dev_b->has_kernel_hook(vc0));
    EXPECT_FALSE(w.dev_b->has_kernel_hook(vc1));
  });
  w.sim.queue().schedule_at(us(1000.0), [&] { w.dev_a->send(0, kBadMsg); });
  w.sim.queue().schedule_at(us(2000.0), [&] { w.dev_a->send(1, kBadMsg); });
  w.sim.queue().schedule_at(us(3000.0), [&] { w.dev_a->send(0, kBadMsg); });
  w.sim.run();
}

TEST(Quarantine, ExplicitRevokeDeniesEvenWithSupervisorDisabled) {
  SupWorld w;  // note: no set_supervisor — policy disabled
  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    const int vc = w.dev_b->bind_vc(self);
    for (int i = 0; i < 8; ++i) {
      w.dev_b->supply_buffer(
          vc, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
    }
    std::string error;
    const int id = w.ash_b->download(self, div_by_word0_ash(), {}, &error);
    EXPECT_GE(id, 0) << error;
    w.ash_b->attach_an2(*w.dev_b, vc, id);
    co_await self.sleep_for(us(2000.0));
    EXPECT_EQ(w.ash_b->stats(id).commits, 1u);

    w.ash_b->revoke(id);
    EXPECT_EQ(w.ash_b->health(id), Health::Revoked);
    co_await self.sleep_for(us(1000.0));  // deferred hook-clear runs
    EXPECT_FALSE(w.dev_b->has_kernel_hook(vc));

    // Direct invocation (a custom demux point) is denied too.
    std::memcpy(w.b->mem(self.segment().base + 0x2000, 4), kGoodMsg, 4);
    MsgContext m;
    m.addr = self.segment().base + 0x2000;
    m.len = 4;
    EXPECT_FALSE(w.ash_b->invoke(
        id, m, [](int, std::span<const std::uint8_t>) { return true; }, 0));
    EXPECT_EQ(w.ash_b->stats(id).revoked_skips, 1u);

    co_await self.sleep_for(us(5000.0));
    EXPECT_EQ(w.ash_b->stats(id).invocations, 1u);  // message 2 bypassed
    int delivered = 0;
    while (w.dev_b->poll(vc).has_value()) ++delivered;
    EXPECT_EQ(delivered, 1);
  });
  w.sim.queue().schedule_at(us(1000.0), [&] { w.dev_a->send(0, kGoodMsg); });
  w.sim.queue().schedule_at(us(5000.0), [&] { w.dev_a->send(0, kGoodMsg); });
  w.sim.run();
}

TEST(Quarantine, DetachClearsHooksOnBothDeviceKinds) {
  SupWorld w;
  net::EthernetDevice eth_b(*w.b);
  w.b->kernel().spawn("owner", [&](Process& self) -> Task {
    const int vc = w.dev_b->bind_vc(self);
    dpf::Filter f;
    f.atoms = {dpf::atom_be16(12, 0x0800)};
    const int ep = eth_b.attach(self, f);
    std::string error;
    const int id = w.ash_b->download(self, div_by_word0_ash(), {}, &error);
    EXPECT_GE(id, 0) << error;
    w.ash_b->attach_an2(*w.dev_b, vc, id);
    w.ash_b->attach_eth(eth_b, ep, id);
    EXPECT_TRUE(w.dev_b->has_kernel_hook(vc));
    EXPECT_TRUE(eth_b.has_kernel_hook(ep));

    EXPECT_TRUE(w.ash_b->detach_an2(*w.dev_b, vc));
    EXPECT_FALSE(w.dev_b->has_kernel_hook(vc));
    EXPECT_FALSE(w.ash_b->detach_an2(*w.dev_b, vc));  // already gone

    EXPECT_TRUE(w.ash_b->detach_eth(eth_b, ep));
    EXPECT_FALSE(eth_b.has_kernel_hook(ep));
    EXPECT_FALSE(w.ash_b->detach_eth(eth_b, ep));

    // The handler itself is untouched by detach: still Healthy.
    EXPECT_EQ(w.ash_b->health(id), Health::Healthy);
    co_await self.compute(1);
  });
  w.sim.run();
}

// ---------------------------------------------------------------------------
// Abort-path side-effect containment.
// ---------------------------------------------------------------------------

TEST(Containment, TSendsReleasedOnlyOnHalt) {
  enum class Ending { Halt, VoluntaryAbort, InvoluntaryAbort };
  const auto sends_after = [](Ending ending) -> std::uint64_t {
    SupWorld w;
    std::uint64_t sends = 0;
    w.b->kernel().spawn("owner", [&](Process& self) -> Task {
      Builder bld;
      bld.t_send(kRegArg3, kRegArg0, kRegArg1);  // queue the echo first
      switch (ending) {
        case Ending::Halt:
          bld.movi(kRegArg0, 1);
          bld.halt();
          break;
        case Ending::VoluntaryAbort:
          bld.abort(7);
          break;
        case Ending::InvoluntaryAbort: {
          const vcode::Label loop = bld.label();
          bld.bind(loop);
          bld.jmp(loop);  // burn the timer budget
          break;
        }
      }
      std::string error;
      const int id = w.ash_b->download(self, bld.take(), {}, &error);
      EXPECT_GE(id, 0) << error;

      std::memcpy(w.b->mem(self.segment().base + 0x2000, 4), kGoodMsg, 4);
      MsgContext m;
      m.addr = self.segment().base + 0x2000;
      m.len = 4;
      w.ash_b->invoke(
          id, m,
          [&sends](int, std::span<const std::uint8_t>) {
            ++sends;
            return true;
          },
          0);
      // Sends are released when the handler's simulated runtime elapses.
      co_await self.sleep_for(us(20000.0));
    });
    w.sim.run();
    return sends;
  };

  EXPECT_EQ(sends_after(Ending::Halt), 1u);
  EXPECT_EQ(sends_after(Ending::VoluntaryAbort), 0u);
  EXPECT_EQ(sends_after(Ending::InvoluntaryAbort), 0u);
}

TEST(Containment, DilpPersistentRegsKeepSeedAcrossFaultedTransfer) {
  // A pipe with a persistent accumulator that faults mid-transfer (divu by
  // a zero message word): the persistent-exchange registers must keep
  // their seeds — no partial writeback of a half-run accumulator.
  std::uint32_t status_out = 0xff, acc_out = 0xff;

  const auto run_case = [&](bool fault) {
    SupWorld world;
    world.b->kernel().spawn("owner", [&, fault](Process& self) -> Task {
      dilp::PipeBuilder pb("sum-div", dilp::Gauge::G32, dilp::Gauge::G32,
                           dilp::kCommutative | dilp::kNoMod);
      const Reg acc = pb.persistent_reg();
      const Reg in = pb.temp_reg();
      const Reg t = pb.temp_reg();
      pb.code().pin32(in);
      pb.code().addu(acc, acc, in);
      pb.code().divu(t, acc, in);  // faults when a message word is zero
      pb.code().pout32(in);
      dilp::PipeList pl;
      pl.add(pb.finish());
      std::string error;
      const int ilp =
          world.ash_b->dilp().register_ilp(pl, dilp::Direction::Read, &error);
      EXPECT_GE(ilp, 0) << error;

      Builder bld;
      const Reg ilp_reg = bld.reg();
      bld.movi(ilp_reg, static_cast<std::uint32_t>(ilp));
      bld.movi(kDilpPersistentBase, 7);  // seed the accumulator
      bld.t_dilp(ilp_reg, kRegArg0, kRegArg2, kRegArg1);
      // r1 now holds the TDilp status; store status and accumulator for
      // the test to read back.
      bld.sw(kRegArg0, kRegArg2, 64);
      bld.sw(kDilpPersistentBase, kRegArg2, 68);
      bld.movi(kRegArg0, 1);
      bld.halt();
      std::string err2;
      const int id = world.ash_b->download(self, bld.take(), {}, &err2);
      EXPECT_GE(id, 0) << err2;

      // Three words; the last is zero only in the faulting case.
      const std::uint32_t msg = self.segment().base + 0x2000;
      const std::uint32_t dst = self.segment().base + 0x3000;
      const std::uint32_t words[3] = {1, 2, fault ? 0u : 3u};
      std::memcpy(world.b->mem(msg, 12), words, 12);

      MsgContext m;
      m.addr = msg;
      m.len = 12;
      m.user_arg = dst;
      world.ash_b->invoke(
          id, m, [](int, std::span<const std::uint8_t>) { return true; }, 0);
      std::memcpy(&status_out, world.b->mem(dst + 64, 4), 4);
      std::memcpy(&acc_out, world.b->mem(dst + 68, 4), 4);
      co_await self.compute(1);
    });
    world.sim.run();
  };

  run_case(/*fault=*/false);
  EXPECT_EQ(status_out, 0u);
  EXPECT_EQ(acc_out, 7u + 1 + 2 + 3);  // finals written back on success

  run_case(/*fault=*/true);
  EXPECT_EQ(status_out, 1u);  // transfer reported failed to the handler
  EXPECT_EQ(acc_out, 7u);     // seed intact: no partial writeback
}

}  // namespace
}  // namespace ash::core
