#include "vcode/verifier.hpp"

#include <gtest/gtest.h>

#include "vcode/builder.hpp"

namespace ash::vcode {
namespace {

VerifyPolicy ash_policy() {
  VerifyPolicy p;  // defaults: no FP, no signed traps, trusted ok
  return p;
}

TEST(Verifier, AcceptsWellFormedProgram) {
  Builder b;
  const Reg x = b.reg();
  b.movi(x, 1);
  b.addu(kRegArg0, x, x);
  b.halt();
  const auto r = verify(b.take(), ash_policy());
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(Verifier, RejectsEmptyProgram) {
  Program prog;
  EXPECT_FALSE(verify(prog, ash_policy()).ok());
}

TEST(Verifier, RejectsFloatingPoint) {
  Builder b;
  b.fadd(kRegArg0, kRegArg0, kRegArg1);
  b.halt();
  const auto r = verify(b.take(), ash_policy());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.issues[0].message.find("floating-point"), std::string::npos);
}

TEST(Verifier, AllowsFloatingPointWhenPolicyPermits) {
  Builder b;
  b.fadd(kRegArg0, kRegArg0, kRegArg1);
  b.halt();
  VerifyPolicy p = ash_policy();
  p.allow_fp = true;
  EXPECT_TRUE(verify(b.take(), p).ok());
}

TEST(Verifier, RejectsSignedTrappingArithmetic) {
  Builder b;
  b.add(kRegArg0, kRegArg0, kRegArg1);
  b.halt();
  EXPECT_FALSE(verify(b.take(), ash_policy()).ok());
}

TEST(Verifier, RejectsOutOfRangeRegisters) {
  Program prog;
  prog.insns.push_back({Op::Addu, 70, 1, 2, 0});
  prog.insns.push_back({Op::Halt, 0, 0, 0, 0});
  EXPECT_FALSE(verify(prog, ash_policy()).ok());
}

TEST(Verifier, RejectsOutOfBoundsBranch) {
  Program prog;
  prog.insns.push_back({Op::Jmp, 0, 0, 0, 99});
  EXPECT_FALSE(verify(prog, ash_policy()).ok());
}

TEST(Verifier, RejectsFallOffEnd) {
  Program prog;
  prog.insns.push_back({Op::Addu, 1, 2, 3, 0});
  const auto r = verify(prog, ash_policy());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.to_string().find("fall off"), std::string::npos);
}

TEST(Verifier, RejectsPipeIoOutsidePipes) {
  Builder b;
  b.pin32(kRegArg0);
  b.halt();
  const Program prog = b.take();
  EXPECT_FALSE(verify(prog, ash_policy()).ok());
  VerifyPolicy p = ash_policy();
  p.allow_pipe_io = true;
  EXPECT_TRUE(verify(prog, p).ok());
}

TEST(Verifier, RejectsTrustedCallsWhenForbidden) {
  Builder b;
  b.t_msglen(kRegArg0);
  b.halt();
  VerifyPolicy p = ash_policy();
  p.allow_trusted = false;
  EXPECT_FALSE(verify(b.take(), p).ok());
}

TEST(Verifier, RejectsIndirectJumpWhenForbidden) {
  Builder b;
  b.jr(kRegArg0);
  VerifyPolicy p = ash_policy();
  p.allow_indirect = false;
  EXPECT_FALSE(verify(b.take(), p).ok());
}

TEST(Verifier, RejectsBadIndirectTargetTable) {
  Builder b;
  b.halt();
  Program prog = b.take();
  prog.indirect_targets.push_back(50);
  EXPECT_FALSE(verify(prog, ash_policy()).ok());
}

TEST(Verifier, RejectsTDilpLengthRegisterOutOfRange) {
  Program prog;
  prog.insns.push_back({Op::TDilp, 1, 2, 3, 200});
  prog.insns.push_back({Op::Halt, 0, 0, 0, 0});
  EXPECT_FALSE(verify(prog, ash_policy()).ok());
}

TEST(Verifier, ReportsMultipleIssuesWithPcs) {
  Program prog;
  prog.insns.push_back({Op::Fadd, 1, 2, 3, 0});
  prog.insns.push_back({Op::Jmp, 0, 0, 0, 1000});
  prog.insns.push_back({Op::Addu, 1, 2, 3, 0});  // also falls off end
  const auto r = verify(prog, ash_policy());
  EXPECT_GE(r.issues.size(), 3u);
  EXPECT_EQ(r.issues[0].pc, 0u);
  EXPECT_EQ(r.issues[1].pc, 1u);
}

}  // namespace
}  // namespace ash::vcode
