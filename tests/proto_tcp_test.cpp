#include "proto/tcp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace ash::proto {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

const Ipv4Addr kIpA = Ipv4Addr::of(10, 0, 0, 1);
const Ipv4Addr kIpB = Ipv4Addr::of(10, 0, 0, 2);

TcpConfig client_cfg() {
  TcpConfig c;
  c.local_ip = kIpA;
  c.remote_ip = kIpB;
  c.local_port = 4000;
  c.remote_port = 5000;
  c.iss = 100;
  return c;
}

TcpConfig server_cfg() {
  TcpConfig c;
  c.local_ip = kIpB;
  c.remote_ip = kIpA;
  c.local_port = 5000;
  c.remote_port = 4000;
  c.iss = 900;
  return c;
}

struct TcpWorld {
  Simulator sim;
  Node* a;
  Node* b;
  net::An2Device* dev_a;
  net::An2Device* dev_b;

  explicit TcpWorld(const net::An2Config& cfg = {}) {
    a = &sim.add_node("a");
    b = &sim.add_node("b");
    dev_a = new net::An2Device(*a, cfg);
    dev_b = new net::An2Device(*b, cfg);
    dev_a->connect(*dev_b);
  }
  ~TcpWorld() {
    delete dev_a;
    delete dev_b;
  }
};

/// Fill app memory with a deterministic pattern.
void fill_pattern(Node& node, std::uint32_t addr, std::uint32_t len,
                  std::uint64_t seed) {
  util::Rng rng(seed);
  std::uint8_t* p = node.mem(addr, len);
  for (std::uint32_t i = 0; i < len; ++i) {
    p[i] = static_cast<std::uint8_t>(rng.next());
  }
}

bool check_pattern(Node& node, std::uint32_t addr, std::uint32_t len,
                   std::uint64_t seed) {
  util::Rng rng(seed);
  const std::uint8_t* p = node.mem(addr, len);
  for (std::uint32_t i = 0; i < len; ++i) {
    if (p[i] != static_cast<std::uint8_t>(rng.next())) return false;
  }
  return true;
}

TEST(Tcp, HandshakeEstablishesBothSides) {
  TcpWorld w;
  bool a_ok = false, b_ok = false;
  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    TcpConnection conn(link, server_cfg());
    b_ok = co_await conn.accept();
    EXPECT_EQ(conn.state(), TcpState::Established);
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    TcpConnection conn(link, client_cfg());
    co_await self.sleep_for(us(500.0));
    a_ok = co_await conn.connect();
    EXPECT_EQ(conn.state(), TcpState::Established);
  });
  w.sim.run(us(3e6));
  EXPECT_TRUE(a_ok);
  EXPECT_TRUE(b_ok);
}

TEST(Tcp, TransfersDataReliably) {
  TcpWorld w;
  constexpr std::uint32_t kLen = 100 * 1024;
  bool data_ok = false;

  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    TcpConnection conn(link, server_cfg());
    co_await conn.accept();
    const std::uint32_t buf = self.segment().base;
    std::uint32_t got = 0;
    while (got < kLen) {
      const std::uint32_t n = co_await conn.read_into(buf + got, kLen - got);
      if (n == 0) break;
      got += n;
    }
    data_ok = got == kLen && check_pattern(*w.b, buf, kLen, 77);
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    TcpConnection conn(link, client_cfg());
    co_await self.sleep_for(us(500.0));
    co_await conn.connect();
    const std::uint32_t buf = self.segment().base;
    fill_pattern(*w.a, buf, kLen, 77);
    // Write in 8 KB chunks like the paper's throughput experiment.
    for (std::uint32_t off = 0; off < kLen; off += 8192) {
      const bool wrote =
          co_await conn.write_from(buf + off, std::min(8192u, kLen - off));
      EXPECT_TRUE(wrote);
    }
  });
  w.sim.run(us(3e6));
  EXPECT_TRUE(data_ok);
}

TEST(Tcp, PingPongEcho) {
  TcpWorld w;
  int echoes = 0;
  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    TcpConnection conn(link, server_cfg());
    co_await conn.accept();
    const std::uint32_t buf = self.segment().base;
    for (int i = 0; i < 5; ++i) {
      const std::uint32_t n = co_await conn.read_into(buf, 64);
      EXPECT_EQ(n, 4u);
      co_await conn.write_from(buf, n);
    }
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    TcpConnection conn(link, client_cfg());
    co_await self.sleep_for(us(500.0));
    co_await conn.connect();
    const std::uint32_t buf = self.segment().base;
    for (int i = 0; i < 5; ++i) {
      std::uint8_t* p = w.a->mem(buf, 4);
      p[0] = static_cast<std::uint8_t>(i);
      p[1] = p[2] = p[3] = 0x5a;
      co_await conn.write_from(buf, 4);
      const std::uint32_t n = co_await conn.read_into(buf + 32, 64);
      EXPECT_EQ(n, 4u);
      if (w.a->mem(buf + 32, 1)[0] == i) ++echoes;
    }
  });
  w.sim.run(us(3e6));
  EXPECT_EQ(echoes, 5);
}

TEST(Tcp, HeaderPredictionDominatesBulkTransfer) {
  TcpWorld w;
  constexpr std::uint32_t kLen = 64 * 1024;
  TcpConnection::Stats server_stats;

  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    TcpConnection conn(link, server_cfg());
    co_await conn.accept();
    const std::uint32_t buf = self.segment().base;
    std::uint32_t got = 0;
    while (got < kLen) {
      const std::uint32_t n = co_await conn.read_into(buf, kLen - got);
      if (n == 0) break;
      got += n;
    }
    server_stats = conn.stats();
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    TcpConnection conn(link, client_cfg());
    co_await self.sleep_for(us(500.0));
    co_await conn.connect();
    const std::uint32_t buf = self.segment().base;
    fill_pattern(*w.a, buf, 8192, 1);
    for (std::uint32_t off = 0; off < kLen; off += 8192) {
      co_await conn.write_from(buf, 8192);
    }
  });
  w.sim.run(us(3e6));
  // "Except during connection set up and tear down, all segments were
  // processed by the TCP header-prediction code."
  EXPECT_GT(server_stats.fastpath_hits, 15u);
  EXPECT_LE(server_stats.slowpath, 4u);
  EXPECT_EQ(server_stats.cksum_failures, 0u);
}

TEST(Tcp, RecoversFromPacketLoss) {
  net::An2Config lossy;
  lossy.faults.drop_prob = 0.08;
  lossy.faults.seed = 1234;
  TcpWorld w(lossy);
  constexpr std::uint32_t kLen = 40 * 1024;
  bool data_ok = false;
  std::uint64_t retransmits = 0;

  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    TcpConfig cfg = server_cfg();
    cfg.rto = us(5000.0);  // keep the test fast
    TcpConnection conn(link, cfg);
    co_await conn.accept();
    const std::uint32_t buf = self.segment().base;
    std::uint32_t got = 0;
    while (got < kLen) {
      const std::uint32_t n = co_await conn.read_into(buf + got, kLen - got);
      if (n == 0) break;
      got += n;
    }
    data_ok = got == kLen && check_pattern(*w.b, buf, kLen, 55);
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    TcpConfig cfg = client_cfg();
    cfg.rto = us(5000.0);
    cfg.max_retries = 30;
    TcpConnection conn(link, cfg);
    co_await self.sleep_for(us(500.0));
    const bool connected = co_await conn.connect();
    EXPECT_TRUE(connected);
    const std::uint32_t buf = self.segment().base;
    fill_pattern(*w.a, buf, kLen, 55);
    for (std::uint32_t off = 0; off < kLen; off += 8192) {
      const bool wrote = co_await conn.write_from(buf + off, 8192);
      EXPECT_TRUE(wrote);
    }
    retransmits = conn.stats().retransmits;
  });
  w.sim.run(us(3e6));
  EXPECT_TRUE(data_ok);
  EXPECT_GT(retransmits, 0u);
}

TEST(Tcp, SurvivesDuplicatedPackets) {
  net::An2Config dupy;
  dupy.faults.dup_prob = 0.2;
  dupy.faults.seed = 77;
  TcpWorld w(dupy);
  constexpr std::uint32_t kLen = 32 * 1024;
  bool data_ok = false;

  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    TcpConnection conn(link, server_cfg());
    co_await conn.accept();
    const std::uint32_t buf = self.segment().base;
    std::uint32_t got = 0;
    while (got < kLen) {
      const std::uint32_t n = co_await conn.read_into(buf + got, kLen - got);
      if (n == 0) break;
      got += n;
    }
    data_ok = got == kLen && check_pattern(*w.b, buf, kLen, 99);
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    TcpConnection conn(link, client_cfg());
    co_await self.sleep_for(us(500.0));
    co_await conn.connect();
    const std::uint32_t buf = self.segment().base;
    fill_pattern(*w.a, buf, kLen, 99);
    for (std::uint32_t off = 0; off < kLen; off += 8192) {
      const bool wrote = co_await conn.write_from(buf + off, 8192);
      EXPECT_TRUE(wrote);
    }
  });
  w.sim.run(us(3e6));
  EXPECT_TRUE(data_ok);
}

TEST(Tcp, CloseHandshakeReachesClosedOnBothSides) {
  TcpWorld w;
  TcpState a_state = TcpState::Established, b_state = TcpState::Established;
  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    TcpConnection conn(link, server_cfg());
    co_await conn.accept();
    const std::uint32_t buf = self.segment().base;
    (void)co_await conn.read_into(buf, 64);
    co_await conn.close();
    b_state = conn.state();
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    TcpConnection conn(link, client_cfg());
    co_await self.sleep_for(us(500.0));
    co_await conn.connect();
    const std::uint32_t buf = self.segment().base;
    w.a->mem(buf, 4)[0] = 1;
    co_await conn.write_from(buf, 4);
    co_await conn.close();
    a_state = conn.state();
  });
  w.sim.run(us(3e6));
  EXPECT_EQ(a_state, TcpState::Closed);
  EXPECT_EQ(b_state, TcpState::Closed);
}

TEST(Tcp, ReadAfterPeerCloseReturnsZero) {
  TcpWorld w;
  std::uint32_t final_read = 99;
  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    TcpConnection conn(link, server_cfg());
    co_await conn.accept();
    const std::uint32_t buf = self.segment().base;
    std::uint32_t n = co_await conn.read_into(buf, 64);
    EXPECT_EQ(n, 4u);
    final_read = co_await conn.read_into(buf, 64);  // peer FIN -> 0
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    TcpConnection conn(link, client_cfg());
    co_await self.sleep_for(us(500.0));
    co_await conn.connect();
    const std::uint32_t buf = self.segment().base;
    w.a->mem(buf, 4)[0] = 1;
    co_await conn.write_from(buf, 4);
    co_await conn.close();
  });
  w.sim.run(us(3e6));
  EXPECT_EQ(final_read, 0u);
}

TEST(Tcp, SmallMssSegmentsCorrectly) {
  TcpWorld w;
  constexpr std::uint32_t kLen = 16 * 1024;
  bool data_ok = false;
  TcpConnection::Stats stats;

  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    TcpConfig cfg = server_cfg();
    cfg.mss = 536;
    TcpConnection conn(link, cfg);
    co_await conn.accept();
    const std::uint32_t buf = self.segment().base;
    std::uint32_t got = 0;
    while (got < kLen) {
      const std::uint32_t n = co_await conn.read_into(buf + got, kLen - got);
      if (n == 0) break;
      got += n;
    }
    data_ok = got == kLen && check_pattern(*w.b, buf, kLen, 13);
    stats = conn.stats();
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    TcpConfig cfg = client_cfg();
    cfg.mss = 536;
    TcpConnection conn(link, cfg);
    co_await self.sleep_for(us(500.0));
    co_await conn.connect();
    const std::uint32_t buf = self.segment().base;
    fill_pattern(*w.a, buf, 4096, 13);
    // Note the pattern check reads sequential data; regenerate per chunk.
    std::uint32_t off = 0;
    util::Rng rng(13);
    while (off < kLen) {
      std::uint8_t* p = w.a->mem(buf, 4096);
      for (int i = 0; i < 4096; ++i) p[i] = static_cast<std::uint8_t>(rng.next());
      co_await conn.write_from(buf, 4096);
      off += 4096;
    }
  });
  w.sim.run(us(3e6));
  EXPECT_TRUE(data_ok);
  // 16 KB at MSS 536 = at least 30 data segments.
  EXPECT_GT(stats.segments_in, 30u);
}

TEST(Tcp, NoChecksumModeSkipsVerification) {
  TcpWorld w;
  TcpConnection::Stats stats;
  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    TcpConfig cfg = server_cfg();
    cfg.checksum = false;
    TcpConnection conn(link, cfg);
    co_await conn.accept();
    const std::uint32_t buf = self.segment().base;
    (void)co_await conn.read_into(buf, 8192);
    stats = conn.stats();
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    TcpConfig cfg = client_cfg();
    cfg.checksum = false;
    TcpConnection conn(link, cfg);
    co_await self.sleep_for(us(500.0));
    co_await conn.connect();
    const std::uint32_t buf = self.segment().base;
    fill_pattern(*w.a, buf, 4096, 3);
    co_await conn.write_from(buf, 4096);
  });
  w.sim.run(us(3e6));
  EXPECT_EQ(stats.cksum_failures, 0u);
  EXPECT_GT(stats.segments_in, 0u);
}

}  // namespace
}  // namespace ash::proto
