// Per-tenant RX-queue occupancy quotas (net::RxQuota): drop attribution
// by reason (overflow vs tenant quota), occupancy charge/release around
// the batch lifecycle, buffer recycling on quota drops, the sojourn
// histogram, and the RxDrop trace event + QueueMetrics aggregation.
#include "net/rx_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace ash::net {
namespace {

using sim::Cycles;
using sim::KernelCpu;
using sim::MemSegment;
using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::us;

struct FakeSink final : RxSink {
  std::uint64_t frames = 0;
  std::uint64_t drops = 0;
  std::vector<std::uint32_t> recycled;  // buf_addr of each dropped frame

  void rx_batch(std::span<const RxFrame> fs, const KernelCpu&) override {
    frames += fs.size();
  }
  void rx_drop(const RxFrame& f) override {
    ++drops;
    recycled.push_back(f.buf_addr);
  }
};

/// Test-local quota: a hard per-owner occupancy cap, with every callback
/// recorded so the tests can pin the charge/release/attribute protocol.
struct FakeQuota final : RxQuota {
  std::uint32_t cap = 2;
  std::uint32_t pending = 0;       // current charged occupancy
  std::uint64_t admits = 0;        // try_admit calls that returned true
  std::uint64_t admit_calls = 0;   // all try_admit calls
  std::uint64_t dispatches = 0;
  std::uint64_t drops_overflow = 0;
  std::uint64_t drops_quota = 0;
  std::uint32_t last_drop_pid = 0;

  bool try_admit(const sim::Process* owner) override {
    ++admit_calls;
    if (owner == nullptr) return true;
    if (pending >= cap) return false;
    ++pending;
    ++admits;
    return true;
  }
  void on_dispatched(const sim::Process* owner) override {
    if (owner == nullptr) return;
    ++dispatches;
    if (pending > 0) --pending;
  }
  void on_drop(const sim::Process* owner, RxDropReason reason) override {
    if (reason == RxDropReason::Overflow) {
      ++drops_overflow;
    } else {
      ++drops_quota;
    }
    last_drop_pid = owner != nullptr ? owner->pid() : 0;
  }
};

RxFrame frame_for(FakeSink& sink, Process* owner, int channel,
                  std::uint32_t buf_addr = 0) {
  RxFrame f;
  f.sink = &sink;
  f.channel = channel;
  f.owner = owner;
  f.buf_addr = buf_addr;
  f.driver_cycles = 10;
  return f;
}

/// Park frames without dispatching: coalescing on, huge batch, long delay.
CoalesceConfig parked() {
  CoalesceConfig co;
  co.enabled = true;
  co.max_frames = 64;
  co.max_delay = us(1e6);
  return co;
}

TEST(RxQuotaUnit, QuotaDenyDropsAttributeAndRecycleBuffers) {
  Simulator sim;
  Node& n = sim.add_node("n");
  Process owner(n, /*pid=*/7, "tenant", MemSegment{0, 4096});
  FakeSink sink;
  FakeQuota quota;  // cap = 2
  RxQueue q(KernelCpu(n), 0, parked(), /*capacity=*/256, &quota);

  for (std::uint32_t i = 0; i < 4; ++i) {
    q.enqueue(frame_for(sink, &owner, 3, /*buf_addr=*/0x100 + i));
  }

  // Frames 3 and 4 were over quota: dropped at enqueue, charged to the
  // tenant, and their rx buffers handed straight back to the device.
  EXPECT_EQ(q.enqueued(), 4u);
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.dropped(), 2u);
  EXPECT_EQ(q.quota_drops(), 2u);
  EXPECT_EQ(q.overflow_drops(), 0u);
  EXPECT_EQ(quota.drops_quota, 2u);
  EXPECT_EQ(quota.drops_overflow, 0u);
  EXPECT_EQ(quota.last_drop_pid, 7u);
  EXPECT_EQ(sink.drops, 2u);
  EXPECT_EQ(sink.recycled, (std::vector<std::uint32_t>{0x102, 0x103}));
  // The dropped frames were never charged: occupancy still equals depth.
  EXPECT_EQ(quota.pending, 2u);
  EXPECT_EQ(quota.admits, 2u);
}

TEST(RxQuotaUnit, OverflowShortCircuitsBeforeTheQuota) {
  Simulator sim;
  Node& n = sim.add_node("n");
  Process owner(n, 7, "tenant", MemSegment{0, 4096});
  FakeSink sink;
  FakeQuota quota;
  quota.cap = 100;  // the quota itself never bites
  RxQueue q(KernelCpu(n), 0, parked(), /*capacity=*/2, &quota);

  for (int i = 0; i < 3; ++i) q.enqueue(frame_for(sink, &owner, 0));

  // The third frame hit queue overflow: attributed as Overflow (queue's
  // fault, not the tenant's quota) and try_admit was never consulted, so
  // no occupancy was charged for it.
  EXPECT_EQ(q.overflow_drops(), 1u);
  EXPECT_EQ(q.quota_drops(), 0u);
  EXPECT_EQ(quota.drops_overflow, 1u);
  EXPECT_EQ(quota.admit_calls, 2u);
  EXPECT_EQ(quota.pending, 2u);
}

TEST(RxQuotaUnit, DispatchReleasesOccupancyAndObservesSojourn) {
  Simulator sim;
  Node& n = sim.add_node("n");
  Process owner(n, 7, "tenant", MemSegment{0, 4096});
  FakeSink sink;
  FakeQuota quota;
  quota.cap = 8;
  CoalesceConfig co = parked();
  co.max_frames = 4;  // the 4th enqueue fires the batch
  RxQueue q(KernelCpu(n), 0, co, 256, &quota);

  sim.queue().schedule_at(us(10.0), [&] {
    for (int i = 0; i < 4; ++i) q.enqueue(frame_for(sink, &owner, 0));
  });
  sim.run();

  EXPECT_EQ(q.dispatched(), 4u);
  EXPECT_EQ(sink.frames, 4u);
  // Delivery released every charged unit back to the tenant...
  EXPECT_EQ(quota.dispatches, 4u);
  EXPECT_EQ(quota.pending, 0u);
  // ...and the sojourn histogram saw exactly the dispatched frames.
  EXPECT_EQ(q.sojourn().count(), 4u);
  // Conservation with drops broken out by reason.
  EXPECT_EQ(q.enqueued(), q.dispatched() + q.depth() + q.dropped());
  EXPECT_EQ(q.dropped(), q.overflow_drops() + q.quota_drops());

  // The tenant can immediately park frames again after the release.
  q.enqueue(frame_for(sink, &owner, 0));
  EXPECT_EQ(q.quota_drops(), 0u);
}

TEST(RxQuotaUnit, UnownedFramesBypassTheQuota) {
  Simulator sim;
  Node& n = sim.add_node("n");
  FakeSink sink;
  FakeQuota quota;
  quota.cap = 0;  // every owned frame would be denied
  RxQueue q(KernelCpu(n), 0, parked(), 256, &quota);

  q.enqueue(frame_for(sink, nullptr, 0));
  EXPECT_EQ(q.depth(), 1u);
  EXPECT_EQ(q.dropped(), 0u);
  EXPECT_EQ(quota.pending, 0u);  // kernel control traffic is never charged
}

TEST(RxQuotaUnit, RxDropEventCarriesOwnerReasonChannelAndAggregates) {
  Simulator sim;
  Node& n = sim.add_node("n");
  Process owner(n, 9, "tenant", MemSegment{0, 4096});
  FakeSink sink;
  FakeQuota quota;
  quota.cap = 1;
  trace::Session session;
  RxQueue q(KernelCpu(n), 3, parked(), /*capacity=*/1, &quota);

  q.enqueue(frame_for(sink, &owner, 5));  // admitted
  q.enqueue(frame_for(sink, &owner, 5));  // overflow (capacity 1)

  FakeQuota quota2;
  quota2.cap = 0;
  RxQueue q2(KernelCpu(n), 4, parked(), 256, &quota2);
  q2.enqueue(frame_for(sink, &owner, 6));  // tenant-quota

  const auto events = trace::global().all_events();
  std::vector<trace::Event> drops;
  for (const trace::Event& ev : events) {
    if (ev.type == trace::EventType::RxDrop) drops.push_back(ev);
  }
  ASSERT_EQ(drops.size(), 2u);
  EXPECT_EQ(drops[0].id, 3);
  EXPECT_EQ(drops[0].arg0, 9u);  // owner pid
  EXPECT_EQ(drops[0].arg1,
            static_cast<std::uint32_t>(RxDropReason::Overflow));
  EXPECT_EQ(drops[0].insns, 5u);  // channel
  EXPECT_EQ(drops[1].id, 4);
  EXPECT_EQ(drops[1].arg1,
            static_cast<std::uint32_t>(RxDropReason::TenantQuota));
  EXPECT_EQ(drops[1].insns, 6u);

  // Emit-time aggregation fills QueueMetrics by reason.
  const trace::QueueMetrics& m3 = trace::global().queue_metrics(3);
  EXPECT_EQ(m3.drops, 1u);
  EXPECT_EQ(m3.by_drop_reason[0], 1u);
  EXPECT_EQ(m3.by_drop_reason[1], 0u);
  const trace::QueueMetrics& m4 = trace::global().queue_metrics(4);
  EXPECT_EQ(m4.drops, 1u);
  EXPECT_EQ(m4.by_drop_reason[1], 1u);

  // The formatter names both reasons.
  EXPECT_STREQ(to_string(RxDropReason::Overflow), "overflow");
  EXPECT_STREQ(to_string(RxDropReason::TenantQuota), "tenant-quota");
}

}  // namespace
}  // namespace ash::net
