#include "net/ethernet.hpp"

#include <gtest/gtest.h>

#include "sim/kernel.hpp"
#include "sim/memops.hpp"
#include "sim/simulator.hpp"

namespace ash::net {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

dpf::Filter type_filter(std::uint16_t ethertype) {
  dpf::Filter f;
  f.atoms = {dpf::atom_be16(12, ethertype)};
  return f;
}

std::vector<std::uint8_t> frame(std::uint16_t ethertype,
                                std::size_t payload_len,
                                std::uint8_t fill = 0x5a) {
  std::vector<std::uint8_t> f(14 + payload_len, fill);
  f[12] = static_cast<std::uint8_t>(ethertype >> 8);
  f[13] = static_cast<std::uint8_t>(ethertype);
  for (std::size_t i = 0; i < payload_len; ++i) {
    f[14 + i] = static_cast<std::uint8_t>(i);
  }
  return f;
}

struct TwoNodes {
  Simulator sim;
  Node* a;
  Node* b;
  EthernetDevice* dev_a;
  EthernetDevice* dev_b;

  explicit TwoNodes(const EthernetConfig& cfg = {}) {
    a = &sim.add_node("a");
    b = &sim.add_node("b");
    dev_a = new EthernetDevice(*a, cfg);
    dev_b = new EthernetDevice(*b, cfg);
    dev_a->connect(*dev_b);
  }
  ~TwoNodes() {
    delete dev_a;
    delete dev_b;
  }
};

TEST(Ethernet, DemuxesToMatchingEndpointAndDestripes) {
  TwoNodes t;
  bool got = false;
  t.b->kernel().spawn("rx", [&](Process& self) -> Task {
    const int ep = t.dev_b->attach(self, type_filter(0x0800));
    t.dev_b->attach(self, type_filter(0x0806));  // decoy
    t.dev_b->supply_buffer(ep, self.segment().base, 2048);
    co_await t.dev_b->arrival_channel(ep).wait(self);
    const auto d = t.dev_b->poll(ep);
    EXPECT_TRUE(d.has_value());
    if (d.has_value() && d->len == 14u + 100u) {
      const std::uint8_t* p = t.b->mem(d->addr, d->len);
      EXPECT_EQ(p[12], 0x08);  // contiguous (destriped) frame
      EXPECT_EQ(p[13], 0x00);
      bool payload_ok = true;
      for (std::size_t i = 0; i < 100; ++i) {
        payload_ok &= p[14 + i] == static_cast<std::uint8_t>(i);
      }
      EXPECT_TRUE(payload_ok);
      got = true;
    }
  });
  t.sim.queue().schedule_at(10, [&] {
    ASSERT_TRUE(t.dev_a->send(frame(0x0800, 100)));
  });
  t.sim.run();
  EXPECT_TRUE(got);
}

TEST(Ethernet, UnmatchedFramesAreCounted) {
  TwoNodes t;
  t.b->kernel().spawn("rx", [&](Process& self) -> Task {
    const int ep = t.dev_b->attach(self, type_filter(0x0800));
    t.dev_b->supply_buffer(ep, self.segment().base, 2048);
    co_await self.sleep_for(us(10000.0));
  });
  t.sim.queue().schedule_at(10,
                            [&] { t.dev_a->send(frame(0x1234, 50)); });
  t.sim.run();
  EXPECT_EQ(t.dev_b->unmatched(), 1u);
}

TEST(Ethernet, OversizeFrameRejectedAtSend) {
  TwoNodes t;
  const std::vector<std::uint8_t> big(2000, 1);
  EXPECT_FALSE(t.dev_a->send(big));
}

TEST(Ethernet, ScarceKernelBuffersDropBursts) {
  EthernetConfig cfg;
  cfg.rx_buffers = 2;
  TwoNodes t(cfg);
  // No process consumes: endpoint exists but has no app buffers, so the
  // kernel cannot copy frames out and the pool stays exhausted... actually
  // frames without app buffers are dropped immediately, freeing the pool.
  // To hold kernel buffers, use a hook that keeps them busy is not
  // possible (hooks are synchronous); instead flood faster than the wire
  // drains: the wire itself serializes, so all frames arrive spaced out.
  // The realistic drop case is endpoint-buffer exhaustion:
  int received = 0;
  t.b->kernel().spawn("rx", [&](Process& self) -> Task {
    const int ep = t.dev_b->attach(self, type_filter(0x0800));
    t.dev_b->supply_buffer(ep, self.segment().base, 2048);  // only one
    co_await self.sleep_for(us(50000.0));
    while (t.dev_b->poll(ep).has_value()) ++received;
  });
  t.sim.queue().schedule_at(10, [&] {
    for (int i = 0; i < 4; ++i) t.dev_a->send(frame(0x0800, 100));
  });
  t.sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(t.dev_b->drops(), 3u);
}

TEST(Ethernet, MinimumFrameTimeEnforced) {
  TwoNodes t;
  // 4-byte payload -> 64-byte minimum frame + 20 framing bytes at
  // 10 Mb/s = 67.2 us on the wire.
  const auto cycles = t.dev_a->tx_wire_cycles(18);
  EXPECT_NEAR(sim::to_us(cycles), 67.2, 0.5);
  // Large frame: (1400+20)*0.8us.
  EXPECT_NEAR(sim::to_us(t.dev_a->tx_wire_cycles(1400)), 1136.0, 1.0);
}

TEST(Ethernet, KernelHookSeesStripedBufferAndCanDestripe) {
  TwoNodes t;
  bool ok = false;
  t.b->kernel().spawn("rx", [&](Process& self) -> Task {
    const int ep = t.dev_b->attach(self, type_filter(0x0800));
    const std::uint32_t dst = self.segment().base + 0x100;
    t.dev_b->set_kernel_hook(ep, [&, dst](const EthernetDevice::RxEvent& ev) {
      // The handler-directed single copy: striped kernel buffer -> app.
      const auto cycles = sim::memops::copy_destripe(
          *t.b, dst, ev.striped.addr, ev.striped.len);
      t.b->kernel_work(cycles);
      const std::uint8_t* p = t.b->mem(dst, ev.striped.len);
      ok = p[13] == 0x00 && p[14] == 0 && p[15] == 1 && p[63] == 49;
      return true;
    });
    co_await self.sleep_for(us(20000.0));
  });
  t.sim.queue().schedule_at(10, [&] { t.dev_a->send(frame(0x0800, 50)); });
  t.sim.run();
  EXPECT_TRUE(ok);
}

TEST(Ethernet, InterpretedDpfCostsMoreThanCompiled) {
  EthernetConfig slow;
  slow.compiled_dpf = false;
  EthernetConfig fast;
  fast.compiled_dpf = true;

  auto kernel_cycles_for = [&](const EthernetConfig& cfg) {
    TwoNodes t(cfg);
    t.b->kernel().spawn("rx", [&](Process& self) -> Task {
      // 32 endpoints with distinct port filters; traffic hits the last.
      int last = 0;
      for (int i = 0; i < 32; ++i) {
        dpf::Filter f;
        f.atoms = {dpf::atom_be16(12, 0x0800),
                   dpf::atom_be16(14, static_cast<std::uint16_t>(i))};
        last = t.dev_b->attach(self, f);
      }
      t.dev_b->supply_buffer(last, self.segment().base, 2048);
      co_await self.sleep_for(us(30000.0));
    });
    t.sim.queue().schedule_at(10, [&] {
      auto f = frame(0x0800, 100);
      f[14] = 0;
      f[15] = 31;  // port 31 -> last endpoint
      t.dev_a->send(f);
    });
    t.sim.run();
    return t.b->kernel_cycles_total();
  };

  const auto interp = kernel_cycles_for(slow);
  const auto compiled = kernel_cycles_for(fast);
  EXPECT_GT(interp, compiled + sim::us(20.0));
}

TEST(Ethernet, StripeDestripeMemopsRoundTrip) {
  Simulator sim;
  Node& node = sim.add_node("n");
  const std::uint32_t src = 0x100000, striped = 0x110000, dst = 0x120000;
  std::uint8_t* s = node.mem(src, 100);
  for (int i = 0; i < 100; ++i) s[i] = static_cast<std::uint8_t>(i * 7);
  sim::memops::copy_stripe(node, striped, src, 100);
  // Pad regions interleave the data.
  EXPECT_EQ(node.mem(striped, 1)[0], s[0]);
  EXPECT_EQ(node.mem(striped + 32, 1)[0], s[16]);
  sim::memops::copy_destripe(node, dst, striped, 100);
  const std::uint8_t* d = node.mem(dst, 100);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(d[i], s[i]) << i;
}

}  // namespace
}  // namespace ash::net
