// Unit tests for the ashtrace core: histogram bucket math, ring-buffer
// retention in both full-ring modes, per-event aggregation, the
// thread-local emission context, and the four formatter surfaces.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <string>

#include "trace/format.hpp"
#include "trace/metrics.hpp"

namespace ash::trace {
namespace {

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~0ull), 64u);
  EXPECT_EQ(Histogram::bucket_hi(0), 0u);
  EXPECT_EQ(Histogram::bucket_hi(1), 1u);
  EXPECT_EQ(Histogram::bucket_hi(2), 3u);
  EXPECT_EQ(Histogram::bucket_hi(11), 2047u);
  EXPECT_EQ(Histogram::bucket_hi(64), ~0ull);
}

TEST(Histogram, ObserveAndSummarize) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50.0), 0u);

  h.observe(0);
  h.observe(5);
  h.observe(100);
  h.observe(100);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 205u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 205.0 / 4.0);
  EXPECT_EQ(h.bucket(0), 1u);                      // the zero
  EXPECT_EQ(h.bucket(Histogram::bucket_of(5)), 1u);
  EXPECT_EQ(h.bucket(Histogram::bucket_of(100)), 2u);
}

TEST(Histogram, PercentileIsBucketResolutionAndDeterministic) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.observe(10);   // bucket 4, hi 15
  for (int i = 0; i < 100; ++i) h.observe(100);  // bucket 7, hi 127
  EXPECT_EQ(h.percentile(0.0), 15u);
  EXPECT_EQ(h.percentile(25.0), 15u);
  EXPECT_EQ(h.percentile(50.0), 15u);
  EXPECT_EQ(h.percentile(51.0), 127u);
  EXPECT_EQ(h.percentile(99.0), 127u);
  EXPECT_EQ(h.percentile(100.0), 127u);
  EXPECT_EQ(h.percentile(-3.0), h.percentile(0.0));   // clamped
  EXPECT_EQ(h.percentile(400.0), h.percentile(100.0));
}

TEST(Tracer, DisabledGateIsClosedByDefault) {
  EXPECT_FALSE(enabled());
}

TEST(Tracer, SessionOpensAndClosesTheGate) {
  {
    Session session;
    EXPECT_TRUE(enabled());
  }
  EXPECT_FALSE(enabled());
}

TEST(Tracer, EmitRetainsAndOrdersEvents) {
  TracerConfig cfg;
  cfg.ring_capacity = 16;
  cfg.max_cpus = 2;
  Session session(cfg);
  Tracer& t = global();
  EXPECT_EQ(t.cpus(), 2u);

  t.emit(make_event(EventType::AshDispatch, 0, 100, 7, 64, 3));
  t.emit(make_event(EventType::AshDispatch, 1, 50, 7, 32, 4));
  t.emit(make_event(EventType::AshOutcome, 0, 110, 7, 0, 1, 250, 12));

  EXPECT_EQ(t.emitted(0), 2u);
  EXPECT_EQ(t.emitted(1), 1u);
  EXPECT_EQ(t.dropped(0), 0u);

  const auto cpu0 = t.events(0);
  ASSERT_EQ(cpu0.size(), 2u);
  EXPECT_EQ(cpu0[0].seq, 0u);
  EXPECT_EQ(cpu0[1].seq, 1u);
  EXPECT_EQ(cpu0[0].arg0, 64u);
  EXPECT_EQ(cpu0[1].cycles, 250u);

  // all_events merges by (time, cpu, seq): the cpu1 event at t=50 first.
  const auto all = t.all_events();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].cpu, 1u);
  EXPECT_EQ(all[0].time, 50u);
  EXPECT_EQ(all[1].time, 100u);
  EXPECT_EQ(all[2].time, 110u);

  // Reading an out-of-range cpu is safe and empty.
  EXPECT_TRUE(t.events(9).empty());
  EXPECT_EQ(t.emitted(9), 0u);
  EXPECT_EQ(t.dropped(9), 0u);
}

TEST(Tracer, OverwriteModeKeepsNewestWindow) {
  TracerConfig cfg;
  cfg.ring_capacity = 4;
  cfg.max_cpus = 1;
  cfg.overwrite = true;
  Session session(cfg);
  Tracer& t = global();
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.emit(make_event(EventType::AshDispatch, 0, i, 0));
  }
  EXPECT_EQ(t.emitted(0), 10u);
  EXPECT_EQ(t.dropped(0), 6u);
  const auto ev = t.events(0);
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev.front().seq, 6u);  // oldest retained
  EXPECT_EQ(ev.back().seq, 9u);   // newest
  EXPECT_EQ(t.emitted(0), ev.size() + t.dropped(0));
}

TEST(Tracer, DropNewestModeFreezesOldestWindow) {
  TracerConfig cfg;
  cfg.ring_capacity = 4;
  cfg.max_cpus = 1;
  cfg.overwrite = false;
  Session session(cfg);
  Tracer& t = global();
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.emit(make_event(EventType::AshDispatch, 0, i, 0));
  }
  EXPECT_EQ(t.emitted(0), 10u);
  EXPECT_EQ(t.dropped(0), 6u);
  const auto ev = t.events(0);
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev.front().seq, 0u);
  EXPECT_EQ(ev.back().seq, 3u);
  EXPECT_EQ(t.emitted(0), ev.size() + t.dropped(0));
  // Aggregation still saw every emitted event.
  EXPECT_EQ(t.type_count(EventType::AshDispatch), 10u);
}

TEST(Tracer, CpuClampAndRingCapacityRounding) {
  TracerConfig cfg;
  cfg.ring_capacity = 5;  // rounds up to 8
  cfg.max_cpus = 2;
  Session session(cfg);
  Tracer& t = global();
  EXPECT_EQ(t.config().ring_capacity, 8u);
  t.emit(make_event(EventType::AshDispatch, 7, 1, 0));  // cpu 7 >= max 2
  EXPECT_EQ(t.clamped_cpus(), 1u);
  EXPECT_EQ(t.emitted(1), 1u);  // clamped into the last ring
  EXPECT_EQ(t.events(1)[0].cpu, 1u);
}

TEST(Tracer, OverflowSlotsCatchOutOfRangeIds) {
  TracerConfig cfg;
  cfg.max_ash_ids = 2;
  cfg.max_channels = 2;
  Session session(cfg);
  Tracer& t = global();
  t.emit(make_event(EventType::AshDispatch, 0, 1, 0));
  t.emit(make_event(EventType::AshDispatch, 0, 2, 99));   // overflow
  t.emit(make_event(EventType::AshDispatch, 0, 3, -5));   // negative
  t.emit(make_event(EventType::FrameArrival, 0, 4, 77, 10));
  EXPECT_EQ(t.ash_metrics(0).dispatches, 1u);
  EXPECT_EQ(t.ash_metrics(99).dispatches, 2u);   // shared overflow slot
  EXPECT_EQ(t.ash_metrics(-5).dispatches, 2u);
  EXPECT_EQ(t.max_ash_slot(), 2);                // the overflow index
  EXPECT_EQ(t.channel_metrics(77).frames, 1u);
  EXPECT_EQ(t.channel_metrics(77).bytes, 10u);
  EXPECT_EQ(t.max_channel_slot(), 2);
}

TEST(Tracer, AggregatesEveryEventClass) {
  Session session;
  Tracer& t = global();
  t.emit(make_event(EventType::FrameArrival, 0, 1, 3, 64, 0));
  t.emit(make_event(EventType::DemuxDecision, 0, 2, 3, 5, 1, 120));
  t.emit(make_event(EventType::AshDispatch, 0, 3, 1, 64, 3));
  {
    Event ev = make_event(EventType::VcodeExec, 0, 4, 1, 0, 0, 200, 40);
    ev.engine = Engine::CodeCache;
    t.emit(ev);
  }
  t.emit(make_event(EventType::AshOutcome, 0, 5, 1, 0, 1, 320, 40));
  t.emit(make_event(EventType::DilpRun, 0, 6, 1, 256, 2, 900));
  t.emit(make_event(EventType::TSendInitiated, 0, 7, 1, 16, 3, 160));
  t.emit(make_event(EventType::TUserCopy, 0, 8, 1, 32, 0, 50));
  t.emit(make_event(EventType::UpcallFallback, 0, 9, 3, 0));
  t.emit(make_event(EventType::AshDenied, 0, 10, 1,
                    static_cast<std::uint32_t>(DenyReason::LivelockQuota)));
  t.emit(make_event(EventType::SupervisorAction, 0, 11, 1,
                    static_cast<std::uint32_t>(SupAction::Quarantine)));
  t.emit(make_event(EventType::SupervisorAction, 0, 12, 1,
                    static_cast<std::uint32_t>(SupAction::Revoke)));

  const ChannelMetrics& c = t.channel_metrics(3);
  EXPECT_EQ(c.frames, 1u);
  EXPECT_EQ(c.bytes, 64u);
  EXPECT_EQ(c.demux_decisions, 1u);
  EXPECT_EQ(c.demux_cycles, 120u);
  EXPECT_EQ(c.fallbacks, 1u);

  const AshMetrics& m = t.ash_metrics(1);
  EXPECT_EQ(m.dispatches, 1u);
  EXPECT_EQ(m.outcomes, 1u);
  EXPECT_EQ(m.consumed, 1u);
  EXPECT_EQ(m.by_outcome[0], 1u);
  EXPECT_EQ(m.latency.sum(), 320u);
  EXPECT_EQ(m.cycles, 320u);
  EXPECT_EQ(m.insns, 40u);
  EXPECT_EQ(m.dilp_runs, 1u);
  EXPECT_EQ(m.sends, 1u);
  EXPECT_EQ(m.usercopies, 1u);
  EXPECT_EQ(m.bytes_vectored, 256u + 16u + 32u);
  EXPECT_EQ(m.vector_bytes.count(), 3u);
  EXPECT_EQ(m.denials, 1u);
  EXPECT_EQ(m.denial_reasons[static_cast<std::size_t>(
                DenyReason::LivelockQuota)], 1u);
  EXPECT_EQ(m.supervisor_quarantines, 1u);
  EXPECT_EQ(m.supervisor_revokes, 1u);
  // VcodeExec with a bound handler id feeds the exec distribution; the
  // DilpRun rode along too.
  EXPECT_EQ(m.exec_cycles.count(), 2u);

  const EngineMetrics& e = t.engine_metrics(Engine::CodeCache);
  EXPECT_EQ(e.runs, 1u);
  EXPECT_EQ(e.insns, 40u);
  EXPECT_EQ(e.cycles, 200u);
  EXPECT_EQ(t.engine_metrics(Engine::Interp).runs, 0u);

  EXPECT_EQ(t.type_count(EventType::SupervisorAction), 2u);
}

TEST(Tracer, ClearResetsEverythingButKeepsConfigAndGate) {
  TracerConfig cfg;
  cfg.ring_capacity = 8;
  Session session(cfg);
  Tracer& t = global();
  t.emit(make_event(EventType::AshDispatch, 0, 1, 0));
  t.clear();
  EXPECT_TRUE(enabled());
  EXPECT_EQ(t.config().ring_capacity, 8u);
  EXPECT_EQ(t.emitted(0), 0u);
  EXPECT_EQ(t.type_count(EventType::AshDispatch), 0u);
  EXPECT_EQ(t.max_ash_slot(), -1);
  EXPECT_TRUE(t.all_events().empty());
}

TEST(Tracer, EmitCtxUsesScopedContext) {
  Session session;
  Tracer& t = global();
  {
    ScopedContext outer(1, 500, 9);
    global().emit_ctx(EventType::VcodeExec, Engine::Interp, 0, 0, 10, 2);
    {
      ScopedContext inner(1, 600, 4);
      global().emit_ctx(EventType::DilpRun, Engine::None, 128, 1, 300, 0);
    }
    // Inner scope restored: attribution returns to handler 9.
    global().emit_ctx(EventType::TSendInitiated, Engine::None, 8, 0, 40, 0);
  }
  const auto ev = t.events(1);
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_EQ(ev[0].id, 9);
  EXPECT_EQ(ev[0].time, 500u);
  EXPECT_EQ(ev[1].id, 4);
  EXPECT_EQ(ev[1].time, 600u);
  EXPECT_EQ(ev[2].id, 9);
  EXPECT_EQ(context().id, -1);  // default restored outside all scopes
}

TEST(TraceFormat, EnumNames) {
  EXPECT_STREQ(to_string(EventType::FrameArrival), "FrameArrival");
  EXPECT_STREQ(to_string(EventType::SupervisorAction), "SupervisorAction");
  EXPECT_STREQ(to_string(Engine::None), "-");
  EXPECT_STREQ(to_string(Engine::Interp), "interp");
  EXPECT_STREQ(to_string(Engine::CodeCache), "codecache");
  EXPECT_STREQ(to_string(DenyReason::Quarantined), "quarantined");
  EXPECT_STREQ(to_string(DenyReason::BadId), "bad-id");
  EXPECT_STREQ(to_string(SupAction::Revoke), "revoke");
}

/// Shared fixture traffic for the formatter tests: one frame through the
/// whole taxonomy on cpu 0.
void emit_sample_traffic() {
  Tracer& t = global();
  t.emit(make_event(EventType::FrameArrival, 0, 100, 2, 64, 0));
  t.emit(make_event(EventType::DemuxDecision, 0, 110, 2, 4, 1, 80));
  t.emit(make_event(EventType::AshDispatch, 0, 120, 0, 64, 2));
  {
    Event ev = make_event(EventType::VcodeExec, 0, 130, 0, 1, 0, 150, 30);
    ev.engine = Engine::Interp;
    t.emit(ev);
  }
  t.emit(make_event(EventType::TSendInitiated, 0, 140, 0, 16, 2, 160));
  t.emit(make_event(EventType::TUserCopy, 0, 145, 0, 32, 0, 50));
  t.emit(make_event(EventType::DilpRun, 0, 150, 0, 128, 1, 700));
  t.emit(make_event(EventType::AshOutcome, 0, 160, 0, 0, 1, 400, 30));
  t.emit(make_event(EventType::AshDenied, 0, 170, 0,
                    static_cast<std::uint32_t>(DenyReason::Revoked)));
  t.emit(make_event(EventType::UpcallFallback, 0, 180, 2, 1));
  t.emit(make_event(EventType::SupervisorAction, 0, 190, 0,
                    static_cast<std::uint32_t>(SupAction::Quarantine)));
}

TEST(TraceFormat, TextTraceRendersEveryEventClass) {
  Session session;
  emit_sample_traffic();
  const std::string out = format_trace(global());
  EXPECT_NE(out.find("11 event(s) retained"), std::string::npos);
  EXPECT_NE(out.find("FrameArrival"), std::string::npos);
  EXPECT_NE(out.find("nic=an2"), std::string::npos);
  EXPECT_NE(out.find("nic=eth"), std::string::npos);
  EXPECT_NE(out.find("visited=4"), std::string::npos);
  EXPECT_NE(out.find("[interp]"), std::string::npos);
  EXPECT_NE(out.find("reason=revoked"), std::string::npos);
  EXPECT_NE(out.find("action=quarantine"), std::string::npos);
  EXPECT_NE(out.find("consumed=1"), std::string::npos);
  // Every cycle-valued field carries the `cyc` marker golden tests key on.
  EXPECT_NE(out.find("total=400 cyc"), std::string::npos);
  EXPECT_NE(out.find("t=100 cyc"), std::string::npos);
}

TEST(TraceFormat, MaxEventsTruncates) {
  Session session;
  emit_sample_traffic();
  FormatOptions opts;
  opts.max_events = 3;
  const std::string out = format_trace(global(), opts);
  EXPECT_NE(out.find("... 8 more event(s) not shown"), std::string::npos);
  const std::string json = trace_json(global(), opts);
  // 3 events = 3 "type" keys in the JSON array.
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"type\""); pos != std::string::npos;
       pos = json.find("\"type\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(TraceFormat, MetricsTablesAndJson) {
  Session session;
  emit_sample_traffic();
  const std::string text = format_metrics(global());
  EXPECT_NE(text.find("== engines =="), std::string::npos);
  EXPECT_NE(text.find("interp"), std::string::npos);
  EXPECT_NE(text.find("ash 0:"), std::string::npos);
  EXPECT_NE(text.find("denials: quarantined=0 revoked=1"),
            std::string::npos);
  EXPECT_NE(text.find("ch 2:"), std::string::npos);
  EXPECT_NE(text.find("fallbacks=1"), std::string::npos);

  const std::string json = metrics_json(global());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"handlers\":["), std::string::npos);
  EXPECT_NE(json.find("\"channels\":["), std::string::npos);
  EXPECT_NE(json.find("\"cycles_cyc\""), std::string::npos);
  EXPECT_NE(json.find("\"dispatches\":1"), std::string::npos);
}

TEST(TraceFormat, OutcomeNamerChangesRendering) {
  Session session;
  emit_sample_traffic();
  set_outcome_namer(nullptr);
  const std::string numeric = format_trace(global());
  EXPECT_NE(numeric.find("outcome=0"), std::string::npos);
  set_outcome_namer(
      +[](std::uint32_t code) {
        return code == 0 ? "halted" : "other";
      });
  EXPECT_NE(outcome_namer(), nullptr);
  const std::string named = format_trace(global());
  EXPECT_NE(named.find("outcome=halted"), std::string::npos);
  set_outcome_namer(nullptr);
}

TEST(TraceFormat, ChromeTraceShape) {
  Session session;
  emit_sample_traffic();
  const std::string out = chrome_trace_json(global());
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
  // Executions become duration slices, arrivals instants.
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(out.find("VcodeExec(interp)"), std::string::npos);
  // Per-cpu thread-name metadata rows.
  EXPECT_NE(out.find("\"name\":\"cpu0\""), std::string::npos);
  // 400 cycles at 40 MHz = 10 us duration.
  EXPECT_NE(out.find("\"dur\":10.000"), std::string::npos);
}

TEST(TraceFormat, EmptyTracerRendersCleanly) {
  Session session;
  EXPECT_NE(format_trace(global()).find("0 event(s) retained"),
            std::string::npos);
  EXPECT_NE(format_metrics(global()).find("== engines =="),
            std::string::npos);
  EXPECT_EQ(trace_json(global()), "[]");
  const std::string mj = metrics_json(global());
  EXPECT_NE(mj.find("\"handlers\":[]"), std::string::npos);
}

}  // namespace
}  // namespace ash::trace
