// TCP fast path over Ethernet: the same handler body (message access via
// trusted calls) consuming striped kernel-buffer frames, replying with
// Ethernet-framed ACKs built from the template — all in the interrupt
// path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "ashlib/tcp_fastpath.hpp"
#include "proto/eth_link.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace ash::ashlib {
namespace {

using proto::EthLink;
using proto::Ipv4Addr;
using proto::MacAddr;
using proto::TcpConfig;
using proto::TcpConnection;
using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

const Ipv4Addr kIpA = Ipv4Addr::of(192, 168, 0, 1);
const Ipv4Addr kIpB = Ipv4Addr::of(192, 168, 0, 2);
const MacAddr kMacA{{{2, 0, 0, 0, 0, 1}}};
const MacAddr kMacB{{{2, 0, 0, 0, 0, 2}}};

TcpConfig cfg_for(bool client) {
  TcpConfig c;
  c.local_ip = client ? kIpA : kIpB;
  c.remote_ip = client ? kIpB : kIpA;
  c.local_port = client ? 4000 : 5000;
  c.remote_port = client ? 5000 : 4000;
  c.iss = client ? 100 : 900;
  c.mss = 1456;
  return c;
}

struct Result {
  bool data_ok = false;
  std::uint32_t commits = 0;
  std::uint32_t fallbacks = 0;
};

Result run_transfer(bool sandboxed, std::uint32_t total, bool checksum) {
  Simulator sim;
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  net::EthernetDevice da(a), db(b);
  da.connect(db);
  core::AshSystem ash_b(b);
  Result res;

  b.kernel().spawn("server", [&](Process& self) -> Task {
    EthLink::Config lc{kMacB, kMacA};
    lc.rx_buffers = 24;
    EthLink link(self, db, lc);
    TcpConfig cfg = cfg_for(false);
    cfg.checksum = checksum;
    TcpConnection conn(link, cfg);
    core::AshOptions opts;
    opts.sandboxed = sandboxed;
    std::string error;
    const auto fp = install_tcp_fastpath_eth(ash_b, db, link.endpoint(),
                                             conn, kMacB, kMacA, opts,
                                             &error);
    EXPECT_TRUE(fp.has_value()) << error;
    const bool accepted = co_await conn.accept();
    EXPECT_TRUE(accepted);
    const std::uint32_t buf = self.segment().base;
    std::uint32_t got = 0;
    while (got < total) {
      const std::uint32_t n = co_await conn.read_into(buf + got, total - got);
      if (n == 0) break;
      got += n;
    }
    util::Rng check(99);
    bool ok = got == total;
    const std::uint8_t* p = self.node().mem(buf, total);
    for (std::uint32_t i = 0; i < got && ok; ++i) {
      ok = p[i] == static_cast<std::uint8_t>(check.next());
    }
    res.data_ok = ok;
    res.commits = conn.shm().get(proto::tcb::kAshCommits);
    res.fallbacks = conn.shm().get(proto::tcb::kAshFallbacks);
  });

  a.kernel().spawn("client", [&](Process& self) -> Task {
    EthLink link(self, da, {kMacA, kMacB});
    TcpConfig cfg = cfg_for(true);
    cfg.checksum = checksum;
    TcpConnection conn(link, cfg);
    co_await self.sleep_for(us(500.0));
    const bool connected = co_await conn.connect();
    EXPECT_TRUE(connected);
    const std::uint32_t buf = self.segment().base;
    util::Rng fill(99);
    std::uint8_t* p = self.node().mem(buf, total);
    for (std::uint32_t i = 0; i < total; ++i) {
      p[i] = static_cast<std::uint8_t>(fill.next());
    }
    for (std::uint32_t off = 0; off < total; off += 8192) {
      const bool wrote =
          co_await conn.write_from(buf + off, std::min(8192u, total - off));
      EXPECT_TRUE(wrote);
    }
  });

  sim.run(us(3e7));
  return res;
}

TEST(EthFastPath, SandboxedAshCarriesTransferOverStripedBuffers) {
  const Result r = run_transfer(true, 48 * 1024, true);
  EXPECT_TRUE(r.data_ok);
  // 48 KB at MSS 1456 (word-trimmed segments) = 30+ data segments, nearly
  // all consumed by the handler.
  EXPECT_GT(r.commits, 25u);
  EXPECT_LT(r.fallbacks, 12u);
}

TEST(EthFastPath, UnsafeAshMatches) {
  const Result r = run_transfer(false, 24 * 1024, true);
  EXPECT_TRUE(r.data_ok);
  EXPECT_GT(r.commits, 12u);
}

TEST(EthFastPath, WorksWithoutChecksums) {
  const Result r = run_transfer(true, 24 * 1024, false);
  EXPECT_TRUE(r.data_ok);
  EXPECT_GT(r.commits, 12u);
}

TEST(EthFastPath, PingPongWithHandlersOnBothSides) {
  Simulator sim;
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  net::EthernetDevice da(a), db(b);
  da.connect(db);
  core::AshSystem ash_a(a), ash_b(b);
  int echoes = 0;

  b.kernel().spawn("server", [&](Process& self) -> Task {
    EthLink link(self, db, {kMacB, kMacA});
    TcpConnection conn(link, cfg_for(false));
    std::string error;
    const auto fp = install_tcp_fastpath_eth(
        ash_b, db, link.endpoint(), conn, kMacB, kMacA, {}, &error);
    EXPECT_TRUE(fp.has_value()) << error;
    const bool accepted = co_await conn.accept();
    EXPECT_TRUE(accepted);
    const std::uint32_t buf = self.segment().base;
    for (int i = 0; i < 4; ++i) {
      const std::uint32_t n = co_await conn.read_into(buf, 64);
      EXPECT_EQ(n, 4u);
      const bool wrote = co_await conn.write_from(buf, n);
      EXPECT_TRUE(wrote);
    }
  });
  a.kernel().spawn("client", [&](Process& self) -> Task {
    EthLink link(self, da, {kMacA, kMacB});
    TcpConnection conn(link, cfg_for(true));
    std::string error;
    const auto fp = install_tcp_fastpath_eth(
        ash_a, da, link.endpoint(), conn, kMacA, kMacB, {}, &error);
    EXPECT_TRUE(fp.has_value()) << error;
    co_await self.sleep_for(us(500.0));
    const bool connected = co_await conn.connect();
    EXPECT_TRUE(connected);
    const std::uint32_t buf = self.segment().base;
    for (int i = 0; i < 4; ++i) {
      std::uint8_t* p = self.node().mem(buf, 4);
      p[0] = static_cast<std::uint8_t>(0x60 + i);
      p[1] = p[2] = p[3] = 2;
      const bool wrote = co_await conn.write_from(buf, 4);
      EXPECT_TRUE(wrote);
      const std::uint32_t n = co_await conn.read_into(buf + 32, 64);
      EXPECT_EQ(n, 4u);
      if (self.node().mem(buf + 32, 1)[0] == 0x60 + i) ++echoes;
    }
  });
  sim.run(us(3e7));
  EXPECT_EQ(echoes, 4);
}

}  // namespace
}  // namespace ash::ashlib
