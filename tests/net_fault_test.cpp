// FaultInjector unit tests plus device-level checks that both NIC models
// honour the shared fault surface (the old per-device knobs could not:
// AN2 skipped duplication on the switched path and Ethernet had no
// duplication at all).
#include "net/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/an2.hpp"
#include "net/an2_switch.hpp"
#include "net/ethernet.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"

namespace ash::net {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

std::vector<std::uint8_t> test_frame(std::size_t len, std::uint8_t tag) {
  std::vector<std::uint8_t> f(len, tag);
  for (std::size_t i = 0; i < len; ++i) {
    f[i] = static_cast<std::uint8_t>(tag + i);
  }
  return f;
}

TEST(FaultInjectorUnit, AllZeroProbabilitiesAreInert) {
  FaultConfig cfg;  // defaults: perfect link
  EXPECT_FALSE(cfg.enabled());
  FaultInjector fi(cfg);
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> f = test_frame(64, 7);
    const std::vector<std::uint8_t> orig = f;
    const FaultInjector::Decision d = fi.inject(f);
    EXPECT_FALSE(d.drop);
    EXPECT_FALSE(d.duplicate);
    EXPECT_EQ(d.extra_delay, 0u);
    EXPECT_EQ(f, orig);
  }
  const FaultCounters& c = fi.counters();
  EXPECT_EQ(c.drops + c.dups + c.reorders + c.corrupts + c.truncates +
                c.jitters,
            0u);
}

TEST(FaultInjectorUnit, SameSeedReplaysTheSameSchedule) {
  FaultConfig cfg;
  cfg.drop_prob = 0.2;
  cfg.dup_prob = 0.2;
  cfg.reorder_prob = 0.2;
  cfg.corrupt_prob = 0.2;
  cfg.truncate_prob = 0.2;
  cfg.jitter_prob = 0.2;
  cfg.seed = 42;
  FaultInjector a(cfg);
  FaultInjector b(cfg);
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint8_t> fa = test_frame(128, 3);
    std::vector<std::uint8_t> fb = fa;
    const FaultInjector::Decision da = a.inject(fa);
    const FaultInjector::Decision db = b.inject(fb);
    ASSERT_EQ(da.drop, db.drop);
    ASSERT_EQ(da.duplicate, db.duplicate);
    ASSERT_EQ(da.extra_delay, db.extra_delay);
    ASSERT_EQ(fa, fb);  // identical mutations, byte for byte
  }
}

TEST(FaultInjectorUnit, FaultClassSchedulesAreIndependent) {
  // Which frames get dropped must not change when other classes are
  // toggled on — each class draws from its own (seed, frame, class)
  // stream. This keeps loss sweeps comparable across fault mixes.
  FaultConfig drop_only;
  drop_only.drop_prob = 0.3;
  drop_only.seed = 99;
  FaultConfig mixed = drop_only;
  mixed.dup_prob = 0.5;
  mixed.corrupt_prob = 0.9;
  mixed.truncate_prob = 0.4;
  mixed.jitter_prob = 0.7;

  FaultInjector a(drop_only);
  FaultInjector b(mixed);
  std::vector<bool> drops_a, drops_b;
  for (int i = 0; i < 400; ++i) {
    std::vector<std::uint8_t> fa = test_frame(64, 1);
    std::vector<std::uint8_t> fb = fa;
    drops_a.push_back(a.inject(fa).drop);
    drops_b.push_back(b.inject(fb).drop);
  }
  EXPECT_EQ(drops_a, drops_b);
  EXPECT_EQ(a.counters().drops, b.counters().drops);
}

TEST(FaultInjectorUnit, CountersTrackEachClass) {
  FaultConfig cfg;
  cfg.corrupt_prob = 1.0;
  cfg.truncate_prob = 1.0;
  cfg.dup_prob = 1.0;
  cfg.reorder_prob = 1.0;
  cfg.jitter_prob = 1.0;
  FaultInjector fi(cfg);
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> f = test_frame(64, 5);
    const std::vector<std::uint8_t> orig = f;
    const FaultInjector::Decision d = fi.inject(f);
    EXPECT_TRUE(d.duplicate);
    EXPECT_GE(d.extra_delay, cfg.reorder_delay);
    EXPECT_LT(f.size(), orig.size());  // truncated
    EXPECT_FALSE(std::equal(f.begin(), f.end(), orig.begin()));  // corrupted
  }
  const FaultCounters& c = fi.counters();
  EXPECT_EQ(c.frames, 50u);
  EXPECT_EQ(c.corrupts, 50u);
  EXPECT_EQ(c.truncates, 50u);
  EXPECT_EQ(c.dups, 50u);
  EXPECT_EQ(c.reorders, 50u);
  EXPECT_EQ(c.jitters, 50u);
  EXPECT_EQ(c.drops, 0u);
}

TEST(FaultInjectorUnit, TruncateKeepsAtLeastOneByte) {
  FaultConfig cfg;
  cfg.truncate_prob = 1.0;
  cfg.seed = 7;
  FaultInjector fi(cfg);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> f = test_frame(2 + (i % 64), 9);
    fi.inject(f);
    EXPECT_GE(f.size(), 1u);
  }
}

// ---- An2 device level ----

struct An2Pair {
  Simulator sim;
  Node* a;
  Node* b;
  An2Device* dev_a;
  An2Device* dev_b;

  explicit An2Pair(const An2Config& cfg = {}) {
    a = &sim.add_node("a");
    b = &sim.add_node("b");
    dev_a = new An2Device(*a, cfg);
    dev_b = new An2Device(*b, cfg);
    dev_a->connect(*dev_b);
  }
  ~An2Pair() {
    delete dev_a;
    delete dev_b;
  }
};

TEST(FaultDevice, An2DropsEverythingAtProbOne) {
  An2Config cfg;
  cfg.faults.drop_prob = 1.0;
  An2Pair t(cfg);
  int received = 0;
  t.b->kernel().spawn("rx", [&](Process& self) -> Task {
    const int vc = t.dev_b->bind_vc(self);
    t.dev_b->supply_buffer(vc, self.segment().base, 256);
    co_await self.sleep_for(us(5000.0));
    while (t.dev_b->poll(vc).has_value()) ++received;
  });
  t.sim.queue().schedule_at(10, [&] {
    const std::uint8_t m[] = {1, 2, 3, 4};
    for (int i = 0; i < 8; ++i) t.dev_a->send(0, m);
  });
  t.sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(t.dev_a->fault_counters().drops, 8u);
  EXPECT_EQ(t.dev_a->fault_counters().frames, 8u);
}

TEST(FaultDevice, An2DuplicatesOnPointToPointLink) {
  An2Config cfg;
  cfg.faults.dup_prob = 1.0;
  An2Pair t(cfg);
  int received = 0;
  t.b->kernel().spawn("rx", [&](Process& self) -> Task {
    const int vc = t.dev_b->bind_vc(self);
    t.dev_b->supply_buffer(vc, self.segment().base, 256);
    t.dev_b->supply_buffer(vc, self.segment().base + 256, 256);
    t.dev_b->supply_buffer(vc, self.segment().base + 512, 256);
    co_await self.sleep_for(us(5000.0));
    while (t.dev_b->poll(vc).has_value()) ++received;
  });
  t.sim.queue().schedule_at(10, [&] {
    const std::uint8_t m[] = {1, 2, 3, 4};
    t.dev_a->send(0, m);
  });
  t.sim.run();
  EXPECT_EQ(received, 2);  // original + duplicate
  EXPECT_EQ(t.dev_a->fault_counters().dups, 1u);
}

TEST(FaultDevice, An2DuplicatesOnSwitchedPathToo) {
  // Regression: duplication used to be scheduled only on the
  // point-to-point branch of An2Device::send — a switched topology
  // silently ignored dup_prob.
  An2Config faulty;
  faulty.faults.dup_prob = 1.0;
  Simulator sim;
  Node& n1 = sim.add_node("n1");
  Node& hub = sim.add_node("hub");
  An2Device d1(n1, faulty);
  An2Device dh(hub);
  An2Switch sw(sim);
  const int p1 = sw.attach(d1);
  const int ph = sw.attach(dh);
  sw.add_duplex(p1, 0, ph, 0);

  int received = 0;
  hub.kernel().spawn("rx", [&](Process& self) -> Task {
    const int vc = dh.bind_vc(self);
    dh.supply_buffer(vc, self.segment().base, 64);
    dh.supply_buffer(vc, self.segment().base + 64, 64);
    dh.supply_buffer(vc, self.segment().base + 128, 64);
    co_await self.sleep_for(us(5000.0));
    while (dh.poll(vc).has_value()) ++received;
  });
  sim.queue().schedule_at(10, [&] {
    const std::uint8_t m[] = {0xaa, 0xbb};
    ASSERT_TRUE(d1.send(0, m));
  });
  sim.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(d1.fault_counters().dups, 1u);
}

TEST(FaultDevice, An2TruncatesAndCorruptsFramesInFlight) {
  An2Config cfg;
  cfg.faults.truncate_prob = 1.0;
  cfg.faults.seed = 5;
  An2Pair t(cfg);
  std::uint32_t got_len = 0;
  t.b->kernel().spawn("rx", [&](Process& self) -> Task {
    const int vc = t.dev_b->bind_vc(self);
    t.dev_b->supply_buffer(vc, self.segment().base, 256);
    co_await t.dev_b->arrival_channel(vc).wait(self);
    const auto d = t.dev_b->poll(vc);
    EXPECT_TRUE(d.has_value());
    if (d.has_value()) got_len = d->len;
  });
  t.sim.queue().schedule_at(10, [&] {
    const std::vector<std::uint8_t> m(100, 0x11);
    t.dev_a->send(0, m);
  });
  t.sim.run();
  EXPECT_GE(got_len, 1u);
  EXPECT_LT(got_len, 100u);
  EXPECT_EQ(t.dev_a->fault_counters().truncates, 1u);
}

TEST(FaultDevice, An2ReordersFramesAcrossEachOther) {
  // Find a seed where frame 0 is held back and frame 1 is not; the
  // reorder delay (120 us) dwarfs their serialization gap, so frame 1
  // must overtake frame 0 on the wire.
  FaultConfig fc;
  fc.reorder_prob = 0.5;
  std::uint64_t seed = 0;
  for (std::uint64_t s = 1; s < 1000 && seed == 0; ++s) {
    fc.seed = s;
    FaultInjector probe(fc);
    std::vector<std::uint8_t> f0{1}, f1{2};
    const bool r0 = probe.inject(f0).extra_delay > 0;
    const bool r1 = probe.inject(f1).extra_delay > 0;
    if (r0 && !r1) seed = s;
  }
  ASSERT_NE(seed, 0u);

  An2Config cfg;
  cfg.faults.reorder_prob = 0.5;
  cfg.faults.seed = seed;
  An2Pair t(cfg);
  std::vector<std::uint8_t> order;
  t.b->kernel().spawn("rx", [&](Process& self) -> Task {
    const int vc = t.dev_b->bind_vc(self);
    t.dev_b->supply_buffer(vc, self.segment().base, 64);
    t.dev_b->supply_buffer(vc, self.segment().base + 64, 64);
    while (order.size() < 2) {
      if (const auto d = t.dev_b->poll(vc)) {
        order.push_back(*t.b->mem(d->addr, 1));
      } else {
        co_await self.compute(self.node().cost().poll_iteration);
      }
    }
  });
  t.sim.queue().schedule_at(10, [&] {
    const std::uint8_t first[] = {1, 1, 1, 1};
    const std::uint8_t second[] = {2, 2, 2, 2};
    t.dev_a->send(0, first);
    t.dev_a->send(0, second);
  });
  t.sim.run(us(1e6));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);  // the later send arrives first
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(t.dev_a->fault_counters().reorders, 1u);
}

TEST(FaultDevice, SetFaultsSwapsScheduleMidRun) {
  An2Pair t;  // perfect link at construction
  int received = 0;
  t.b->kernel().spawn("rx", [&](Process& self) -> Task {
    const int vc = t.dev_b->bind_vc(self);
    t.dev_b->supply_buffer(vc, self.segment().base, 64);
    t.dev_b->supply_buffer(vc, self.segment().base + 64, 64);
    co_await self.sleep_for(us(10000.0));
    while (t.dev_b->poll(vc).has_value()) ++received;
  });
  const std::uint8_t m[] = {9, 9};
  t.sim.queue().schedule_at(10, [&] { t.dev_a->send(0, m); });
  t.sim.queue().schedule_at(sim::us(2000.0), [&] {
    FaultConfig broken;
    broken.drop_prob = 1.0;
    t.dev_a->set_faults(broken);
    t.dev_a->send(0, m);  // this one vanishes
  });
  t.sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(t.dev_a->fault_counters().drops, 1u);
}

// ---- Ethernet device level ----

dpf::Filter eth_type_filter(std::uint16_t ethertype) {
  dpf::Filter f;
  f.atoms = {dpf::atom_be16(12, ethertype)};
  return f;
}

std::vector<std::uint8_t> eth_frame(std::uint16_t ethertype,
                                    std::size_t payload_len) {
  std::vector<std::uint8_t> f(14 + payload_len, 0);
  f[12] = static_cast<std::uint8_t>(ethertype >> 8);
  f[13] = static_cast<std::uint8_t>(ethertype);
  for (std::size_t i = 0; i < payload_len; ++i) {
    f[14 + i] = static_cast<std::uint8_t>(i);
  }
  return f;
}

TEST(FaultDevice, EthernetDuplicatesFrames) {
  // Regression: EthernetConfig used to expose only drop_prob — the
  // duplication (and every other) fault class simply did not exist on
  // the Ethernet model.
  EthernetConfig cfg;
  cfg.faults.dup_prob = 1.0;
  Simulator sim;
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  EthernetDevice da(a, cfg);
  EthernetDevice db(b);
  da.connect(db);

  int received = 0;
  b.kernel().spawn("rx", [&](Process& self) -> Task {
    const int ep = db.attach(self, eth_type_filter(0x0800));
    db.supply_buffer(ep, self.segment().base, 2048);
    db.supply_buffer(ep, self.segment().base + 2048, 2048);
    co_await self.sleep_for(us(20000.0));
    while (db.poll(ep).has_value()) ++received;
  });
  sim.queue().schedule_at(10, [&] {
    ASSERT_TRUE(da.send(eth_frame(0x0800, 100)));
  });
  sim.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(da.fault_counters().dups, 1u);
  EXPECT_EQ(db.kernel_bufs_in_use(), 0u);  // all deliveries drained
}

TEST(FaultDevice, EthernetDropsAtProbOne) {
  EthernetConfig cfg;
  cfg.faults.drop_prob = 1.0;
  Simulator sim;
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  EthernetDevice da(a, cfg);
  EthernetDevice db(b);
  da.connect(db);

  int received = 0;
  b.kernel().spawn("rx", [&](Process& self) -> Task {
    const int ep = db.attach(self, eth_type_filter(0x0800));
    db.supply_buffer(ep, self.segment().base, 2048);
    co_await self.sleep_for(us(20000.0));
    while (db.poll(ep).has_value()) ++received;
  });
  sim.queue().schedule_at(10, [&] { da.send(eth_frame(0x0800, 64)); });
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(da.fault_counters().drops, 1u);
}

TEST(FaultDevice, An2ZeroLengthMessageDeliversCleanly) {
  // Found by tools/packetfuzz (tcp target, mutated-to-empty frame):
  // An2Device::deliver memcpy'd from the empty vector's null data()
  // pointer — undefined behaviour flagged by UBSan. An empty message must
  // deliver as a zero-length descriptor without touching memory.
  An2Pair t;
  std::optional<net::RxDesc> got;
  t.b->kernel().spawn("rx", [&](Process& self) -> Task {
    const int vc = t.dev_b->bind_vc(self);
    t.dev_b->supply_buffer(vc, self.segment().base, 256);
    co_await self.sleep_for(us(5000.0));
    got = t.dev_b->poll(vc);
  });
  t.sim.queue().schedule_at(10, [&] {
    EXPECT_TRUE(t.dev_a->send(0, {}));
  });
  t.sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->len, 0u);
}

}  // namespace
}  // namespace ash::net
