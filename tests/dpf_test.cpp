#include "dpf/dpf.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ash::dpf {
namespace {

/// A fake "UDP-ish" packet: bytes [12..13] = ethertype, [23] = proto,
/// [34..35] = dst port (roughly Ethernet+IP offsets).
std::vector<std::uint8_t> make_packet(std::uint16_t ethertype,
                                      std::uint8_t proto,
                                      std::uint16_t port) {
  std::vector<std::uint8_t> p(64, 0);
  p[12] = static_cast<std::uint8_t>(ethertype >> 8);
  p[13] = static_cast<std::uint8_t>(ethertype);
  p[23] = proto;
  p[34] = static_cast<std::uint8_t>(port >> 8);
  p[35] = static_cast<std::uint8_t>(port);
  return p;
}

Filter udp_port_filter(std::uint16_t port) {
  Filter f;
  f.atoms = {atom_be16(12, 0x0800), atom_u8(23, 17), atom_be16(34, port)};
  return f;
}

template <typename E>
class DpfEngineTest : public ::testing::Test {
 protected:
  E engine;
};

using Engines = ::testing::Types<InterpretedEngine, CompiledEngine>;
TYPED_TEST_SUITE(DpfEngineTest, Engines);

TYPED_TEST(DpfEngineTest, EmptyEngineMatchesNothing) {
  const auto pkt = make_packet(0x0800, 17, 1234);
  EXPECT_EQ(this->engine.match(pkt), -1);
  EXPECT_EQ(this->engine.size(), 0u);
}

TYPED_TEST(DpfEngineTest, SingleFilterMatches) {
  this->engine.insert(udp_port_filter(53), /*owner=*/7);
  EXPECT_EQ(this->engine.match(make_packet(0x0800, 17, 53)), 7);
  EXPECT_EQ(this->engine.match(make_packet(0x0800, 17, 54)), -1);
  EXPECT_EQ(this->engine.match(make_packet(0x0806, 17, 53)), -1);
  EXPECT_EQ(this->engine.match(make_packet(0x0800, 6, 53)), -1);
}

TYPED_TEST(DpfEngineTest, ManyFiltersDemuxToDistinctOwners) {
  for (int i = 0; i < 64; ++i) {
    this->engine.insert(udp_port_filter(static_cast<std::uint16_t>(1000 + i)),
                        100 + i);
  }
  EXPECT_EQ(this->engine.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(this->engine.match(make_packet(
                  0x0800, 17, static_cast<std::uint16_t>(1000 + i))),
              100 + i);
  }
  EXPECT_EQ(this->engine.match(make_packet(0x0800, 17, 2000)), -1);
}

TYPED_TEST(DpfEngineTest, RemoveStopsMatching) {
  const int id = this->engine.insert(udp_port_filter(53), 7);
  this->engine.insert(udp_port_filter(80), 8);
  this->engine.remove(id);
  EXPECT_EQ(this->engine.size(), 1u);
  EXPECT_EQ(this->engine.match(make_packet(0x0800, 17, 53)), -1);
  EXPECT_EQ(this->engine.match(make_packet(0x0800, 17, 80)), 8);
  this->engine.remove(id);        // double remove: no-op
  this->engine.remove(12345);     // unknown id: no-op
  EXPECT_EQ(this->engine.size(), 1u);
}

TYPED_TEST(DpfEngineTest, PriorityIsInsertionOrder) {
  // Overlapping filters: a general one first, a specific one second.
  Filter general;
  general.atoms = {atom_be16(12, 0x0800)};
  Filter specific = udp_port_filter(53);
  this->engine.insert(general, 1);
  this->engine.insert(specific, 2);
  // Both match; the earlier-installed filter wins.
  EXPECT_EQ(this->engine.match(make_packet(0x0800, 17, 53)), 1);
}

TYPED_TEST(DpfEngineTest, SpecificWinsWhenInstalledFirst) {
  this->engine.insert(udp_port_filter(53), 2);
  Filter general;
  general.atoms = {atom_be16(12, 0x0800)};
  this->engine.insert(general, 1);
  EXPECT_EQ(this->engine.match(make_packet(0x0800, 17, 53)), 2);
  EXPECT_EQ(this->engine.match(make_packet(0x0800, 17, 99)), 1);
}

TYPED_TEST(DpfEngineTest, ShortPacketFailsAtomsBeyondLength) {
  this->engine.insert(udp_port_filter(53), 7);
  const std::vector<std::uint8_t> tiny = {0x08, 0x00};
  EXPECT_EQ(this->engine.match(tiny), -1);
}

TYPED_TEST(DpfEngineTest, EmptyFilterMatchesEverything) {
  this->engine.insert(Filter{}, 9);
  EXPECT_EQ(this->engine.match(make_packet(0, 0, 0)), 9);
  EXPECT_EQ(this->engine.match({}), 9);
}

TYPED_TEST(DpfEngineTest, RejectsBadWidth) {
  Filter f;
  f.atoms = {Atom{0, 3, 0xff, 1}};
  EXPECT_THROW(this->engine.insert(f, 1), std::invalid_argument);
}

TYPED_TEST(DpfEngineTest, RejectsValueOutsideMask) {
  Filter f;
  f.atoms = {Atom{0, 1, 0x0f, 0x10}};
  EXPECT_THROW(this->engine.insert(f, 1), std::invalid_argument);
}

TEST(DpfCompiled, SharedPrefixesVisitFewNodes) {
  CompiledEngine compiled;
  InterpretedEngine interp;
  for (int i = 0; i < 64; ++i) {
    const auto port = static_cast<std::uint16_t>(1000 + i);
    compiled.insert(udp_port_filter(port), i);
    interp.insert(udp_port_filter(port), i);
  }
  const auto pkt = make_packet(0x0800, 17, 1063);
  MatchStats cs, is;
  ASSERT_EQ(compiled.match(pkt, &cs), 63);
  ASSERT_EQ(interp.match(pkt, &is), 63);
  // Interpreted work scales with the number of filters; compiled work is
  // the tree depth. This is the order-of-magnitude structural difference.
  EXPECT_GE(is.atoms_evaluated, 64u);
  EXPECT_LE(cs.nodes_visited, 8u);
}

TEST(DpfCompiled, MaskedAtomsDiscriminate) {
  CompiledEngine engine;
  Filter f_low;
  f_low.atoms = {Atom{0, 1, 0x0f, 0x03}};  // low nibble == 3
  Filter f_high;
  f_high.atoms = {Atom{0, 1, 0xf0, 0x30}};  // high nibble == 3
  engine.insert(f_low, 1);
  engine.insert(f_high, 2);
  const std::vector<std::uint8_t> p1 = {0x53};
  const std::vector<std::uint8_t> p2 = {0x35};
  const std::vector<std::uint8_t> p3 = {0x33};
  EXPECT_EQ(engine.match(p1), 1);
  EXPECT_EQ(engine.match(p2), 2);
  EXPECT_EQ(engine.match(p3), 1);  // both match; earlier wins
}

// Property: compiled and interpreted engines agree on random filter sets
// and random packets (including overlapping filters and removals).
class DpfEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DpfEquivalence, EnginesAgree) {
  util::Rng rng(GetParam());
  InterpretedEngine interp;
  CompiledEngine compiled;

  const int n_filters = static_cast<int>(rng.range(1, 24));
  std::vector<int> ids_i, ids_c;
  for (int i = 0; i < n_filters; ++i) {
    Filter f;
    const int n_atoms = static_cast<int>(rng.below(4));
    for (int a = 0; a < n_atoms; ++a) {
      Atom atom;
      atom.offset = static_cast<std::uint16_t>(rng.below(16));
      const std::uint8_t widths[] = {1, 2, 4};
      atom.width = widths[rng.below(3)];
      atom.mask = atom.width == 1 ? 0xffu : atom.width == 2 ? 0xffffu
                                                            : 0xffffffffu;
      if (rng.chance(1, 3)) atom.mask &= 0x0f0f0f0fu;
      atom.value = static_cast<std::uint32_t>(rng.next()) & atom.mask;
      f.atoms.push_back(atom);
    }
    ids_i.push_back(interp.insert(f, i));
    ids_c.push_back(compiled.insert(f, i));
  }
  // Random removals.
  for (int i = 0; i < n_filters; ++i) {
    if (rng.chance(1, 4)) {
      interp.remove(ids_i[static_cast<std::size_t>(i)]);
      compiled.remove(ids_c[static_cast<std::size_t>(i)]);
    }
  }

  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> pkt(rng.range(0, 24));
    for (auto& b : pkt) {
      // Low-entropy bytes so filters actually match sometimes.
      b = static_cast<std::uint8_t>(rng.below(4));
    }
    EXPECT_EQ(interp.match(pkt), compiled.match(pkt)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpfEquivalence, ::testing::Range(0, 60));

// ---- truncated and mis-lengthed frames ----
//
// The fault injector can cut a frame anywhere, and a hostile sender can
// claim any length field it likes; the demux must treat an atom whose
// read would run off the end as a non-match — never read past the frame.

TYPED_TEST(DpfEngineTest, TruncatedFrameNeverMatchesOutOfBoundsAtoms) {
  this->engine.insert(udp_port_filter(53), 7);
  const auto full = make_packet(0x0800, 17, 53);
  ASSERT_EQ(this->engine.match(full), 7);
  // Every truncation point: packets cut before the last atom's read end
  // (offset 34, width 2 -> needs 36 bytes) must not match; anything that
  // still covers all atoms must keep matching.
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    const std::span<const std::uint8_t> pkt{full.data(), cut};
    const int got = this->engine.match(pkt);
    if (cut >= 36) {
      EXPECT_EQ(got, 7) << "cut=" << cut;
    } else {
      EXPECT_EQ(got, -1) << "cut=" << cut;
    }
  }
}

TYPED_TEST(DpfEngineTest, EmptyAndHeaderSizedFramesAreSafe) {
  this->engine.insert(udp_port_filter(53), 7);
  EXPECT_EQ(this->engine.match(std::span<const std::uint8_t>{}), -1);
  const std::vector<std::uint8_t> tiny(1, 0x08);
  EXPECT_EQ(this->engine.match(tiny), -1);
  const std::vector<std::uint8_t> header_only(14, 0);
  EXPECT_EQ(this->engine.match(header_only), -1);
}

TYPED_TEST(DpfEngineTest, AtomAtBoundaryMatchesExactlyAtFrameEnd) {
  // An atom whose read ends exactly at the frame's last byte must match;
  // one byte shorter must not (off-by-one probe for the bounds check).
  Filter f;
  f.atoms = {atom_be16(62, 0xbeef)};
  this->engine.insert(f, 3);
  std::vector<std::uint8_t> pkt(64, 0);
  pkt[62] = 0xbe;
  pkt[63] = 0xef;
  EXPECT_EQ(this->engine.match(pkt), 3);
  EXPECT_EQ(this->engine.match({pkt.data(), 63}), -1);
  EXPECT_EQ(this->engine.match({pkt.data(), 62}), -1);
}

TYPED_TEST(DpfEngineTest, MisLengthedLengthFieldCannotWidenTheFrame) {
  // A frame whose embedded "length" byte claims more payload than exists:
  // the demux keys off real frame bounds, not embedded claims, so a
  // filter on bytes past the actual end stays unmatched even though the
  // length field advertises them.
  Filter on_claimed_tail;
  on_claimed_tail.atoms = {atom_u8(40, 0x55)};
  this->engine.insert(on_claimed_tail, 9);

  std::vector<std::uint8_t> pkt(24, 0);
  pkt[16] = 200;  // claims 200 bytes of payload; only 24 exist
  EXPECT_EQ(this->engine.match(pkt), -1);

  // And a length field *smaller* than the frame must not hide real bytes.
  std::vector<std::uint8_t> big(48, 0);
  big[16] = 2;
  big[40] = 0x55;
  EXPECT_EQ(this->engine.match(big), 9);
}

TEST(DpfTruncationDifferential, EnginesAgreeOnEveryTruncationPoint) {
  InterpretedEngine interp;
  CompiledEngine compiled;
  util::Rng rng(77);
  for (int i = 0; i < 32; ++i) {
    Filter f;
    const int n_atoms = 1 + static_cast<int>(rng.below(3));
    for (int a = 0; a < n_atoms; ++a) {
      Atom atom;
      atom.offset = static_cast<std::uint16_t>(rng.below(60));
      const std::uint8_t widths[] = {1, 2, 4};
      atom.width = widths[rng.below(3)];
      atom.mask = atom.width == 1 ? 0xffu : atom.width == 2 ? 0xffffu
                                                            : 0xffffffffu;
      atom.value = static_cast<std::uint32_t>(rng.next()) & atom.mask;
      f.atoms.push_back(atom);
    }
    interp.insert(f, i);
    compiled.insert(f, i);
  }
  std::vector<std::uint8_t> pkt(64);
  for (auto& b : pkt) b = static_cast<std::uint8_t>(rng.below(4));
  for (std::size_t cut = 0; cut <= pkt.size(); ++cut) {
    EXPECT_EQ(interp.match({pkt.data(), cut}),
              compiled.match({pkt.data(), cut}))
        << "cut=" << cut;
  }
}

}  // namespace
}  // namespace ash::dpf
