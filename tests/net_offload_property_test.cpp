// Punt-path property test: randomized fitting / oversized / faulting /
// upcalling handlers across 4 offload queues, seeded traffic, and three
// pinned invariants:
//
//  1. Conservation — per NIC queue and in total, at quiescence:
//     offered == nic_executed + punted + dropped, punted == sum of the
//     punt-reason taxonomy, and every punt is attributable.
//  2. Canonical single run — per-handler AshStats (invocations, commits,
//     abort taxonomy, execution cycles and instructions) are EQUAL to a
//     host-only replay of the same corpus: the handler ran exactly once
//     per message through the same machinery, wherever it ran.
//  3. Tenant cycle conservation extends to NIC-executed cycles — each
//     owner's TenantScheduler ledger equals the sum of its handlers'
//     AshStats cycles, with offload on or off.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "ashlib/handlers.hpp"
#include "core/ash.hpp"
#include "core/tenant.hpp"
#include "net/an2.hpp"
#include "net/nic_offload.hpp"
#include "net/rx_queue.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "vcode/builder.hpp"

namespace ash::net {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

constexpr int kVcs = 6;           // all ASH-attached, 3 per owner
constexpr int kVcsPerOwner = 3;
constexpr int kBufsPerVc = 130;
constexpr std::uint32_t kWindow = 16u * 1024;

enum class Kind : std::uint8_t { Inc, Upcall, Fault, Oversized };

/// Always hands the message back to the host (the "request host services"
/// handler): a voluntary abort, i.e. a HostService punt on the device.
vcode::Program make_upcall() {
  vcode::Builder b;
  b.abort(5);
  return b.take();
}

/// Faults with DivideByZero iff the first message word is zero — a data-
/// dependent involuntary abort, so one handler produces both commits and
/// Fault punts within a single corpus.
vcode::Program make_div_by_word0() {
  vcode::Builder b;
  const vcode::Reg v = b.reg();
  const vcode::Reg q = b.reg();
  b.lw(v, vcode::kRegArg0, 0);
  b.divu(q, vcode::kRegArg1, v);
  b.movi(vcode::kRegArg0, 1);
  b.halt();
  return b.take();
}

/// Functionally a counter handler, padded far past the NIC memory window:
/// it must stay host-resident and every frame for it must be a counted
/// NotResident punt (still executing normally, on the host).
vcode::Program make_oversized() {
  vcode::Builder b;
  for (int i = 0; i < 2100; ++i) b.nop();
  const vcode::Reg v = b.reg();
  b.lw(v, vcode::kRegArg2, 0);
  b.addiu(v, v, 1);
  b.sw(v, vcode::kRegArg2, 0);
  b.movi(vcode::kRegArg0, 1);
  b.halt();
  return b.take();
}

vcode::Program make_program(Kind k) {
  switch (k) {
    case Kind::Inc: return ashlib::make_remote_increment();
    case Kind::Upcall: return make_upcall();
    case Kind::Fault: return make_div_by_word0();
    case Kind::Oversized: return make_oversized();
  }
  return ashlib::make_remote_increment();
}

struct CorpusMsg {
  sim::Cycles at;
  int vc;
  std::vector<std::uint8_t> bytes;
};

std::vector<CorpusMsg> make_corpus(std::uint64_t seed, Kind kinds[kVcs]) {
  util::Rng rng(seed);
  for (int v = 0; v < kVcs; ++v) {
    kinds[v] = static_cast<Kind>(rng.below(4));
  }
  std::vector<CorpusMsg> corpus;
  sim::Cycles t = us(100.0);
  const std::size_t n = 180 + rng.below(60);
  for (std::size_t m = 0; m < n; ++m) {
    if (rng.below(3) != 0) t += static_cast<sim::Cycles>(rng.below(400));
    CorpusMsg msg;
    msg.at = t;
    msg.vc = static_cast<int>(rng.below(kVcs));
    msg.bytes.resize(8);
    for (auto& b : msg.bytes) b = static_cast<std::uint8_t>(rng.below(256));
    // Word 0 zero with probability 1/3: the Fault handler's trigger.
    if (rng.below(3) == 0) {
      msg.bytes[0] = msg.bytes[1] = msg.bytes[2] = msg.bytes[3] = 0;
    }
    corpus.push_back(std::move(msg));
  }
  return corpus;
}

struct Taxonomy {
  std::uint64_t invocations, commits, vaborts, iaborts, cycles, insns;
  std::array<std::uint64_t, vcode::kOutcomeCount> by_outcome;
  bool operator==(const Taxonomy&) const = default;
};

struct RunResult {
  Taxonomy tax[kVcs];
  bool resident[kVcs] = {false, false, false, false, false, false};
  std::uint64_t ledger[2] = {0, 0};       // TenantScheduler cycles_charged
  std::uint64_t stats_cycles[2] = {0, 0};  // sum of owned AshStats cycles
  NicProcessor::QueueStats nic;            // totals (zero when host-only)
};

RunResult replay(const std::vector<CorpusMsg>& corpus,
                 const Kind kinds[kVcs], bool offload) {
  Simulator sim;
  Node& a = sim.add_node("client");
  // The stats-parity invariant is about execution identity, not about
  // conflict evictions: host and offload runs interleave handler
  // executions differently, and a 64 KB direct-mapped cache turns that
  // reordering into a handful of extra/fewer 12-cycle conflict misses.
  // A cache wider than the node's touched address span (segments are
  // 1 MB, two tenants) leaves only cold + DMA-invalidation misses, which
  // depend on the corpus alone — so exact cycle equality is a true
  // invariant and any deviation is a real double-run or mischarge.
  sim::NodeConfig server_cfg;
  server_cfg.cache.size_bytes = 8u * 1024 * 1024;
  Node& b = sim.add_node("server", server_cfg);
  An2Device dev_a(a), dev_b(b);
  dev_a.connect(dev_b);
  core::AshSystem ash_sys(b);

  core::TenantSchedulerConfig tc;
  tc.quantum_per_weight = 1ull << 40;  // never defer: parity needs runs
  tc.rx_quota_frames = 0;              // unlimited occupancy
  core::TenantScheduler tenants(b, tc);
  ash_sys.set_tenants(&tenants);

  RxQueueSet::Config qc;
  qc.queues = 4;
  qc.coalesce.enabled = true;
  qc.coalesce.max_frames = 4;
  qc.coalesce.max_delay = us(30.0);
  qc.quota = &tenants;
  RxQueueSet rxq(b, qc);
  dev_b.set_rx_queues(&rxq);

  std::unique_ptr<NicProcessor> nic;
  if (offload) {
    NicConfig nc;
    nc.units_per_queue = 4;
    nc.mem_window_bytes = kWindow;
    nic = std::make_unique<NicProcessor>(b, rxq, nc);
    dev_b.set_nic(nic.get());
  }

  auto out = std::make_unique<RunResult>();
  std::uint32_t owner_pid[2] = {0, 0};
  int ash_ids[kVcs] = {-1, -1, -1, -1, -1, -1};

  // Two tenants, three VCs each; every VC gets its own handler instance
  // so AshStats are attributable per (owner, kind).
  for (int o = 0; o < 2; ++o) {
    b.kernel().spawn(o == 0 ? "tenant0" : "tenant1",
                     [&, o](Process& self) -> Task {
      owner_pid[o] = self.pid();
      for (int i = 0; i < kVcsPerOwner; ++i) {
        const int v = o * kVcsPerOwner + i;
        const int vc = dev_b.bind_vc(self);
        EXPECT_EQ(vc, v);
        for (int j = 0; j < kBufsPerVc; ++j) {
          dev_b.supply_buffer(
              vc,
              self.segment().base +
                  64u * static_cast<std::uint32_t>(i * kBufsPerVc + j),
              64);
        }
        core::AshOptions opts;
        std::string error;
        const int id =
            ash_sys.download(self, make_program(kinds[v]), opts, &error);
        EXPECT_GE(id, 0) << error;
        ash_ids[v] = id;
        const std::uint32_t ctr =
            self.segment().base + 0x80000 + 0x100u * static_cast<unsigned>(i);
        out->resident[v] = ash_sys.offload_an2(dev_b, vc, id, ctr);
        if (offload) {
          EXPECT_EQ(out->resident[v], kinds[v] != Kind::Oversized)
              << "vc " << v;
        } else {
          EXPECT_FALSE(out->resident[v]);
        }
      }
      co_await self.sleep_for(us(1e6));
    });
  }

  a.kernel().spawn("client", [&](Process& self) -> Task {
    for (int v = 0; v < kVcs; ++v) {
      dev_a.bind_vc(self);
      for (int j = 0; j < kBufsPerVc; ++j) {
        dev_a.supply_buffer(
            v,
            self.segment().base +
                64u * static_cast<std::uint32_t>(v * kBufsPerVc + j),
            64);
      }
    }
    co_await self.sleep_for(us(1e6));
  });

  for (const CorpusMsg& m : corpus) {
    sim.queue().schedule_at(m.at, [&dev_a, &m] {
      ASSERT_TRUE(dev_a.send(m.vc, m.bytes));
    });
  }
  sim.run(us(60000.0));

  for (int v = 0; v < kVcs; ++v) {
    EXPECT_EQ(dev_b.drops(v), 0u) << "server vc " << v;
    const core::AshStats& s = ash_sys.stats(ash_ids[v]);
    out->tax[v] = {s.invocations, s.commits,          s.voluntary_aborts,
                   s.involuntary_aborts, s.cycles, s.insns, s.by_outcome};
    out->stats_cycles[v / kVcsPerOwner] += s.cycles;
  }
  for (int o = 0; o < 2; ++o) {
    out->ledger[o] = tenants.cycles_charged(owner_pid[o]);
  }
  if (nic != nullptr) {
    out->nic = nic->totals();
    for (std::size_t q = 0; q < nic->queues(); ++q) {
      EXPECT_EQ(nic->depth(q), 0u) << "nic queue " << q;
      const auto& s = nic->stats(q);
      EXPECT_EQ(s.offered, s.nic_executed + s.punted + s.dropped)
          << "nic queue " << q;
      EXPECT_EQ(s.punted, s.by_punt_reason[0] + s.by_punt_reason[1] +
                              s.by_punt_reason[2])
          << "nic queue " << q;
      EXPECT_EQ(s.dropped, s.overflow_drops + s.quota_drops);
    }
  }
  return *out;
}

TEST(OffloadPunt, ConservationStatsParityAndTenantLedger) {
  const std::uint64_t seeds[] = {101, 202, 303, 404, 505, 606};
  for (const std::uint64_t seed : seeds) {
    Kind kinds[kVcs];
    const auto corpus = make_corpus(seed, kinds);
    std::map<int, std::uint64_t> offered;
    for (const auto& m : corpus) ++offered[m.vc];
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);

    const RunResult host = replay(corpus, kinds, /*offload=*/false);
    const RunResult nic = replay(corpus, kinds, /*offload=*/true);

    // (2) Canonical single run: per-handler outcome taxonomy, execution
    // cycles and instruction counts are equal host vs offload.
    std::uint64_t want_exec = 0, want_host_service = 0, want_fault = 0;
    std::uint64_t want_not_resident = 0, want_offered = 0;
    for (int v = 0; v < kVcs; ++v) {
      SCOPED_TRACE(::testing::Message()
                   << "vc " << v << " kind "
                   << static_cast<int>(kinds[v]));
      EXPECT_EQ(nic.tax[v], host.tax[v]);
      EXPECT_EQ(host.tax[v].invocations, offered[v]);
      want_offered += offered[v];
      if (nic.resident[v]) {
        want_exec += host.tax[v].commits;
        want_host_service += host.tax[v].vaborts;
        want_fault += host.tax[v].iaborts;
      } else {
        want_not_resident += offered[v];
      }
    }

    // (1) Conservation, plus full punt attribution against the host-run
    // ground truth (no drops were configured to occur).
    EXPECT_EQ(nic.nic.offered, want_offered);
    EXPECT_EQ(nic.nic.dropped, 0u);
    EXPECT_EQ(nic.nic.nic_executed, want_exec);
    EXPECT_EQ(nic.nic.by_punt_reason[static_cast<std::size_t>(
                  PuntReason::NotResident)],
              want_not_resident);
    EXPECT_EQ(nic.nic.by_punt_reason[static_cast<std::size_t>(
                  PuntReason::HostService)],
              want_host_service);
    EXPECT_EQ(nic.nic.by_punt_reason[static_cast<std::size_t>(
                  PuntReason::Fault)],
              want_fault);
    EXPECT_EQ(nic.nic.offered,
              nic.nic.nic_executed + nic.nic.punted + nic.nic.dropped);

    // (3) Tenant cycle conservation: the scheduler's ledger equals the
    // sum of the owner's AshStats cycles — NIC-executed runs included.
    for (int o = 0; o < 2; ++o) {
      EXPECT_EQ(host.ledger[o], host.stats_cycles[o]) << "owner " << o;
      EXPECT_EQ(nic.ledger[o], nic.stats_cycles[o]) << "owner " << o;
      EXPECT_EQ(nic.ledger[o], host.ledger[o]) << "owner " << o;
    }
  }
}

}  // namespace
}  // namespace ash::net
