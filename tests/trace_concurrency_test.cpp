// Thread-model tests for the tracer, written to run under TSan (the CI
// tsan job builds trace_test with -fsanitize=thread).
//
// The documented contract (trace.hpp): the tracer has ONE writer thread —
// the thread driving the simulator — which may emit into any per-CPU
// ring. Other threads may concurrently read only the atomic surface: the
// enabled() gate and the emitted / dropped / clamped_cpus counters. Ring
// contents and metric aggregates are read only after the writer is
// quiescent. These tests drive both sides of that contract hard so TSan
// would flag any regression that widens a non-atomic access into the
// concurrent window.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace ash::trace {
namespace {

constexpr std::uint16_t kCpus = 4;

TEST(TraceConcurrency, AtomicCountersReadableWhileWriterRuns) {
  TracerConfig cfg;
  cfg.ring_capacity = 256;  // small: force wraps, so dropped moves too
  cfg.max_cpus = kCpus;
  Session session(cfg);
  Tracer& t = global();

  constexpr std::uint64_t kRounds = 20000;
  std::atomic<bool> writer_done{false};

  std::thread writer([&t, &writer_done] {
    for (std::uint64_t i = 0; i < kRounds; ++i) {
      for (std::uint16_t cpu = 0; cpu < kCpus; ++cpu) {
        t.emit(make_event(EventType::AshDispatch, cpu, i,
                          static_cast<std::int32_t>(cpu), 64, cpu));
      }
      if ((i & 1023) == 0) {
        // Exercise the thread-local context path and cpu clamping from
        // the same (single) writer thread.
        ScopedContext ctx(2, i, 7);
        global().emit_ctx(EventType::TSendInitiated, Engine::None, 16, 0,
                          40, 0);
        t.emit(make_event(EventType::UpcallFallback, kCpus + 3, i, 1));
      }
    }
    writer_done.store(true, std::memory_order_release);
  });

  // Concurrent observers poll only the documented any-time-readable
  // surface. Each atomic is individually monotonic (single writer), so
  // per-counter non-decrease is the strongest claim a racing reader can
  // check; cross-counter invariants wait for the join below.
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&t, &writer_done] {
      std::array<std::uint64_t, kCpus> last_emitted{};
      std::array<std::uint64_t, kCpus> last_dropped{};
      std::uint64_t last_clamped = 0;
      while (!writer_done.load(std::memory_order_acquire)) {
        EXPECT_TRUE(enabled());
        for (std::uint16_t cpu = 0; cpu < kCpus; ++cpu) {
          const std::uint64_t e = t.emitted(cpu);
          const std::uint64_t d = t.dropped(cpu);
          EXPECT_GE(e, last_emitted[cpu]);
          EXPECT_GE(d, last_dropped[cpu]);
          last_emitted[cpu] = e;
          last_dropped[cpu] = d;
        }
        const std::uint64_t c = t.clamped_cpus();
        EXPECT_GE(c, last_clamped);
        last_clamped = c;
      }
    });
  }

  writer.join();
  for (std::thread& r : readers) r.join();

  // Writer quiescent: the full invariants must hold exactly.
  constexpr std::uint64_t kExtras = (kRounds + 1023) / 1024;  // i % 1024 == 0
  EXPECT_EQ(t.emitted(0), kRounds);
  EXPECT_EQ(t.emitted(1), kRounds);
  // cpu 2 also took the context-path sends; cpu 3 (last ring) absorbed
  // the clamped out-of-range emissions.
  EXPECT_EQ(t.emitted(2), kRounds + kExtras);
  EXPECT_EQ(t.emitted(3), kRounds + kExtras);
  EXPECT_EQ(t.clamped_cpus(), kExtras);
  for (std::uint16_t cpu = 0; cpu < kCpus; ++cpu) {
    EXPECT_EQ(t.emitted(cpu), t.events(cpu).size() + t.dropped(cpu));
  }
  EXPECT_EQ(t.type_count(EventType::AshDispatch), kRounds * kCpus);
  EXPECT_EQ(t.type_count(EventType::TSendInitiated), kExtras);
  EXPECT_EQ(t.type_count(EventType::UpcallFallback), kExtras);
  EXPECT_EQ(t.ash_metrics(7).sends, kExtras);
}

TEST(TraceConcurrency, DisableGateObservedByRunningWriter) {
  TracerConfig cfg;
  cfg.ring_capacity = 1u << 12;
  cfg.max_cpus = 1;
  Session session(cfg);
  Tracer& t = global();

  // The writer mimics a real instrumentation site: check enabled() before
  // every emit, stop when the gate closes.
  std::atomic<std::uint64_t> writer_saw{0};
  std::thread writer([&t, &writer_saw] {
    std::uint64_t i = 0;
    while (enabled()) {
      t.emit(make_event(EventType::AshDispatch, 0, i, 0));
      ++i;
    }
    writer_saw.store(i, std::memory_order_release);
  });

  // Let the writer make progress, then slam the gate from this thread.
  while (t.emitted(0) < 1000) {
    std::this_thread::yield();
  }
  global().disable();
  writer.join();

  EXPECT_FALSE(enabled());
  const std::uint64_t n = writer_saw.load(std::memory_order_acquire);
  EXPECT_GE(n, 1000u);
  // Every emit that passed the gate was recorded; nothing after it.
  EXPECT_EQ(t.emitted(0), n);
  EXPECT_EQ(t.emitted(0), t.events(0).size() + t.dropped(0));
  // Rings stay readable after disable() until the next enable().
  const auto ev = t.events(0);
  ASSERT_FALSE(ev.empty());
  EXPECT_EQ(ev.back().seq, n - 1);
}

}  // namespace
}  // namespace ash::trace
