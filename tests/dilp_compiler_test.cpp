#include "dilp/compiler.hpp"

#include <gtest/gtest.h>

#include "dilp/engine.hpp"
#include "dilp/native.hpp"
#include "dilp/stdpipes.hpp"
#include "util/byteorder.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"
#include "vcode/env_util.hpp"

namespace ash::dilp {
namespace {

using vcode::FlatMemoryEnv;

std::vector<std::uint8_t> random_words(util::Rng& rng, std::size_t words) {
  std::vector<std::uint8_t> data(words * 4);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  return data;
}

/// Run ilp `id` over `data`, placing source at 0x100 and dest at 0x2000 in
/// a flat environment; returns the destination bytes.
struct RunOutput {
  std::vector<std::uint8_t> dst;
  std::vector<std::uint32_t> persistents;
  Engine::RunResult result;
};

RunOutput run_over(const Engine& engine, int id,
                   std::span<const std::uint8_t> data,
                   std::span<const std::uint32_t> seed = {}) {
  FlatMemoryEnv env(0x4000);
  std::copy(data.begin(), data.end(), env.memory().begin() + 0x100);
  RunOutput out;
  out.result = engine.run(id, env, 0x100, 0x2000,
                          static_cast<std::uint32_t>(data.size()), seed,
                          &out.persistents);
  out.dst.assign(env.memory().begin() + 0x2000,
                 env.memory().begin() + 0x2000 + data.size());
  return out;
}

TEST(Compiler, EmptyListIsCopyLoop) {
  PipeList pl;
  Engine engine;
  std::string error;
  const int id = engine.register_ilp(pl, Direction::Write, &error);
  ASSERT_GE(id, 0) << error;
  EXPECT_EQ(engine.get(id)->summary, "copy (write)");

  util::Rng rng(1);
  const auto data = random_words(rng, 32);
  const auto out = run_over(engine, id, data);
  ASSERT_TRUE(out.result.ok());
  EXPECT_EQ(out.dst, data);
}

TEST(Compiler, CksumPipeComputesChecksumWhileCopying) {
  vcode::Reg acc_reg = 0;
  PipeList pl;
  pl.add(make_cksum_pipe(&acc_reg));
  Engine engine;
  std::string error;
  const int id = engine.register_ilp(pl, Direction::Write, &error);
  ASSERT_GE(id, 0) << error;
  ASSERT_EQ(engine.get(id)->persistents.size(), 1u);

  util::Rng rng(2);
  const auto data = random_words(rng, 64);
  const std::uint32_t seed[] = {0};
  const auto out = run_over(engine, id, data, seed);
  ASSERT_TRUE(out.result.ok());
  EXPECT_EQ(out.dst, data);  // no-mod: data unchanged
  ASSERT_EQ(out.persistents.size(), 1u);
  EXPECT_EQ(util::fold16_le_word_sum(out.persistents[0]),
            util::fold16(util::cksum_partial(data)));
}

TEST(Compiler, Fig1CompositionCksumThenByteswap) {
  // The exact composition of Fig. 1: checksum pipe + byteswap pipe,
  // compiled for the write direction.
  vcode::Reg acc_reg = 0;
  PipeList pl;
  pl.add(make_cksum_pipe(&acc_reg));
  pl.add(make_byteswap_pipe());
  Engine engine;
  std::string error;
  const int id = engine.register_ilp(pl, Direction::Write, &error);
  ASSERT_GE(id, 0) << error;

  util::Rng rng(3);
  const auto data = random_words(rng, 16);
  const std::uint32_t seed[] = {0};
  const auto out = run_over(engine, id, data, seed);
  ASSERT_TRUE(out.result.ok());

  // Expected: checksum over raw words; output byteswapped.
  std::uint32_t acc = 0;
  std::vector<std::uint8_t> expect(data.size());
  for (std::size_t i = 0; i < data.size(); i += 4) {
    const std::uint32_t w = util::load_u32(data.data() + i);
    acc = util::cksum32_accumulate(acc, w);
    util::store_u32(expect.data() + i, util::bswap32(w));
  }
  EXPECT_EQ(out.dst, expect);
  EXPECT_EQ(out.persistents[0], acc);
}

TEST(Compiler, ReadDirectionReversesComposition) {
  // write: bswap then xor; read must apply xor then bswap.
  vcode::Reg key_reg = 0;
  PipeList pl;
  pl.add(make_byteswap_pipe());
  pl.add(make_xor_pipe(&key_reg));
  Engine engine;
  std::string error;
  const int wid = engine.register_ilp(pl, Direction::Write, &error);
  const int rid = engine.register_ilp(pl, Direction::Read, &error);
  ASSERT_GE(wid, 0);
  ASSERT_GE(rid, 0);

  util::Rng rng(4);
  const auto data = random_words(rng, 8);
  const std::uint32_t key = 0x5a5a1234u;
  const std::uint32_t seed[] = {key};

  const auto wrote = run_over(engine, wid, data, seed);
  ASSERT_TRUE(wrote.result.ok());
  // Round trip: reading back what write produced must restore the data
  // (bswap and xor are involutions, and read reverses the order).
  const auto read = run_over(engine, rid, wrote.dst, seed);
  ASSERT_TRUE(read.result.ok());
  EXPECT_EQ(read.dst, data);

  // And the two directions differ on asymmetric input order.
  std::vector<std::uint8_t> expect_w(data.size());
  for (std::size_t i = 0; i < data.size(); i += 4) {
    const std::uint32_t w = util::load_u32(data.data() + i);
    util::store_u32(expect_w.data() + i, util::bswap32(w) ^ key);
  }
  EXPECT_EQ(wrote.dst, expect_w);
}

TEST(Compiler, Gauge16PipeAppliedTwicePerWord) {
  PipeList pl;
  pl.add(make_byteswap16_pipe());
  Engine engine;
  std::string error;
  const int id = engine.register_ilp(pl, Direction::Write, &error);
  ASSERT_GE(id, 0) << error;

  const std::uint8_t data[] = {0x01, 0x02, 0x03, 0x04, 0xaa, 0xbb, 0xcc, 0xdd};
  const auto out = run_over(engine, id, data);
  ASSERT_TRUE(out.result.ok());
  const std::uint8_t expect[] = {0x02, 0x01, 0x04, 0x03,
                                 0xbb, 0xaa, 0xdd, 0xcc};
  EXPECT_EQ(out.dst, std::vector<std::uint8_t>(expect, expect + 8));
}

TEST(Compiler, Gauge8IdentityRoundTrips) {
  PipeList pl;
  pl.add(make_identity_pipe(Gauge::G8));
  Engine engine;
  std::string error;
  const int id = engine.register_ilp(pl, Direction::Write, &error);
  ASSERT_GE(id, 0) << error;
  util::Rng rng(5);
  const auto data = random_words(rng, 16);
  const auto out = run_over(engine, id, data);
  ASSERT_TRUE(out.result.ok());
  EXPECT_EQ(out.dst, data);
}

TEST(Compiler, MixedGaugeComposition) {
  // 16-bit byteswap + 32-bit checksum: exercises gauge conversion between
  // pipes of different widths (the paper's 16b checksum / 32b encryption
  // coupling example).
  vcode::Reg acc_reg = 0;
  PipeList pl;
  pl.add(make_byteswap16_pipe());
  pl.add(make_cksum_pipe(&acc_reg));
  Engine engine;
  std::string error;
  const int id = engine.register_ilp(pl, Direction::Write, &error);
  ASSERT_GE(id, 0) << error;

  util::Rng rng(6);
  const auto data = random_words(rng, 32);
  const std::uint32_t seed[] = {0};
  const auto out = run_over(engine, id, data, seed);
  ASSERT_TRUE(out.result.ok());

  std::uint32_t acc = 0;
  std::vector<std::uint8_t> expect(data.size());
  for (std::size_t i = 0; i < data.size(); i += 4) {
    std::uint32_t w = util::load_u32(data.data() + i);
    const std::uint32_t lo = util::bswap16(static_cast<std::uint16_t>(w));
    const std::uint32_t hi = util::bswap16(static_cast<std::uint16_t>(w >> 16));
    w = lo | (hi << 16);
    acc = util::cksum32_accumulate(acc, w);
    util::store_u32(expect.data() + i, w);
  }
  EXPECT_EQ(out.dst, expect);
  EXPECT_EQ(out.persistents[0], acc);
}

TEST(Compiler, InPlaceTransform) {
  PipeList pl;
  pl.add(make_byteswap_pipe());
  Engine engine;
  std::string error;
  const int id = engine.register_ilp(pl, Direction::Write, &error);
  ASSERT_GE(id, 0);

  FlatMemoryEnv env(0x1000);
  const std::uint8_t data[] = {1, 2, 3, 4};
  std::copy(std::begin(data), std::end(data), env.memory().begin() + 0x10);
  const auto r = engine.run(id, env, 0x10, 0x10, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(env.memory()[0x10], 4);
  EXPECT_EQ(env.memory()[0x13], 1);
}

TEST(Compiler, ZeroLengthTransferIsNoOp) {
  PipeList pl;
  Engine engine;
  std::string error;
  const int id = engine.register_ilp(pl, Direction::Write, &error);
  FlatMemoryEnv env(0x1000);
  const auto r = engine.run(id, env, 0x10, 0x20, 0);
  EXPECT_TRUE(r.ok());
}

TEST(Engine, RejectsUnalignedLength) {
  PipeList pl;
  Engine engine;
  std::string error;
  const int id = engine.register_ilp(pl, Direction::Write, &error);
  FlatMemoryEnv env(0x1000);
  EXPECT_TRUE(engine.run(id, env, 0, 0x100, 6).invalid_args);
}

TEST(Engine, RejectsUnknownId) {
  Engine engine;
  FlatMemoryEnv env(0x100);
  EXPECT_TRUE(engine.run(42, env, 0, 0, 4).invalid_args);
}

TEST(Engine, FaultsOnOutOfBoundsTransfer) {
  PipeList pl;
  Engine engine;
  std::string error;
  const int id = engine.register_ilp(pl, Direction::Write, &error);
  FlatMemoryEnv env(0x100);
  const auto r = engine.run(id, env, 0x80, 0x200, 64);  // dst out of bounds
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.exec.outcome, vcode::Outcome::MemFault);
}

TEST(Compiler, InsnsPerWordReportedAndSmall) {
  vcode::Reg acc = 0;
  PipeList pl;
  pl.add(make_cksum_pipe(&acc));
  pl.add(make_byteswap_pipe());
  std::string error;
  const auto compiled = compile_pipes(pl, Direction::Write, &error);
  ASSERT_TRUE(compiled.has_value()) << error;
  // Fused loop: ~1 load + 1 store + 2 addiu + branch/jmp + ~5 pipe ops.
  EXPECT_GE(compiled->insns_per_word, 8u);
  EXPECT_LE(compiled->insns_per_word, 20u);
}

// Property: arbitrary random compositions of standard pipes, fused by the
// compiler, produce byte-identical output and accumulators to the native
// reference composition.
class FusionEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FusionEquivalence, MatchesNativeReference) {
  util::Rng rng(GetParam() + 42);
  PipeList pl;
  std::vector<native::StageKind> stages;
  std::vector<std::uint32_t> seeds;
  const int n_pipes = static_cast<int>(rng.range(1, 4));
  for (int i = 0; i < n_pipes; ++i) {
    switch (rng.below(3)) {
      case 0:
        pl.add(make_cksum_pipe(nullptr));
        stages.push_back(native::StageKind::Cksum);
        seeds.push_back(0);
        break;
      case 1:
        pl.add(make_byteswap_pipe());
        stages.push_back(native::StageKind::Bswap);
        break;
      default: {
        vcode::Reg key = 0;
        pl.add(make_xor_pipe(&key));
        stages.push_back(native::StageKind::Xor);
        seeds.push_back(static_cast<std::uint32_t>(rng.next()));
        break;
      }
    }
  }

  Engine engine;
  std::string error;
  const int id = engine.register_ilp(pl, Direction::Write, &error);
  ASSERT_GE(id, 0) << error;

  const auto data = random_words(rng, rng.range(1, 64));

  // Native reference: per-stage state vector in stage order (byteswap
  // stages get a placeholder state word; cksum/xor consume seeds in order).
  std::vector<std::uint32_t> state;
  std::size_t seed_i = 0;
  for (auto s : stages) {
    state.push_back(s == native::StageKind::Bswap ? 0 : seeds[seed_i++]);
  }
  std::vector<std::uint8_t> ref_out(data.size());
  const auto composed = native::compose(stages);
  composed.kernel(data.data(), ref_out.data(), data.size(), state.data());

  // Fused loop: persistent seeds in pipe order (cksum/xor pipes only —
  // byteswap has no persistent register).
  const auto out = run_over(engine, id, data, seeds);
  ASSERT_TRUE(out.result.ok()) << vcode::to_string(out.result.exec.outcome);
  EXPECT_EQ(out.dst, ref_out);

  // Persistent accumulators must match the native states (in pipe order).
  std::vector<std::uint32_t> ref_persist;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    if (stages[s] != native::StageKind::Bswap) ref_persist.push_back(state[s]);
  }
  EXPECT_EQ(out.persistents, ref_persist);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionEquivalence, ::testing::Range(0, 80));

}  // namespace
}  // namespace ash::dilp
