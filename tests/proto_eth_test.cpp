#include "proto/eth_link.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "proto/tcp.hpp"
#include "proto/udp.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace ash::proto {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

const Ipv4Addr kIpA = Ipv4Addr::of(192, 168, 0, 1);
const Ipv4Addr kIpB = Ipv4Addr::of(192, 168, 0, 2);
const MacAddr kMacA{{{2, 0, 0, 0, 0, 1}}};
const MacAddr kMacB{{{2, 0, 0, 0, 0, 2}}};

struct EthWorld {
  Simulator sim;
  Node* a;
  Node* b;
  net::EthernetDevice* dev_a;
  net::EthernetDevice* dev_b;

  EthWorld() {
    a = &sim.add_node("a");
    b = &sim.add_node("b");
    dev_a = new net::EthernetDevice(*a);
    dev_b = new net::EthernetDevice(*b);
    dev_a->connect(*dev_b);
  }
  ~EthWorld() {
    delete dev_a;
    delete dev_b;
  }

  EthLink::Config link_a() const { return {kMacA, kMacB}; }
  EthLink::Config link_b() const { return {kMacB, kMacA}; }
};

TEST(EthLink, UdpEchoOverEthernet) {
  EthWorld w;
  bool ok = false;
  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    EthLink link(self, *w.dev_b, w.link_b());
    UdpSocket sock(link, {kIpB, kIpA, 2000, 1000, true});
    for (int i = 0; i < 2; ++i) {
      auto dg = co_await sock.recv_in_place();
      const bool sent = co_await sock.send_from(dg.payload_addr,
                                                dg.payload_len);
      EXPECT_TRUE(sent);
      sock.release(dg);
    }
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    EthLink link(self, *w.dev_a, w.link_a());
    UdpSocket sock(link, {kIpA, kIpB, 1000, 2000, true});
    co_await self.sleep_for(us(500.0));
    const std::uint8_t ping[] = {0xab, 0xcd, 0xef, 0x01};
    for (int i = 0; i < 2; ++i) {
      const bool sent = co_await sock.send(ping);
      EXPECT_TRUE(sent);
      auto dg = co_await sock.recv_in_place();
      EXPECT_EQ(dg.payload_len, 4u);
      const std::uint8_t* p = w.a->mem(dg.payload_addr, 4);
      ok = p != nullptr && std::memcmp(p, ping, 4) == 0;
      sock.release(dg);
    }
  });
  w.sim.run(us(3e6));
  EXPECT_TRUE(ok);
}

TEST(EthLink, UdpLatencyNearTableII) {
  // Table II Ethernet row: UDP with checksum round trip around 380-400 us
  // (Table I raw Ethernet is 309 us; UDP adds the usual library costs).
  EthWorld w;
  sim::Cycles t0 = 0, t1 = 0;
  constexpr int kIters = 8;
  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    EthLink link(self, *w.dev_b, w.link_b());
    UdpSocket sock(link, {kIpB, kIpA, 2000, 1000, true});
    for (int i = 0; i < kIters; ++i) {
      auto dg = co_await sock.recv_in_place();
      const bool sent = co_await sock.send_from(dg.payload_addr,
                                                dg.payload_len);
      EXPECT_TRUE(sent);
      sock.release(dg);
    }
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    EthLink link(self, *w.dev_a, w.link_a());
    UdpSocket sock(link, {kIpA, kIpB, 1000, 2000, true});
    co_await self.sleep_for(us(1000.0));
    t0 = self.node().now();
    const std::uint8_t ping[] = {1, 2, 3, 4};
    for (int i = 0; i < kIters; ++i) {
      const bool sent = co_await sock.send(ping);
      EXPECT_TRUE(sent);
      auto dg = co_await sock.recv_in_place();
      sock.release(dg);
    }
    t1 = self.node().now();
  });
  w.sim.run(us(3e6));
  const double rtt = sim::to_us(t1 - t0) / kIters;
  EXPECT_GT(rtt, 350.0);
  EXPECT_LT(rtt, 460.0);
}

TEST(EthLink, TcpTransferOverEthernet) {
  EthWorld w;
  constexpr std::uint32_t kLen = 48 * 1024;
  bool data_ok = false;

  auto cfg_for = [](Ipv4Addr local, Ipv4Addr remote, std::uint16_t lp,
                    std::uint16_t rp, std::uint32_t iss) {
    TcpConfig c;
    c.local_ip = local;
    c.remote_ip = remote;
    c.local_port = lp;
    c.remote_port = rp;
    c.iss = iss;
    c.mss = 1456;  // fits a 1518-byte frame with all headers, word-aligned
    return c;
  };

  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    EthLink link(self, *w.dev_b, w.link_b());
    TcpConnection conn(link, cfg_for(kIpB, kIpA, 5000, 4000, 900));
    const bool accepted = co_await conn.accept();
    EXPECT_TRUE(accepted);
    const std::uint32_t buf = self.segment().base;
    std::uint32_t got = 0;
    while (got < kLen) {
      const std::uint32_t n = co_await conn.read_into(buf + got, kLen - got);
      if (n == 0) break;
      got += n;
    }
    util::Rng rng(21);
    bool ok = got == kLen;
    const std::uint8_t* p = w.b->mem(buf, kLen);
    for (std::uint32_t i = 0; i < kLen && ok; ++i) {
      ok = p[i] == static_cast<std::uint8_t>(rng.next());
    }
    data_ok = ok;
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    EthLink link(self, *w.dev_a, w.link_a());
    TcpConnection conn(link, cfg_for(kIpA, kIpB, 4000, 5000, 100));
    co_await self.sleep_for(us(500.0));
    const bool connected = co_await conn.connect();
    EXPECT_TRUE(connected);
    const std::uint32_t buf = self.segment().base;
    util::Rng rng(21);
    std::uint8_t* p = w.a->mem(buf, kLen);
    for (std::uint32_t i = 0; i < kLen; ++i) {
      p[i] = static_cast<std::uint8_t>(rng.next());
    }
    for (std::uint32_t off = 0; off < kLen; off += 8192) {
      const bool wrote =
          co_await conn.write_from(buf + off, std::min(8192u, kLen - off));
      EXPECT_TRUE(wrote);
    }
  });
  w.sim.run(us(5e6));
  EXPECT_TRUE(data_ok);
}

TEST(EthLink, DpfDemuxesTwoEndpointsByPort) {
  EthWorld w;
  int got_53 = 0, got_80 = 0;
  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    EthLink::Config c53 = w.link_b();
    // UDP dst port lives at frame offset 14 + 20 + 2 = 36.
    c53.extra_atoms = {dpf::atom_be16(36, 53)};
    c53.rx_buffers = 4;
    EthLink link53(self, *w.dev_b, c53);
    EthLink::Config c80 = w.link_b();
    c80.extra_atoms = {dpf::atom_be16(36, 80)};
    c80.rx_buffers = 4;
    EthLink link80(self, *w.dev_b, c80);
    UdpSocket s53(link53, {kIpB, kIpA, 53, 1000, false});
    UdpSocket s80(link80, {kIpB, kIpA, 80, 1000, false});
    auto dg = co_await s53.recv_in_place();
    ++got_53;
    s53.release(dg);
    dg = co_await s80.recv_in_place();
    ++got_80;
    s80.release(dg);
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    EthLink link(self, *w.dev_a, w.link_a());
    UdpSocket to53(link, {kIpA, kIpB, 1000, 53, false});
    UdpSocket to80(link, {kIpA, kIpB, 1000, 80, false});
    co_await self.sleep_for(us(500.0));
    const std::uint8_t m[] = {1, 2, 3, 4};
    bool sent = co_await to53.send(m);
    EXPECT_TRUE(sent);
    co_await self.sleep_for(us(500.0));
    sent = co_await to80.send(m);
    EXPECT_TRUE(sent);
  });
  w.sim.run(us(3e6));
  EXPECT_EQ(got_53, 1);
  EXPECT_EQ(got_80, 1);
}

}  // namespace
}  // namespace ash::proto
