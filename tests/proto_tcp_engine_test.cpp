// TcpEngine scale mechanics: the sharded connection table, the listener
// SYN backlog, and many concurrent flows multiplexed over one link
// binding — the c10k bench's machinery at a test-sized scale.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/rx_queue.hpp"
#include "proto/an2_link.hpp"
#include "proto/tcp_engine.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"

namespace ash::proto {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

const Ipv4Addr kIpA = Ipv4Addr::of(10, 0, 0, 1);
const Ipv4Addr kIpB = Ipv4Addr::of(10, 0, 0, 2);

An2Link::Config big_link_cfg() {
  An2Link::Config cfg;
  cfg.rx_buffers = 256;  // absorb whole SYN/ACK waves
  cfg.buf_size = 1536;
  return cfg;
}

TEST(TcpEngineScale, ManyConnectionsEchoAndShardByFlowHash) {
  // 128 concurrent flows from one client engine to one server engine:
  // every one must establish, echo a message, and tear down; while all
  // are up, the connection table must be sharded exactly where the RX
  // steering hash says each flow belongs.
  constexpr std::size_t kConns = 128;
  constexpr std::size_t kShards = 4;
  const std::string msg = "the fast path belongs to the application";

  Simulator sim;
  Node& na = sim.add_node("a");
  Node& nb = sim.add_node("b");
  net::An2Device dev_a(na), dev_b(nb);
  dev_a.connect(dev_b);

  std::size_t echoed_ok = 0;
  std::uint64_t accepted = 0;
  bool server_done = false, client_done = false;
  bool shards_match = false, shards_spread = false, sizes_sum = false;
  TcpEngine::Stats stats_a{}, stats_b{};

  nb.kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, dev_b, big_link_cfg());
    TcpEngine::Config cfg;
    cfg.local_ip = kIpB;
    cfg.shards = kShards;
    TcpEngine eng(link, cfg);
    TcpEngine::ListenConfig lc;
    lc.backlog = 256;
    lc.callbacks.on_readable = [&](TcpEngine::ConnId id) {
      std::uint8_t buf[256];
      for (;;) {
        const std::size_t n = eng.read(id, buf, sizeof buf);
        if (n == 0) break;
        eng.write(id, {buf, n});  // echo
      }
      if (eng.at_eof(id)) eng.close(id);
    };
    TcpEngine::TcpListener& l = eng.listen(80, lc);
    co_await eng.run(server_done, self.node().now() + us(3e6));
    accepted = l.accepted;
    stats_b = eng.stats();
  });

  na.kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, dev_a, big_link_cfg());
    TcpEngine::Config cfg;
    cfg.local_ip = kIpA;
    cfg.shards = kShards;
    TcpEngine eng(link, cfg);

    std::size_t established = 0;
    std::unordered_map<TcpEngine::ConnId, std::string> echoes;
    std::unordered_set<TcpEngine::ConnId> finished;
    std::vector<TcpEngine::ConnId> ids;
    TcpEngine::Callbacks cbs;
    cbs.on_established = [&](TcpEngine::ConnId) { ++established; };
    cbs.on_readable = [&](TcpEngine::ConnId id) {
      std::uint8_t buf[256];
      for (;;) {
        const std::size_t n = eng.read(id, buf, sizeof buf);
        if (n == 0) break;
        echoes[id].append(reinterpret_cast<const char*>(buf), n);
      }
      // The client initiates close: full echo received -> FIN. The server
      // answers with its own close on EOF.
      if (echoes[id].size() >= msg.size() && finished.insert(id).second) {
        if (echoes[id] == msg) ++echoed_ok;
        eng.close(id);
      }
    };

    for (std::size_t i = 0; i < kConns; ++i) {
      const auto port = static_cast<std::uint16_t>(4000 + i);
      const TcpEngine::ConnId id = eng.connect(kIpB, 80, port, cbs);
      EXPECT_NE(id, 0u);
      ids.push_back(id);
    }
    // Wait until every flow is up, then audit the table's sharding.
    const sim::Cycles limit = self.node().now() + us(2e6);
    while (established < kConns && self.node().now() < limit) {
      const bool got = co_await eng.step(us(500.0));
      (void)got;
    }
    EXPECT_EQ(established, kConns);

    shards_match = true;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const FlowKey key{kIpB, 80, static_cast<std::uint16_t>(4000 + i)};
      const std::size_t want = cfg.steering.pick(
          flow_channel(kIpA, key), nullptr, kShards);
      shards_match &= eng.shard_of(ids[i]) == want;
    }
    const std::vector<std::size_t> sizes = eng.shard_sizes();
    std::size_t nonempty = 0, total = 0;
    for (const std::size_t s : sizes) {
      nonempty += s > 0 ? 1 : 0;
      total += s;
    }
    shards_spread = nonempty >= 2;  // FNV spreads 128 flows past 1 shard
    sizes_sum = total == eng.open_connections();

    for (const TcpEngine::ConnId id : ids) {
      const bool ok = eng.write(
          id, {reinterpret_cast<const std::uint8_t*>(msg.data()),
               msg.size()});
      EXPECT_TRUE(ok);
    }
    while (eng.open_connections() > 0 && self.node().now() < limit) {
      const bool got = co_await eng.step(us(500.0));
      (void)got;
    }
    stats_a = eng.stats();
    client_done = true;
    server_done = true;
  });

  sim.run(us(4e6));

  EXPECT_TRUE(client_done);
  EXPECT_EQ(echoed_ok, kConns);
  EXPECT_EQ(accepted, kConns);
  EXPECT_TRUE(shards_match);
  EXPECT_TRUE(shards_spread);
  EXPECT_TRUE(sizes_sum);
  EXPECT_EQ(stats_a.conns_opened, kConns);
  EXPECT_EQ(stats_a.conns_closed, kConns);
  EXPECT_EQ(stats_b.conns_accepted, kConns);
}

TEST(TcpEngineScale, SynBacklogOverflowDropsAndRecovers) {
  // 32 simultaneous SYNs against a backlog of 8: the excess is dropped
  // silently (counted), and the clients' SYN retransmission eventually
  // lands every connection anyway — the kernel-SYN-queue contract.
  constexpr std::size_t kConns = 32;
  Simulator sim;
  Node& na = sim.add_node("a");
  Node& nb = sim.add_node("b");
  net::An2Device dev_a(na), dev_b(nb);
  dev_a.connect(dev_b);

  std::size_t established = 0;
  std::uint64_t backlog_drops = 0, accepted = 0;
  bool server_stop = false;
  TcpEngine::Stats stats_b{};

  nb.kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, dev_b, big_link_cfg());
    TcpEngine::Config cfg;
    cfg.local_ip = kIpB;
    cfg.rx_batch = 64;
    TcpEngine eng(link, cfg);
    TcpEngine::ListenConfig lc;
    lc.backlog = 8;
    TcpEngine::TcpListener& l = eng.listen(80, lc);
    // Sleep through the first SYN wave so it arrives as one burst: the
    // whole wave hits the backlog check in a single rx batch.
    co_await self.sleep_for(us(30000.0));
    co_await eng.run(server_stop, self.node().now() + us(3e6));
    backlog_drops = l.backlog_drops;
    accepted = l.accepted;
    stats_b = eng.stats();
  });

  na.kernel().spawn("clients", [&](Process& self) -> Task {
    An2Link link(self, dev_a, big_link_cfg());
    TcpEngine::Config cfg;
    cfg.local_ip = kIpA;
    cfg.rto = us(5000.0);  // fast SYN retry waves
    cfg.min_rto = us(5000.0);
    cfg.max_retries = 12;
    TcpEngine eng(link, cfg);
    TcpEngine::Callbacks cbs;
    cbs.on_established = [&](TcpEngine::ConnId) { ++established; };
    for (std::size_t i = 0; i < kConns; ++i) {
      const auto port = static_cast<std::uint16_t>(4000 + i);
      const TcpEngine::ConnId id = eng.connect(kIpB, 80, port, cbs);
      EXPECT_NE(id, 0u);
    }
    const sim::Cycles limit = self.node().now() + us(2e6);
    while (established < kConns && self.node().now() < limit) {
      const bool got = co_await eng.step(us(2000.0));
      (void)got;
    }
    // The client counts a flow up at SYN/ACK time; the server counts it
    // at the final ACK (possibly a retransmitted handshake). Keep
    // stepping so every third ACK lands before the server stops.
    const sim::Cycles drain_until = self.node().now() + us(300000.0);
    while (self.node().now() < drain_until) {
      const bool got = co_await eng.step(us(5000.0));
      (void)got;
    }
    server_stop = true;
  });

  sim.run(us(4e6));

  EXPECT_EQ(established, kConns);  // everyone got in eventually
  EXPECT_EQ(accepted, kConns);
  EXPECT_GT(backlog_drops, 0u);  // but not on the first wave
  EXPECT_EQ(stats_b.syn_backlog_drops, backlog_drops);
}

TEST(TcpEngineScale, ConnectRejectsFourTupleCollision) {
  Simulator sim;
  Node& na = sim.add_node("a");
  net::An2Device dev_a(na);  // never connected: SYNs go nowhere
  bool checked = false;

  na.kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, dev_a, {});
    TcpEngine::Config cfg;
    cfg.local_ip = kIpA;
    TcpEngine eng(link, cfg);
    const TcpEngine::ConnId first = eng.connect(kIpB, 80, 4000, {});
    EXPECT_NE(first, 0u);
    const TcpEngine::ConnId dup = eng.connect(kIpB, 80, 4000, {});
    EXPECT_EQ(dup, 0u);  // same 4-tuple: refused
    const TcpEngine::ConnId other = eng.connect(kIpB, 80, 4001, {});
    EXPECT_NE(other, 0u);
    EXPECT_EQ(eng.open_connections(), 2u);
    checked = true;
    co_return;
  });
  sim.run(us(1000.0));
  EXPECT_TRUE(checked);
}

TEST(TcpEngineScale, FlowChannelIsStableAndSpreads) {
  // The shared flow label: deterministic per 4-tuple, sensitive to every
  // field, and well-spread across queues for port-varied flows.
  const int a = net::SteeringPolicy::flow_channel(1, 2, 3, 4);
  EXPECT_EQ(a, net::SteeringPolicy::flow_channel(1, 2, 3, 4));
  EXPECT_NE(a, net::SteeringPolicy::flow_channel(2, 2, 3, 4));
  EXPECT_NE(a, net::SteeringPolicy::flow_channel(1, 2, 4, 3));
  EXPECT_GE(a, 0);  // folded to 31 bits, valid channel index

  std::vector<int> hits(8, 0);
  for (std::uint16_t port = 1024; port < 1024 + 512; ++port) {
    const int ch = net::SteeringPolicy::flow_channel(
        kIpA.value, kIpB.value, port, 80);
    ++hits[static_cast<std::size_t>(ch) % hits.size()];
  }
  for (const int h : hits) EXPECT_GT(h, 0);  // no starved queue
}

}  // namespace
}  // namespace ash::proto
