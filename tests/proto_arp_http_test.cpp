#include <gtest/gtest.h>

#include <cstring>

#include "proto/arp.hpp"
#include "proto/eth_link.hpp"
#include "proto/http.hpp"
#include "proto/ip_frag.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace ash::proto {
namespace {

using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

const Ipv4Addr kIpA = Ipv4Addr::of(192, 168, 0, 1);
const Ipv4Addr kIpB = Ipv4Addr::of(192, 168, 0, 2);
const MacAddr kMacA{{{2, 0, 0, 0, 0, 1}}};
const MacAddr kMacB{{{2, 0, 0, 0, 0, 2}}};

struct EthWorld {
  Simulator sim;
  Node* a;
  Node* b;
  net::EthernetDevice* dev_a;
  net::EthernetDevice* dev_b;

  EthWorld() {
    a = &sim.add_node("a");
    b = &sim.add_node("b");
    dev_a = new net::EthernetDevice(*a);
    dev_b = new net::EthernetDevice(*b);
    dev_a->connect(*dev_b);
  }
  ~EthWorld() {
    delete dev_a;
    delete dev_b;
  }
};

// ------------------------------------------------------------------- ARP

TEST(Arp, ResolvesPeerAddress) {
  EthWorld w;
  std::optional<MacAddr> resolved;
  std::uint64_t served = 0;

  w.b->kernel().spawn("responder", [&](Process& self) -> Task {
    ArpService arp(self, *w.dev_b, {kMacB, kIpB});
    co_await arp.serve(us(50000.0));
    served = arp.requests_answered();
  });
  w.a->kernel().spawn("resolver", [&](Process& self) -> Task {
    ArpService arp(self, *w.dev_a, {kMacA, kIpA});
    co_await self.sleep_for(us(1000.0));
    resolved = co_await arp.resolve(kIpB, us(20000.0));
  });
  w.sim.run(us(2e5));
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(*resolved, kMacB);
  EXPECT_EQ(served, 1u);
}

TEST(Arp, CachesAndLearnsFromTraffic) {
  EthWorld w;
  std::optional<MacAddr> first, second, learned_by_b;
  w.b->kernel().spawn("responder", [&](Process& self) -> Task {
    ArpService arp(self, *w.dev_b, {kMacB, kIpB});
    co_await arp.serve(us(30000.0));
    // The responder learned A's binding from A's request.
    learned_by_b = arp.lookup(kIpA);
  });
  w.a->kernel().spawn("resolver", [&](Process& self) -> Task {
    ArpService arp(self, *w.dev_a, {kMacA, kIpA});
    co_await self.sleep_for(us(1000.0));
    first = co_await arp.resolve(kIpB, us(20000.0));
    // Second resolve must hit the cache (no wait).
    const sim::Cycles t0 = self.node().now();
    second = co_await arp.resolve(kIpB, us(20000.0));
    EXPECT_LT(sim::to_us(self.node().now() - t0), 5.0);
  });
  w.sim.run(us(2e5));
  EXPECT_TRUE(first.has_value());
  EXPECT_TRUE(second.has_value());
  ASSERT_TRUE(learned_by_b.has_value());
  EXPECT_EQ(*learned_by_b, kMacA);
}

TEST(Arp, ResolveTimesOutWithNoResponder) {
  EthWorld w;
  std::optional<MacAddr> resolved = MacAddr{};
  w.a->kernel().spawn("resolver", [&](Process& self) -> Task {
    ArpService arp(self, *w.dev_a, {kMacA, kIpA});
    co_await self.sleep_for(us(500.0));
    resolved = co_await arp.resolve(kIpB, us(5000.0));
  });
  w.sim.run(us(1e5));
  EXPECT_FALSE(resolved.has_value());
}

TEST(Arp, RarpReverseResolution) {
  EthWorld w;
  std::optional<Ipv4Addr> who;
  w.b->kernel().spawn("rarp-server", [&](Process& self) -> Task {
    ArpService arp(self, *w.dev_b, {kMacB, kIpB});
    arp.add_static(kIpA, kMacA);  // boot-server style table
    co_await arp.serve(us(50000.0));
  });
  w.a->kernel().spawn("booting", [&](Process& self) -> Task {
    ArpService arp(self, *w.dev_a, {kMacA, Ipv4Addr{}});
    co_await self.sleep_for(us(1000.0));
    who = co_await arp.rarp_resolve(kMacA, us(20000.0));
  });
  w.sim.run(us(2e5));
  ASSERT_TRUE(who.has_value());
  EXPECT_EQ(*who, kIpA);
}

// ----------------------------------------------------------- IP fragments

std::vector<std::uint8_t> make_datagram(Ipv4Addr src, std::uint16_t ident,
                                        std::uint16_t frag_off_bytes,
                                        bool more,
                                        std::span<const std::uint8_t> pay) {
  std::vector<std::uint8_t> d(kIpHeaderLen + pay.size());
  IpHeader h;
  h.protocol = kIpProtoUdp;
  h.src = src;
  h.dst = Ipv4Addr::of(10, 0, 0, 9);
  h.total_len = static_cast<std::uint16_t>(d.size());
  h.ident = ident;
  h.more_fragments = more;
  h.frag_offset = frag_off_bytes / 8;
  encode_ip({d.data(), kIpHeaderLen}, h);
  std::memcpy(d.data() + kIpHeaderLen, pay.data(), pay.size());
  return d;
}

TEST(IpReassembler, PassesUnfragmentedThrough) {
  IpReassembler r;
  const std::uint8_t pay[] = {1, 2, 3, 4, 5};
  const auto d = make_datagram(kIpA, 7, 0, false, pay);
  const auto out = r.feed(d);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload.size(), 5u);
  EXPECT_EQ(out->payload[4], 5);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(IpReassembler, ReassemblesOutOfOrder) {
  IpReassembler r;
  util::Rng rng(3);
  std::vector<std::uint8_t> pay(24 + 24 + 10);  // 2 full blocks + tail
  for (auto& b : pay) b = static_cast<std::uint8_t>(rng.next());

  const auto f0 = make_datagram(kIpA, 9, 0, true, {pay.data(), 24});
  const auto f1 = make_datagram(kIpA, 9, 24, true, {pay.data() + 24, 24});
  const auto f2 = make_datagram(kIpA, 9, 48, false, {pay.data() + 48, 10});

  EXPECT_FALSE(r.feed(f2).has_value());  // last first
  EXPECT_FALSE(r.feed(f0).has_value());
  const auto out = r.feed(f1);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload, pay);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(IpReassembler, ToleratesDuplicates) {
  IpReassembler r;
  const std::uint8_t a[24] = {1}, b[8] = {2};
  const auto f0 = make_datagram(kIpA, 1, 0, true, a);
  const auto f1 = make_datagram(kIpA, 1, 24, false, b);
  EXPECT_FALSE(r.feed(f0).has_value());
  EXPECT_FALSE(r.feed(f0).has_value());  // duplicate
  ASSERT_TRUE(r.feed(f1).has_value());
}

TEST(IpReassembler, KeepsDistinctDatagramsApart) {
  IpReassembler r;
  const std::uint8_t a[8] = {0xaa}, b[8] = {0xbb};
  EXPECT_FALSE(r.feed(make_datagram(kIpA, 1, 0, true, a)).has_value());
  EXPECT_FALSE(r.feed(make_datagram(kIpB, 1, 0, true, b)).has_value());
  EXPECT_EQ(r.pending(), 2u);
  const auto da = r.feed(make_datagram(kIpA, 1, 8, false, b));
  ASSERT_TRUE(da.has_value());
  EXPECT_EQ(da->payload[0], 0xaa);
  EXPECT_EQ(r.pending(), 1u);
}

TEST(IpReassembler, ExpiresStalePartials) {
  IpReassembler r;
  const std::uint8_t a[8] = {1};
  EXPECT_FALSE(r.feed(make_datagram(kIpA, 1, 0, true, a)).has_value());
  for (int i = 0; i < 20; ++i) {
    (void)r.feed(make_datagram(kIpB, static_cast<std::uint16_t>(100 + i), 0,
                               false, a));
  }
  r.expire(10);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(IpFragmentation, SplitsAndReassemblesOverEthernet) {
  EthWorld w;
  constexpr std::uint32_t kLen = 5000;  // > 3 fragments at 1500 MTU
  std::vector<std::uint8_t> received;
  int datagrams_seen = 0;

  w.b->kernel().spawn("rx", [&](Process& self) -> Task {
    EthLink link(self, *w.dev_b, {kMacB, kMacA});
    IpReassembler reass;
    sim::Node& node = self.node();
    while (received.empty()) {
      const net::RxDesc d = co_await link.recv();
      const std::uint8_t* p =
          node.mem(d.addr + link.rx_ip_offset(), d.len - link.rx_ip_offset());
      ++datagrams_seen;
      auto out = reass.feed({p, d.len - link.rx_ip_offset()});
      link.release(d);
      if (out.has_value()) received = std::move(out->payload);
    }
  });
  w.a->kernel().spawn("tx", [&](Process& self) -> Task {
    EthLink link(self, *w.dev_a, {kMacA, kMacB});
    co_await self.sleep_for(us(500.0));
    const std::uint32_t buf = self.segment().base;
    util::Rng rng(8);
    std::uint8_t* p = self.node().mem(buf, kLen);
    for (std::uint32_t i = 0; i < kLen; ++i) {
      p[i] = static_cast<std::uint8_t>(rng.next());
    }
    const bool ok = co_await ip_send_fragmented(link, kIpA, kIpB,
                                                kIpProtoUdp, buf, kLen, 77);
    EXPECT_TRUE(ok);
  });
  w.sim.run(us(1e6));
  ASSERT_EQ(received.size(), kLen);
  util::Rng rng(8);
  for (std::uint32_t i = 0; i < kLen; ++i) {
    ASSERT_EQ(received[i], static_cast<std::uint8_t>(rng.next())) << i;
  }
  EXPECT_GE(datagrams_seen, 4);
}

// ------------------------------------------------------------------ HTTP

TEST(Http, GetServesContent) {
  EthWorld w;
  std::optional<HttpResponse> response;
  std::optional<std::string> served_path;

  auto cfg_for = [](bool client) {
    TcpConfig c;
    c.local_ip = client ? kIpA : kIpB;
    c.remote_ip = client ? kIpB : kIpA;
    c.local_port = client ? 4000 : 80;
    c.remote_port = client ? 80 : 4000;
    c.iss = client ? 100 : 900;
    c.mss = 1456;
    return c;
  };

  w.b->kernel().spawn("httpd", [&](Process& self) -> Task {
    EthLink link(self, *w.dev_b, {kMacB, kMacA});
    TcpConnection conn(link, cfg_for(false));
    const bool accepted = co_await conn.accept();
    EXPECT_TRUE(accepted);
    served_path = co_await http_serve_one(
        conn, [](const std::string& path)
                  -> std::optional<std::vector<std::uint8_t>> {
          if (path != "/index.html") return std::nullopt;
          const char* body = "<html>hello from the exokernel</html>";
          return std::vector<std::uint8_t>(body, body + std::strlen(body));
        });
  });
  w.a->kernel().spawn("browser", [&](Process& self) -> Task {
    EthLink link(self, *w.dev_a, {kMacA, kMacB});
    TcpConnection conn(link, cfg_for(true));
    co_await self.sleep_for(us(500.0));
    const bool connected = co_await conn.connect();
    EXPECT_TRUE(connected);
    response = co_await http_get(conn, "/index.html");
  });
  w.sim.run(us(5e6));
  ASSERT_TRUE(served_path.has_value());
  EXPECT_EQ(*served_path, "/index.html");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
  const std::string body(response->body.begin(), response->body.end());
  EXPECT_EQ(body, "<html>hello from the exokernel</html>");
}

TEST(Http, MissingPathGives404) {
  EthWorld w;
  std::optional<HttpResponse> response;
  auto cfg_for = [](bool client) {
    TcpConfig c;
    c.local_ip = client ? kIpA : kIpB;
    c.remote_ip = client ? kIpB : kIpA;
    c.local_port = client ? 4000 : 80;
    c.remote_port = client ? 80 : 4000;
    c.iss = client ? 100 : 900;
    c.mss = 1456;
    return c;
  };
  w.b->kernel().spawn("httpd", [&](Process& self) -> Task {
    EthLink link(self, *w.dev_b, {kMacB, kMacA});
    TcpConnection conn(link, cfg_for(false));
    const bool accepted = co_await conn.accept();
    EXPECT_TRUE(accepted);
    (void)co_await http_serve_one(
        conn, [](const std::string&)
                  -> std::optional<std::vector<std::uint8_t>> {
          return std::nullopt;
        });
  });
  w.a->kernel().spawn("browser", [&](Process& self) -> Task {
    EthLink link(self, *w.dev_a, {kMacA, kMacB});
    TcpConnection conn(link, cfg_for(true));
    co_await self.sleep_for(us(500.0));
    const bool connected = co_await conn.connect();
    EXPECT_TRUE(connected);
    response = co_await http_get(conn, "/nope");
  });
  w.sim.run(us(5e6));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 404);
}

}  // namespace
}  // namespace ash::proto
