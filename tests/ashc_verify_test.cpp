// The rejection half of the rule-compiler safety argument: hostile rule
// sets must come back from the verifier's bounds pass with the RIGHT
// typed error — and never crash, never install. Three layers:
//   1. a table of hand-crafted hostile rule sets, each pinned to the
//      VerifyCode its violation must produce;
//   2. hand-written VCODE (not compiler output) that the bounds pass
//      cannot track — the Untracked codes and the DILP ban;
//   3. the generator's hostilize() oracle, looped: every mutation is
//      rejected at exactly the stage it names.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ashc/compile.hpp"
#include "ashc/gen.hpp"
#include "ashc/rule.hpp"
#include "util/rng.hpp"
#include "vcode/builder.hpp"
#include "vcode/verifier.hpp"

namespace ash::ashc {
namespace {

using vcode::VerifyCode;

/// Compile `rs` (must succeed) and return the bounds-pass verdict.
vcode::VerifyResult verify_rules(const RuleSet& rs) {
  const Compiled c = compile(rs);
  EXPECT_TRUE(c.ok) << c.error;
  if (!c.ok) return {};
  return vcode::verify(c.program, verify_policy(rs));
}

RuleSet base_set() {
  RuleSet rs;
  rs.name = "hostile";
  rs.limits.max_frame_bytes = 96;
  rs.limits.state_bytes = 64;
  rs.limits.send_cap = 64;
  return rs;
}

Rule always(const char* name) {
  Rule r;
  r.name = name;
  r.pred = p_and({});  // empty And: always true
  return r;
}

TEST(AshcVerify, HostileRuleTable) {
  struct Case {
    const char* name;
    RuleSet rs;
    VerifyCode expect;
  };
  std::vector<Case> cases;

  {  // Match word extends past the message window.
    RuleSet rs = base_set();
    Rule r = always("peek-oob");
    r.pred = p_atom(m_eq(rs.limits.max_frame_bytes - 1, 4, 7));
    rs.rules.push_back(r);
    cases.push_back({"msgload-oob", rs, VerifyCode::MsgLoadOutOfWindow});
  }
  {  // Checksum source word past the window.
    RuleSet rs = base_set();
    Rule r = always("cksum-oob");
    r.actions.push_back(
        a_store_cksum(0, rs.limits.max_frame_bytes - 4, 12));
    rs.rules.push_back(r);
    cases.push_back({"cksum-oob", rs, VerifyCode::MsgLoadOutOfWindow});
  }
  {  // Reply longer than the declared send cap.
    RuleSet rs = base_set();
    Rule r = always("reply-over-cap");
    r.actions.push_back(a_reply(0, rs.limits.send_cap + 4, 0));
    rs.rules.push_back(r);
    cases.push_back({"send-over-cap", rs, VerifyCode::SendOverCap});
  }
  {  // Reply range runs off the end of the state window.
    RuleSet rs = base_set();
    Rule r = always("reply-state-oob");
    r.actions.push_back(a_reply(rs.limits.state_bytes - 4, 8, 0));
    rs.rules.push_back(r);
    cases.push_back({"send-oob", rs, VerifyCode::SendOutOfWindow});
  }
  {  // Copy destination range outside the state window.
    RuleSet rs = base_set();
    Rule r = always("copy-state-oob");
    r.actions.push_back(a_copy(rs.limits.state_bytes - 2, 0, 8));
    rs.rules.push_back(r);
    cases.push_back({"copy-oob", rs, VerifyCode::CopyOutOfWindow});
  }
  {  // Counter word at state_bytes: plain sw outside the window.
    RuleSet rs = base_set();
    Rule r = always("count-oob");
    r.actions.push_back(a_count(rs.limits.state_bytes));
    rs.rules.push_back(r);
    cases.push_back({"mem-oob", rs, VerifyCode::MemOutOfWindow});
  }
  {  // Splice destination writes template bytes beyond the state window.
    RuleSet rs = base_set();
    Rule r = always("splice-oob");
    r.actions.push_back(a_reply(rs.limits.state_bytes - 8, 8, 0,
                                {Splice{6, false, Field{0, 4}, 0}}));
    rs.rules.push_back(r);
    cases.push_back({"splice-oob", rs, VerifyCode::MemOutOfWindow});
  }

  for (const Case& c : cases) {
    const auto res = verify_rules(c.rs);
    EXPECT_FALSE(res.ok()) << c.name << ": hostile rule verified clean";
    EXPECT_TRUE(res.has(c.expect))
        << c.name << ": wrong code(s):\n" << res.to_string();
    // Every issue out of the bounds pass is typed — nothing collapses to
    // the generic structural bucket.
    for (const auto& issue : res.issues) {
      EXPECT_NE(issue.code, VerifyCode::Structural)
          << c.name << " pc " << issue.pc << ": " << issue.message;
    }
  }
}

// --------------------------------------------- untrackable hand-written

vcode::VerifyPolicy bounds_policy() {
  vcode::VerifyPolicy p;
  p.allow_indirect = false;
  p.bounds.enabled = true;
  p.bounds.msg_window = 96;
  p.bounds.state_window = 64;
  p.bounds.send_cap = 64;
  return p;
}

TEST(AshcVerify, UntrackedMsgLoadOffset) {
  vcode::Builder b;
  const vcode::Reg t = b.reg();
  // Offset derived from message CONTENTS — not a constant the dataflow
  // can bound.
  b.t_msgload(t, vcode::kRegZero, 0);
  b.t_msgload(t, t, 0);
  b.halt();
  const auto res = vcode::verify(b.take(), bounds_policy());
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.has(VerifyCode::MsgLoadUntracked)) << res.to_string();
}

TEST(AshcVerify, UntrackedPlainMemoryBase) {
  vcode::Builder b;
  const vcode::Reg t = b.reg();
  b.t_msgload(t, vcode::kRegZero, 0);
  b.lw(t, t, 0);  // base register holds message data: untracked
  b.halt();
  const auto res = vcode::verify(b.take(), bounds_policy());
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.has(VerifyCode::MemUntracked)) << res.to_string();
}

TEST(AshcVerify, UntrackedSendOperands) {
  vcode::Builder b;
  const vcode::Reg a = b.reg();
  const vcode::Reg l = b.reg();
  b.t_msgload(a, vcode::kRegZero, 0);
  b.movi(l, 4);
  b.t_send(vcode::kRegArg3, a, l);  // address from message contents
  b.halt();
  const auto res = vcode::verify(b.take(), bounds_policy());
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.has(VerifyCode::SendUntracked)) << res.to_string();
}

TEST(AshcVerify, UntrackedCopyLength) {
  vcode::Builder b;
  const vcode::Reg len = b.reg();
  b.t_msgload(len, vcode::kRegZero, 0);
  b.t_usercopy(vcode::kRegArg2, vcode::kRegArg0, len);
  b.halt();
  const auto res = vcode::verify(b.take(), bounds_policy());
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.has(VerifyCode::CopyUntracked)) << res.to_string();
}

TEST(AshcVerify, DilpForbiddenUnderBounds) {
  vcode::Builder b;
  const vcode::Reg id = b.reg();
  b.movi(id, 0);
  b.t_dilp(id, vcode::kRegArg0, vcode::kRegArg2, vcode::kRegArg1);
  b.halt();
  const auto res = vcode::verify(b.take(), bounds_policy());
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.has(VerifyCode::DilpForbidden)) << res.to_string();
}

TEST(AshcVerify, ForwardWholeMessageAlwaysAdmitted) {
  // The steer form — TSend of exactly (r1, r2) — is admitted regardless
  // of the windows; the kernel's runtime range check covers it.
  vcode::Builder b;
  b.t_send(vcode::kRegArg3, vcode::kRegArg0, vcode::kRegArg1);
  b.halt();
  const auto res = vcode::verify(b.take(), bounds_policy());
  EXPECT_TRUE(res.ok()) << res.to_string();
}

TEST(AshcVerify, BoundsPassOffByDefault) {
  // Without bounds.enabled the same out-of-window program is (only)
  // structurally checked — pre-existing handlers are untouched by PR 10.
  vcode::Builder b;
  const vcode::Reg t = b.reg();
  b.t_msgload(t, vcode::kRegZero, 4096);
  b.halt();
  vcode::VerifyPolicy p;
  p.allow_indirect = false;
  const auto res = vcode::verify(b.take(), p);
  EXPECT_TRUE(res.ok()) << res.to_string();
}

// ------------------------------------------------ hostilize() oracle loop

TEST(AshcVerify, HostilizedRuleSetsRejectedAtNamedStage) {
  int compile_stage = 0, verify_stage = 0;
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    util::Rng rng(0xbad'0000u + seed);
    RuleSet rs = random_rule_set(rng);
    const Hostile h = hostilize(rng, rs);
    const Compiled c = compile(rs);
    if (h.stage == HostileStage::Compile) {
      ++compile_stage;
      EXPECT_FALSE(c.ok) << "seed " << seed << " (" << h.what
                         << "): hostile rule set compiled";
      EXPECT_FALSE(c.error.empty()) << "seed " << seed;
    } else {
      ++verify_stage;
      ASSERT_TRUE(c.ok) << "seed " << seed << " (" << h.what
                        << "): " << c.error;
      const auto res = vcode::verify(c.program, verify_policy(rs));
      EXPECT_FALSE(res.ok()) << "seed " << seed << " (" << h.what
                             << "): hostile rule set verified clean";
      for (const auto& issue : res.issues) {
        EXPECT_NE(issue.code, VerifyCode::Structural)
            << "seed " << seed << " (" << h.what << ") pc " << issue.pc
            << ": " << issue.message;
      }
    }
  }
  // Both stages must actually be exercised by the mutation table.
  EXPECT_GT(compile_stage, 50);
  EXPECT_GT(verify_stage, 50);
}

}  // namespace
}  // namespace ash::ashc
