// Multi-tenant isolation: the DRR cycle scheduler in isolation, download
// admission control (buffer pool + handler count), the cycle quota
// end-to-end through AshSystem, the revoke-mid-batch drain regression,
// and a randomized cycle-conservation property across fault/quarantine/
// revoke churn.
#include "core/tenant.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/ash.hpp"
#include "core/supervisor.hpp"
#include "net/an2.hpp"
#include "net/rx_queue.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "vcode/builder.hpp"

namespace ash::core {
namespace {

using sim::MemSegment;
using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;
using vcode::Builder;
using vcode::kRegArg0;
using vcode::kRegArg1;
using vcode::Reg;

/// Faults with DivideByZero iff the first message word is zero — cheap,
/// data-dependent churn for the supervisor without burning timer budget.
vcode::Program div_by_word0_ash() {
  Builder b;
  const Reg v = b.reg();
  const Reg q = b.reg();
  b.lw(v, kRegArg0, 0);
  b.divu(q, kRegArg1, v);
  b.movi(kRegArg0, 1);
  b.halt();
  return b.take();
}

constexpr std::uint8_t kBadMsg[4] = {0, 0, 0, 0};
constexpr std::uint8_t kGoodMsg[4] = {1, 0, 0, 0};

constexpr std::size_t kCycleQuota =
    static_cast<std::size_t>(TenantDeny::CycleQuota);
constexpr std::size_t kRevokedDeny =
    static_cast<std::size_t>(TenantDeny::Revoked);

// ---------------------------------------------------------------------------
// The DRR engine alone: accounts, weights, replenish, burst cap.
// ---------------------------------------------------------------------------

TEST(TenantScheduler, DrrWeightsProportionAndOverdrawRepayment) {
  Simulator sim;
  Node& n = sim.add_node("n");
  Process p1(n, 1, "t1", MemSegment{0, 4096});
  Process p2(n, 2, "t2", MemSegment{4096, 4096});
  TenantSchedulerConfig cfg;
  cfg.replenish_period = 1000;  // raw cycles: one round per 1000
  cfg.quantum_per_weight = 100;
  cfg.burst_rounds = 2;
  TenantScheduler ts(n, cfg);
  ts.set_weight(p2, 3);

  // t=0: a fresh account banks exactly one round, scaled by weight.
  EXPECT_TRUE(ts.admit_cycles(p1));
  ts.charge(p1, 100);  // deficit -> 0: spent the round exactly
  EXPECT_FALSE(ts.admit_cycles(p1));
  EXPECT_TRUE(ts.admit_cycles(p2));
  ts.charge(p2, 250);  // weight-3 round = 300; 50 left
  EXPECT_TRUE(ts.admit_cycles(p2));
  ts.charge(p2, 350);  // one admitted run may overdraw: deficit -300
  EXPECT_FALSE(ts.admit_cycles(p2));

  const TenantAccount* a1 = ts.find_account(1);
  const TenantAccount* a2 = ts.find_account(2);
  ASSERT_NE(a1, nullptr);
  ASSERT_NE(a2, nullptr);
  EXPECT_EQ(a1->denials[kCycleQuota], 1u);
  EXPECT_EQ(a2->denials[kCycleQuota], 1u);
  EXPECT_EQ(a1->cycles_charged, 100u);
  EXPECT_EQ(a2->cycles_charged, 600u);
  EXPECT_EQ(a2->runs, 2u);

  sim.queue().schedule_at(1500, [&] {
    // One round elapsed. p1 earns 100 and runs again; p2's earnings only
    // repay the overdraw (-300 + 300 = 0): the debt is real.
    EXPECT_TRUE(ts.admit_cycles(p1));
    EXPECT_FALSE(ts.admit_cycles(p2));
  });
  sim.queue().schedule_at(5500, [&] {
    // Four more rounds elapsed but the bank caps at burst_rounds = 2
    // rounds: p1 can spend at most 200, not 500.
    EXPECT_TRUE(ts.admit_cycles(p1));
    ts.charge(p1, 200);
    EXPECT_FALSE(ts.admit_cycles(p1));
    // p2 is back in credit (capped at 2 x 300).
    EXPECT_TRUE(ts.admit_cycles(p2));
    ts.charge(p2, 600);
    EXPECT_FALSE(ts.admit_cycles(p2));
  });
  sim.run();
}

TEST(TenantScheduler, RevokedAccountIsDeniedAndItsDebtWrittenOff) {
  Simulator sim;
  Node& n = sim.add_node("n");
  Process p(n, 5, "t", MemSegment{0, 4096});
  TenantSchedulerConfig cfg;
  cfg.replenish_period = 1000;
  cfg.quantum_per_weight = 100;
  TenantScheduler ts(n, cfg);

  EXPECT_TRUE(ts.admit_cycles(p));
  ts.charge(p, 5000);  // deep overdraw
  ts.on_owner_revoked(p);

  const TenantAccount* a = ts.find_account(5);
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->revoked);
  EXPECT_EQ(a->deficit, 0);  // the write-off: no debt survives revocation
  EXPECT_FALSE(ts.admit_cycles(p));
  EXPECT_EQ(a->denials[kRevokedDeny], 1u);
  // The ledger itself is untouched by revocation.
  EXPECT_EQ(a->cycles_charged, 5000u);

  // RX admission is denied too; drained frames are recorded.
  EXPECT_FALSE(ts.try_admit(&p));
  ts.note_drained(p, 3);
  EXPECT_EQ(a->drained_frames, 3u);
}

// ---------------------------------------------------------------------------
// Download admission: buffer-pool share and handler-count caps.
// ---------------------------------------------------------------------------

TEST(TenantAdmission, BufferAndHandlerCapsRejectWithTypedDenials) {
  Simulator sim;
  Node& n = sim.add_node("n");
  Process p(n, 3, "t", MemSegment{0, 4096});
  TenantSchedulerConfig cfg;
  cfg.buffer_bytes_cap = 100;
  cfg.max_handlers = 3;
  TenantScheduler ts(n, cfg);

  TenantDeny why{};
  EXPECT_TRUE(ts.admit_download(p, 60, &why));
  EXPECT_FALSE(ts.admit_download(p, 60, &why));  // 120 > 100
  EXPECT_EQ(why, TenantDeny::BufferQuota);
  EXPECT_TRUE(ts.admit_download(p, 40, &why));  // exactly at the cap
  EXPECT_TRUE(ts.admit_download(p, 0, &why));
  EXPECT_FALSE(ts.admit_download(p, 0, &why));  // 4th handler
  EXPECT_EQ(why, TenantDeny::DownloadQuota);

  const TenantAccount* a = ts.find_account(3);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->handlers, 3u);
  EXPECT_EQ(a->buffer_bytes, 100u);
  EXPECT_EQ(a->denials[static_cast<std::size_t>(TenantDeny::BufferQuota)],
            1u);
  EXPECT_EQ(a->denials[static_cast<std::size_t>(TenantDeny::DownloadQuota)],
            1u);

  ts.on_owner_revoked(p);
  EXPECT_FALSE(ts.admit_download(p, 0, &why));
  EXPECT_EQ(why, TenantDeny::Revoked);

  // The observability surfaces (ashtool tenants): every denial class has
  // a stable name and the JSON view carries the full ledger.
  EXPECT_STREQ(to_string(TenantDeny::CycleQuota), "cycle-quota");
  EXPECT_STREQ(to_string(TenantDeny::RxQuota), "rx-quota");
  EXPECT_STREQ(to_string(TenantDeny::BufferQuota), "buffer-quota");
  EXPECT_STREQ(to_string(TenantDeny::DownloadQuota), "download-quota");
  EXPECT_STREQ(to_string(TenantDeny::Revoked), "revoked");
  const std::string json = ts.tenants_json();
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"revoked\":true"), std::string::npos);
  EXPECT_NE(json.find("\"handlers\":3"), std::string::npos);
  EXPECT_NE(json.find("\"buffer_quota\":1"), std::string::npos);
  EXPECT_NE(json.find("\"download_quota\":1"), std::string::npos);
}

TEST(TenantAdmission, DownloadPathRejectsGracefullyWithTypedError) {
  Simulator sim;
  Node& n = sim.add_node("n");
  AshSystem ash(n);
  TenantSchedulerConfig cfg;
  cfg.max_handlers = 1;
  TenantScheduler ts(n, cfg);
  ash.set_tenants(&ts);

  n.kernel().spawn("tenant", [&](Process& self) -> Task {
    std::string error;
    const int id0 = ash.download(self, div_by_word0_ash(), {}, &error);
    EXPECT_GE(id0, 0) << error;
    // The image's kernel footprint was charged to the tenant.
    const TenantAccount* a = ts.find_account(self.pid());
    if (a == nullptr) {
      ADD_FAILURE() << "no tenant account after download";
      co_return;
    }
    EXPECT_EQ(a->handlers, 1u);
    EXPECT_GT(a->buffer_bytes, 0u);

    // Second install crosses max_handlers: a typed, graceful denial —
    // no translation work, no slot burned, the first handler untouched.
    const int id1 = ash.download(self, div_by_word0_ash(), {}, &error);
    EXPECT_EQ(id1, -1);
    EXPECT_EQ(error, "tenant admission denied: download-quota");
    EXPECT_EQ(a->handlers, 1u);
    EXPECT_EQ(ash.health(id0), Health::Healthy);
    co_await self.compute(1);
  });
  sim.run();
}

// ---------------------------------------------------------------------------
// The cycle quota end-to-end through the AN2 receive path.
// ---------------------------------------------------------------------------

TEST(TenantCycles, ExhaustedAccountDefersToNormalDelivery) {
  Simulator sim;
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  net::An2Device dev_a(a);
  net::An2Device dev_b(b);
  dev_a.connect(dev_b);
  AshSystem ash(b);
  TenantSchedulerConfig cfg;
  cfg.quantum_per_weight = 1;         // one run empties the account
  cfg.burst_rounds = 1;
  cfg.replenish_period = us(1e5);     // no replenish inside the test
  TenantScheduler ts(b, cfg);
  ash.set_tenants(&ts);

  std::uint32_t pid = 0;
  b.kernel().spawn("tenant", [&](Process& self) -> Task {
    pid = self.pid();
    const int vc = dev_b.bind_vc(self);
    for (int i = 0; i < 8; ++i) {
      dev_b.supply_buffer(
          vc, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
    }
    std::string error;
    const int id = ash.download(self, div_by_word0_ash(), {}, &error);
    EXPECT_GE(id, 0) << error;
    ash.attach_an2(dev_b, vc, id);
    co_await self.sleep_for(us(20000.0));

    // Run 1 spent the whole account; runs 2 and 3 were deferred at
    // near-zero cost and the messages took the normal delivery path —
    // the tenant's backlog is its own problem.
    const AshStats& s = ash.stats(id);
    EXPECT_EQ(s.invocations, 1u);
    EXPECT_EQ(s.commits, 1u);
    EXPECT_EQ(s.tenant_deferrals, 2u);
    int delivered = 0;
    while (dev_b.poll(vc).has_value()) ++delivered;
    EXPECT_EQ(delivered, 2);

    const TenantAccount* acct = ts.find_account(pid);
    if (acct == nullptr) {
      ADD_FAILURE() << "no tenant account after traffic";
      co_return;
    }
    EXPECT_EQ(acct->runs, 1u);
    EXPECT_EQ(acct->cycles_charged, s.cycles);
    EXPECT_EQ(acct->denials[kCycleQuota], 2u);

    // Both views name the condition.
    EXPECT_NE(ash.format_status().find("cycle-quota deferrals=2"),
              std::string::npos);
    EXPECT_NE(ts.format_table().find("cycle-quota=2"), std::string::npos);
  });
  for (int i = 1; i <= 3; ++i) {
    sim.queue().schedule_at(us(1000.0 * i),
                            [&] { dev_a.send(0, kGoodMsg); });
  }
  sim.run();
}

// ---------------------------------------------------------------------------
// Revoke-mid-batch: coalesced frames for a freshly revoked owner drain
// with counted denials, not a per-frame trip through admission.
// ---------------------------------------------------------------------------

TEST(TenantRevoke, MidBatchRevocationDrainsPendingCoalescedFrames) {
  trace::TracerConfig tc;
  tc.max_cpus = 4;
  trace::Session session(tc);

  Simulator sim;
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  net::An2Device dev_a(a);
  net::An2Device dev_b(b);
  dev_a.connect(dev_b);
  AshSystem ash(b);
  TenantScheduler ts(b);  // generous defaults: only revocation bites
  ash.set_tenants(&ts);

  // One fault revokes the whole owner, mid-batch.
  SupervisorConfig sup;
  sup.enabled = true;
  sup.fault_threshold = 100;
  sup.owner_fault_limit = 1;
  ash.set_supervisor(sup);

  net::RxQueueSet::Config qc;
  qc.queues = 1;
  qc.coalesce.enabled = true;
  qc.coalesce.max_frames = 16;
  qc.coalesce.max_delay = us(200.0);
  qc.quota = &ts;
  net::RxQueueSet rxq(b, qc);
  dev_b.set_rx_queues(&rxq);

  int ash_id = -1;
  std::uint32_t pid = 0;
  b.kernel().spawn("tenant", [&](Process& self) -> Task {
    pid = self.pid();
    const int vc = dev_b.bind_vc(self);
    for (int i = 0; i < 16; ++i) {
      dev_b.supply_buffer(
          vc, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
    }
    std::string error;
    ash_id = ash.download(self, div_by_word0_ash(), {}, &error);
    EXPECT_GE(ash_id, 0) << error;
    ash.attach_an2(dev_b, vc, ash_id);
    co_await self.sleep_for(us(1e6));
  });

  // One back-to-back train -> one coalesced batch: good, BAD, good, good.
  // The fault on message 2 revokes the owner; 3 is denied by admission
  // and 4 is drained without re-entering the admission path.
  sim.queue().schedule_at(us(500.0), [&] {
    dev_a.send(0, kGoodMsg);
    dev_a.send(0, kBadMsg);
    dev_a.send(0, kGoodMsg);
    dev_a.send(0, kGoodMsg);
  });
  sim.run(us(5000.0));

  const AshStats& s = ash.stats(ash_id);
  EXPECT_EQ(s.invocations, 2u);  // good run + the fault
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.involuntary_aborts, 1u);
  EXPECT_EQ(ash.health(ash_id), Health::Revoked);
  // Message 3 hit admission (revoked deny); message 4 was drained. Both
  // count as revoked skips — the drain changes the cost, not the story.
  EXPECT_EQ(s.revoked_skips, 2u);
  const TenantAccount* acct = ts.find_account(pid);
  ASSERT_NE(acct, nullptr);
  EXPECT_TRUE(acct->revoked);
  EXPECT_EQ(acct->drained_frames, 1u);

  // The drain emits the same per-frame denial events the admission path
  // would have: observers cannot tell the fast path from the slow one.
  std::uint64_t revoked_events = 0;
  for (const auto& ev : trace::global().all_events()) {
    if (ev.type == trace::EventType::AshDenied &&
        ev.arg0 ==
            static_cast<std::uint32_t>(trace::DenyReason::Revoked)) {
      ++revoked_events;
    }
  }
  EXPECT_EQ(revoked_events, 2u);
}

// ---------------------------------------------------------------------------
// Randomized conservation: cycles charged to tenants == cycles recorded
// on their handlers, across fault / quarantine / revoke churn.
// ---------------------------------------------------------------------------

TEST(TenantConservation, ChargesMatchHandlerCyclesAcrossChurn) {
  Simulator sim;
  Node& n = sim.add_node("n");
  AshSystem ash(n);
  TenantSchedulerConfig cfg;
  // A run of the divide handler costs ~70 cycles, so ~1.4 runs per round
  // per weight unit: tight enough that the quota denies a real fraction
  // of the churn while still admitting plenty.
  cfg.quantum_per_weight = 100;
  cfg.replenish_period = us(2000.0);
  cfg.burst_rounds = 1;
  TenantScheduler ts(n, cfg);
  ash.set_tenants(&ts);

  SupervisorConfig sup;
  sup.enabled = true;
  sup.fault_threshold = 3;
  sup.quarantine_base = us(200.0);
  sup.max_quarantines = 3;  // policy revocations join the churn
  ash.set_supervisor(sup);

  constexpr int kTenants = 6;
  struct Tenant {
    Process* proc = nullptr;
    std::vector<int> ids;
    std::uint32_t good_addr = 0;
    std::uint32_t bad_addr = 0;
  };
  std::vector<Tenant> tenants(kTenants);

  for (int t = 0; t < kTenants; ++t) {
    n.kernel().spawn("tenant" + std::to_string(t),
                     [&, t](Process& self) -> Task {
      Tenant& me = tenants[t];
      me.proc = &self;
      ts.set_weight(self, static_cast<std::uint32_t>(1 + t % 3));
      std::string error;
      for (int h = 0; h < 2; ++h) {
        const int id = ash.download(self, div_by_word0_ash(), {}, &error);
        EXPECT_GE(id, 0) << error;
        if (id >= 0) me.ids.push_back(id);
      }
      me.good_addr = self.segment().base + 0x2000;
      me.bad_addr = self.segment().base + 0x2010;
      std::memcpy(n.mem(me.good_addr, 4), kGoodMsg, 4);
      std::memcpy(n.mem(me.bad_addr, 4), kBadMsg, 4);
      co_await self.sleep_for(us(1e6));
    });
  }

  // 400 invocations at random times over 50 ms, ~30% faulting, with two
  // random owner revocations and random re-weights thrown in.
  util::Rng rng(0xa5a5'1234'dead'beefull);
  for (int i = 0; i < 400; ++i) {
    const int t = static_cast<int>(rng.next() % kTenants);
    const bool bad = rng.next() % 10 < 3;
    const sim::Cycles at = us(100.0 + 49000.0 * (rng.next() % 1000) / 1000.0);
    sim.queue().schedule_at(at, [&, t, bad] {
      Tenant& vict = tenants[t];
      if (vict.ids.empty()) return;
      const int id = vict.ids[0];
      MsgContext m;
      m.addr = bad ? vict.bad_addr : vict.good_addr;
      m.len = 4;
      ash.invoke(
          id, m, [](int, std::span<const std::uint8_t>) { return true; },
          0);
      // Second handler, same owner: exercises cross-handler aggregation.
      if (vict.ids.size() > 1) {
        ash.invoke(
            vict.ids[1], m,
            [](int, std::span<const std::uint8_t>) { return true; }, 0);
      }
    });
  }
  sim.queue().schedule_at(us(20000.0), [&] {
    ash.revoke_owner(*tenants[1].proc);
  });
  sim.queue().schedule_at(us(35000.0), [&] {
    ash.revoke_owner(*tenants[4].proc);
  });
  for (int i = 0; i < 8; ++i) {
    sim.queue().schedule_at(us(5000.0 * (i + 1)), [&, i] {
      ts.set_weight(*tenants[i % kTenants].proc,
                    static_cast<std::uint32_t>(1 + i % 4));
    });
  }
  sim.run(us(60000.0));

  // The conservation property: for every tenant, the scheduler's ledger
  // equals the sum over its handlers of the cycles those handlers
  // actually ran — no double-charge, no refund leak, regardless of
  // faults, quarantines, deferrals, or revocations along the way.
  std::uint64_t total_runs = 0, total_denials = 0;
  for (const Tenant& t : tenants) {
    ASSERT_NE(t.proc, nullptr);
    std::uint64_t handler_cycles = 0, handler_runs = 0;
    for (const int id : t.ids) {
      handler_cycles += ash.stats(id).cycles;
      handler_runs += ash.stats(id).invocations;
    }
    const TenantAccount* acct = ts.find_account(t.proc->pid());
    ASSERT_NE(acct, nullptr) << t.proc->name();
    EXPECT_EQ(acct->cycles_charged, handler_cycles) << t.proc->name();
    EXPECT_EQ(acct->runs, handler_runs) << t.proc->name();
    total_runs += acct->runs;
    for (const std::uint64_t d : acct->denials) total_denials += d;
  }
  // Non-vacuity: the churn actually ran handlers AND denied admissions.
  EXPECT_GT(total_runs, 30u);
  EXPECT_GT(total_denials, 10u);
  EXPECT_TRUE(tenants[1].ids.empty() ||
              ash.health(tenants[1].ids[0]) == Health::Revoked);
}

}  // namespace
}  // namespace ash::core
