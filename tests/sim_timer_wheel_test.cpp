// TimerWheel: the O(1) arm/cancel deadline store behind the TCP
// engine's per-flow retransmission, persist, and TIME_WAIT timers.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/timer_wheel.hpp"

namespace ash::sim {
namespace {

std::vector<TimerWheel::Expired> drain(TimerWheel& w, Cycles now) {
  std::vector<TimerWheel::Expired> out;
  w.advance(now, out);
  return out;
}

TEST(TimerWheel, FiresInDeadlineOrder) {
  TimerWheel w(/*granularity=*/100, /*buckets=*/8);
  w.arm(500, 5);
  w.arm(100, 1);
  w.arm(300, 3);
  w.arm(300, 33);  // same tick, still reported

  EXPECT_EQ(w.size(), 4u);
  ASSERT_TRUE(w.next_deadline().has_value());
  EXPECT_EQ(*w.next_deadline(), 100u);

  const auto fired = drain(w, 600);
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_TRUE(std::is_sorted(
      fired.begin(), fired.end(),
      [](const auto& a, const auto& b) { return a.deadline < b.deadline; }));
  EXPECT_EQ(fired.front().cookie, 1u);
  EXPECT_EQ(fired.back().cookie, 5u);
  EXPECT_EQ(w.size(), 0u);
  EXPECT_FALSE(w.next_deadline().has_value());
}

TEST(TimerWheel, AdvanceIsExclusiveOfTheFuture) {
  TimerWheel w(100, 8);
  w.arm(250, 1);
  w.arm(900, 2);
  const auto first = drain(w, 250);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].cookie, 1u);
  EXPECT_EQ(w.size(), 1u);
  const auto second = drain(w, 899);
  EXPECT_TRUE(second.empty());  // 900 has not arrived yet
  const auto third = drain(w, 900);
  ASSERT_EQ(third.size(), 1u);
  EXPECT_EQ(third[0].cookie, 2u);
}

TEST(TimerWheel, CancelIsTombstoneAndIdempotent) {
  TimerWheel w(100, 8);
  const auto a = w.arm(200, 1);
  const auto b = w.arm(200, 2);
  EXPECT_TRUE(w.cancel(a));
  EXPECT_FALSE(w.cancel(a));  // already cancelled
  EXPECT_FALSE(w.cancel(0));  // the never-issued id
  EXPECT_FALSE(w.pending(a));
  EXPECT_TRUE(w.pending(b));

  const auto fired = drain(w, 1000);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].cookie, 2u);
  EXPECT_FALSE(w.cancel(b));  // already fired
}

TEST(TimerWheel, NextDeadlineSkipsCancelled) {
  TimerWheel w(100, 8);
  const auto a = w.arm(100, 1);
  w.arm(400, 2);
  EXPECT_EQ(*w.next_deadline(), 100u);
  w.cancel(a);
  EXPECT_EQ(*w.next_deadline(), 400u);
}

TEST(TimerWheel, OverflowDeadlinesMigrateInward) {
  // One revolution is 8 * 100 cycles; these park in the overflow list
  // and must still fire exactly once, in order, as the cursor advances.
  TimerWheel w(100, 8);
  w.arm(250, 1);
  w.arm(2500, 2);   // ~3 revolutions out
  w.arm(10000, 3);  // far out

  auto fired = drain(w, 300);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].cookie, 1u);

  fired = drain(w, 2600);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].cookie, 2u);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(*w.next_deadline(), 10000u);

  fired = drain(w, 20000);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].cookie, 3u);
}

TEST(TimerWheel, CancelReachesOverflow) {
  TimerWheel w(100, 4);
  const auto far = w.arm(5000, 9);
  w.arm(150, 1);
  EXPECT_TRUE(w.cancel(far));
  const auto fired = drain(w, 6000);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].cookie, 1u);
}

TEST(TimerWheel, RearmChurnLeavesOnlyTheLiveTimer) {
  // The per-ACK cancel/re-arm pattern of a busy TCP flow: many dead ids,
  // one live deadline.
  TimerWheel w(100, 16);
  TimerWheel::Id live = 0;
  for (int i = 0; i < 1000; ++i) {
    if (live != 0) w.cancel(live);
    live = w.arm(static_cast<Cycles>(1000 + i), 7);
  }
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(*w.next_deadline(), 1999u);
  const auto fired = drain(w, 3000);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].cookie, 7u);
  EXPECT_EQ(fired[0].deadline, 1999u);
}

TEST(TimerWheel, ZeroDelayDeadlineFiresOnNextAdvance) {
  TimerWheel w(100, 8);
  w.arm(0, 1);
  const auto fired = drain(w, 0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].cookie, 1u);
}

}  // namespace
}  // namespace ash::sim
