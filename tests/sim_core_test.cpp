#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/cache.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace ash::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, EqualTimesRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  q.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(20, [&] { ++fired; });
  q.cancel(id);
  q.run_until_idle();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 20u);
}

TEST(EventQueue, EventsScheduledDuringRunExecute) {
  EventQueue q;
  int count = 0;
  q.schedule_at(10, [&] {
    ++count;
    q.schedule_in(5, [&] { ++count; });
  });
  q.run_until_idle();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.now(), 15u);
}

TEST(EventQueue, PastSchedulesClampToNow) {
  EventQueue q;
  q.schedule_at(100, [] {});
  q.step();
  bool ran = false;
  q.schedule_at(50, [&] { ran = true; });  // in the past
  q.step();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, RunUntilLimitStopsEarly) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(1000, [&] { ++fired; });
  q.run_until_idle(500);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, CancelAfterFireIsNoOp) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(20, [&] { ++fired; });
  EXPECT_TRUE(q.step());
  q.cancel(id);         // already fired
  q.cancel(id);         // twice
  q.cancel(99999);      // never issued
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.cancelled_backlog(), 0u);
  q.run_until_idle();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DoubleCancelCountsOnce) {
  EventQueue q;
  const EventId id = q.schedule_at(10, [] {});
  q.schedule_at(20, [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.run_until_idle(), 1u);
  EXPECT_TRUE(q.empty());
}

// The re-armed retransmit-timer pattern: schedule far out, cancel, re-arm,
// many thousands of times with only a handful of events ever live. The
// tombstone set must stay bounded by the live population instead of
// accumulating one entry per cancelled timer for the whole run.
TEST(EventQueue, ReArmedTimersKeepBacklogBounded) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1, [&] { ++fired; });  // one live anchor event
  for (int i = 0; i < 10000; ++i) {
    const EventId timer = q.schedule_in(1'000'000, [&] { ++fired; });
    q.cancel(timer);
    ASSERT_LE(q.cancelled_backlog(), q.pending());
  }
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_LE(q.cancelled_backlog(), 1u);
  EXPECT_EQ(q.run_until_idle(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 1u);
}

TEST(EventQueue, CompactionPreservesOrdering) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> victims;
  for (int i = 0; i < 50; ++i) {
    const EventId id =
        q.schedule_at(10 * (i % 7) + 5, [&order, i] { order.push_back(i); });
    if (i % 2 == 1) victims.push_back(id);
  }
  for (const EventId id : victims) q.cancel(id);  // triggers compaction
  EXPECT_EQ(q.pending(), 25u);
  q.run_until_idle();
  ASSERT_EQ(order.size(), 25u);
  // Survivors still run in (time, schedule-order) order.
  std::vector<int> expected = order;
  std::stable_sort(expected.begin(), expected.end(), [](int a, int b) {
    return (10 * (a % 7) + 5) < (10 * (b % 7) + 5);
  });
  EXPECT_EQ(order, expected);
  for (const int i : order) EXPECT_EQ(i % 2, 0);
}

TEST(Cache, ReadMissThenHit) {
  Cache cache({.size_bytes = 1024, .line_bytes = 16, .read_miss_penalty = 20});
  EXPECT_EQ(cache.access(0x100, 4, false), 20u);  // miss fills line
  EXPECT_EQ(cache.access(0x104, 4, false), 0u);   // same line: hit
  EXPECT_EQ(cache.access(0x10c, 4, false), 0u);
  EXPECT_EQ(cache.access(0x110, 4, false), 20u);  // next line
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, DirectMappedConflictEviction) {
  Cache cache({.size_bytes = 256, .line_bytes = 16, .read_miss_penalty = 10});
  EXPECT_EQ(cache.access(0, 4, false), 10u);
  EXPECT_EQ(cache.access(256, 4, false), 10u);  // maps to same line index
  EXPECT_EQ(cache.access(0, 4, false), 10u);    // evicted: miss again
}

TEST(Cache, WriteThroughNoAllocate) {
  Cache cache({.size_bytes = 1024, .line_bytes = 16, .read_miss_penalty = 20});
  EXPECT_EQ(cache.access(0x40, 4, true), 0u);   // write miss: no fill
  EXPECT_FALSE(cache.contains(0x40));
  EXPECT_EQ(cache.access(0x40, 4, false), 20u);  // still a read miss
  EXPECT_TRUE(cache.contains(0x40));
  EXPECT_EQ(cache.access(0x40, 4, true), 0u);    // write hit: cheap
  EXPECT_TRUE(cache.contains(0x40));
}

TEST(Cache, AccessSpanningTwoLines) {
  Cache cache({.size_bytes = 1024, .line_bytes = 16, .read_miss_penalty = 20});
  EXPECT_EQ(cache.access(0x1e, 4, false), 40u);  // crosses 0x10/0x20 lines
}

TEST(Cache, FlushAllAndInvalidateRange) {
  Cache cache({.size_bytes = 1024, .line_bytes = 16, .read_miss_penalty = 20});
  cache.touch_range(0, 64);
  EXPECT_TRUE(cache.contains(0x30));
  cache.invalidate_range(0x10, 16);
  EXPECT_TRUE(cache.contains(0x00));
  EXPECT_FALSE(cache.contains(0x10));
  EXPECT_TRUE(cache.contains(0x20));
  cache.flush_all();
  EXPECT_FALSE(cache.contains(0x00));
  EXPECT_FALSE(cache.contains(0x20));
}

TEST(Cache, InvalidateHugeRangeFlushes) {
  Cache cache({.size_bytes = 256, .line_bytes = 16, .read_miss_penalty = 20});
  cache.touch_range(0, 256);
  cache.invalidate_range(0, 1u << 20);
  EXPECT_FALSE(cache.contains(0));
  EXPECT_FALSE(cache.contains(240));
}

TEST(TimeConversion, CyclesAndMicroseconds) {
  EXPECT_DOUBLE_EQ(to_us(40), 1.0);
  EXPECT_EQ(us(1.0), 40u);
  EXPECT_EQ(us(96.0), 3840u);
}

}  // namespace
}  // namespace ash::sim
