// Multi-queue receive path: steering policy units, coalescer behavior,
// the randomized coalescer invariants from rx_queue.hpp, and the
// single-queue/coalescing-off equivalence with the inline ASH path.
#include "net/rx_queue.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "ashlib/handlers.hpp"
#include "core/ash.hpp"
#include "net/an2.hpp"
#include "net/ethernet.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace ash::net {
namespace {

using sim::Cycles;
using sim::KernelCpu;
using sim::MemSegment;
using sim::Node;
using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;

// ---------------------------------------------------------------- steering

TEST(Steering, ChannelHashIsModuloOverTheDemuxId) {
  SteeringPolicy p;  // default ChannelHash
  EXPECT_EQ(p.pick(5, nullptr, 4), 1u);
  EXPECT_EQ(p.pick(8, nullptr, 4), 0u);
  EXPECT_EQ(p.pick(3, nullptr, 8), 3u);
  // Negative (unknown) demux ids land on queue 0 rather than UB.
  EXPECT_EQ(p.pick(-1, nullptr, 4), 0u);
  // A single queue absorbs everything regardless of mode.
  EXPECT_EQ(p.pick(5, nullptr, 1), 0u);
}

TEST(Steering, PinsAreConsultedFirstInEveryMode) {
  SteeringPolicy p;
  p.pins[5] = 3;
  p.pins[1] = 7;  // out-of-range pin wraps instead of exploding
  EXPECT_EQ(p.pick(5, nullptr, 4), 3u);
  EXPECT_EQ(p.pick(1, nullptr, 4), 3u);  // 7 % 4
  p.mode = SteerMode::Pinned;
  EXPECT_EQ(p.pick(5, nullptr, 4), 3u);
  EXPECT_EQ(p.pick(2, nullptr, 4), 0u);  // unpinned share queue 0
  p.mode = SteerMode::OwnerAffinity;
  EXPECT_EQ(p.pick(5, nullptr, 4), 3u);
}

TEST(Steering, OwnerAffinityUsesPidAndFallsBackToChannelHash) {
  Simulator sim;
  Node& n = sim.add_node("n");
  Process owner(n, /*pid=*/7, "p", MemSegment{0, 4096});
  SteeringPolicy p;
  p.mode = SteerMode::OwnerAffinity;
  EXPECT_EQ(p.pick(0, &owner, 4), 3u);  // pid 7 % 4
  EXPECT_EQ(p.pick(9, &owner, 4), 3u);  // channel ignored when owned
  // Ownerless frames (kernel control traffic) fall through to the hash.
  EXPECT_EQ(p.pick(9, nullptr, 4), 1u);
}

TEST(Steering, QueueSetRoutesThroughThePolicyAndPlacesCpus) {
  Simulator sim;
  Node& n = sim.add_node("n");
  RxQueueSet::Config cfg;
  cfg.queues = 3;
  RxQueueSet set(n, cfg);
  ASSERT_EQ(set.size(), 3u);
  // Queue 0 runs on the node's main CPU (paper semantics), the rest on
  // auxiliary rx CPUs with distinct trace ids.
  EXPECT_TRUE(set.queue(0).cpu().main());
  EXPECT_FALSE(set.queue(1).cpu().main());
  EXPECT_FALSE(set.queue(2).cpu().main());
  EXPECT_NE(set.queue(1).cpu().cpu_id(), set.queue(2).cpu().cpu_id());
  EXPECT_EQ(&set.steer(4, nullptr), &set.queue(1));  // 4 % 3
}

// ---------------------------------------------------------------- sink stub

struct FakeSink final : RxSink {
  struct Run {
    int channel;
    std::size_t frames;
  };
  std::vector<Run> runs;
  std::uint64_t frames = 0;
  std::uint64_t drops = 0;

  void rx_batch(std::span<const RxFrame> fs, const KernelCpu&) override {
    runs.push_back(Run{fs.front().channel, fs.size()});
    frames += fs.size();
  }
  void rx_drop(const RxFrame&) override { ++drops; }
};

RxFrame frame_for(FakeSink& sink, int channel, Cycles driver) {
  RxFrame f;
  f.sink = &sink;
  f.channel = channel;
  f.driver_cycles = driver;
  return f;
}

// ------------------------------------------------------------- coalescing

TEST(RxQueue, CoalescingOffFiresOneBatchPerFrame) {
  Simulator sim;
  Node& n = sim.add_node("n");
  FakeSink sink;
  RxQueue q(KernelCpu(n), 0, CoalesceConfig{}, 256);
  n.queue().schedule_at(us(10.0), [&] {
    for (int i = 0; i < 3; ++i) q.enqueue(frame_for(sink, 2, 40));
  });
  sim.run();
  EXPECT_EQ(q.batches(), 3u);
  EXPECT_EQ(q.enqueued(), 3u);
  EXPECT_EQ(q.dispatched(), 3u);
  EXPECT_EQ(q.depth(), 0u);
  ASSERT_EQ(sink.runs.size(), 3u);
  for (const auto& r : sink.runs) EXPECT_EQ(r.frames, 1u);
}

TEST(RxQueue, FullAndTimerFiresWithAdaptivePollMode) {
  trace::TracerConfig tc;
  tc.max_cpus = 2;
  trace::Session session(tc);
  Simulator sim;
  Node& n = sim.add_node("n");
  FakeSink sink;
  CoalesceConfig co;
  co.enabled = true;
  co.max_frames = 2;
  co.max_delay = us(50.0);
  co.adaptive = true;
  RxQueue q(KernelCpu(n), 0, co, 256);
  const Cycles dc = 40;
  // Four back-to-back frames: one Full fire (entering poll mode), one
  // Poll fire; a lone straggler later drains on the timer, which also
  // exits poll mode.
  n.queue().schedule_at(us(10.0), [&] {
    for (int i = 0; i < 4; ++i) q.enqueue(frame_for(sink, 1, dc));
    EXPECT_TRUE(q.polling());
  });
  n.queue().schedule_at(us(200.0), [&] { q.enqueue(frame_for(sink, 1, dc)); });
  sim.run();
  EXPECT_FALSE(q.polling());
  EXPECT_EQ(q.batches(), 3u);
  EXPECT_EQ(q.dispatched(), 5u);

  std::vector<trace::Event> fires;
  for (const auto& ev : trace::global().events(0)) {
    if (ev.type == trace::EventType::CoalesceFire) fires.push_back(ev);
  }
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0].arg1, static_cast<std::uint32_t>(FireReason::Full));
  EXPECT_EQ(fires[1].arg1, static_cast<std::uint32_t>(FireReason::Poll));
  EXPECT_EQ(fires[2].arg1, static_cast<std::uint32_t>(FireReason::Timer));
  // Charge model: interrupt entry per interrupt-driven batch, the cheap
  // poll pass while in poll mode.
  EXPECT_EQ(fires[0].cycles, n.cost().interrupt_entry + 2 * dc);
  EXPECT_EQ(fires[1].cycles, n.cost().rxq_poll_pass + 2 * dc);
  EXPECT_EQ(fires[2].cycles, n.cost().interrupt_entry + dc);
  // The straggler fired on the max_delay timer, not before.
  EXPECT_EQ(fires[2].time, us(200.0) + co.max_delay);
}

TEST(RxQueue, DeliverBatchGroupsConsecutiveSameChannelRuns) {
  Simulator sim;
  Node& n = sim.add_node("n");
  FakeSink sink;
  CoalesceConfig co;
  co.enabled = true;
  co.max_frames = 8;
  co.max_delay = us(50.0);
  RxQueue q(KernelCpu(n), 0, co, 256);
  const int chans[] = {1, 1, 2, 2, 2, 1};
  n.queue().schedule_at(us(10.0), [&] {
    for (int c : chans) q.enqueue(frame_for(sink, c, 10));
  });
  sim.run();
  EXPECT_EQ(q.batches(), 1u);
  ASSERT_EQ(sink.runs.size(), 3u);
  EXPECT_EQ(sink.runs[0].channel, 1);
  EXPECT_EQ(sink.runs[0].frames, 2u);
  EXPECT_EQ(sink.runs[1].channel, 2);
  EXPECT_EQ(sink.runs[1].frames, 3u);
  EXPECT_EQ(sink.runs[2].channel, 1);
  EXPECT_EQ(sink.runs[2].frames, 1u);
}

TEST(RxQueue, OverflowDropsBackToTheDeviceAndStaysBalanced) {
  Simulator sim;
  Node& n = sim.add_node("n");
  FakeSink sink;
  CoalesceConfig co;
  co.enabled = true;
  co.max_frames = 8;
  co.max_delay = us(50.0);
  RxQueue q(KernelCpu(n), 0, co, /*capacity=*/2);
  n.queue().schedule_at(us(10.0), [&] {
    for (int i = 0; i < 5; ++i) q.enqueue(frame_for(sink, 0, 10));
  });
  sim.run();
  EXPECT_EQ(q.dropped(), 3u);
  EXPECT_EQ(sink.drops, 3u);
  EXPECT_EQ(q.dispatched(), 2u);
  EXPECT_EQ(q.enqueued(), q.dispatched() + q.depth() + q.dropped());
}

// The ISSUE-5 coalescer property test: randomized (max_frames, max_delay,
// load) schedules, checking after every run that
//   * enqueued == dispatched + still-queued (+ dropped),
//   * no batch exceeds max_frames,
//   * no frame waited longer than max_delay between its RxEnqueue and the
//     CoalesceFire that took it (FIFO matching over the trace).
TEST(RxQueue, PropertyCoalescerInvariantsUnderRandomLoad) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    util::Rng rng(seed * 7919 + 1);
    CoalesceConfig co;
    co.enabled = true;
    co.max_frames = 1 + static_cast<std::uint32_t>(rng.below(8));
    co.max_delay = 40 + static_cast<Cycles>(rng.below(3200));  // 1..81 us
    co.adaptive = (rng.below(2) == 1);
    const std::size_t n_frames = 1 + rng.below(150);

    // Precompute the arrival schedule so the lambdas stay trivial.
    std::vector<Cycles> at;
    std::vector<int> chan;
    Cycles t = 1000;
    for (std::size_t i = 0; i < n_frames; ++i) {
      t += static_cast<Cycles>(rng.below(600));  // bursts to 15 us gaps
      at.push_back(t);
      chan.push_back(static_cast<int>(rng.below(4)));
    }

    trace::TracerConfig tc;
    tc.max_cpus = 2;
    trace::Session session(tc);
    Simulator sim;
    Node& n = sim.add_node("n");
    FakeSink sink;
    RxQueue q(KernelCpu(n), 0, co, 100000);
    for (std::size_t i = 0; i < n_frames; ++i) {
      n.queue().schedule_at(at[i], [&q, &sink, &chan, i] {
        q.enqueue(frame_for(sink, chan[i], 10));
      });
    }
    sim.run();

    SCOPED_TRACE(::testing::Message()
                 << "seed=" << seed << " max_frames=" << co.max_frames
                 << " max_delay=" << co.max_delay << " n=" << n_frames);
    EXPECT_EQ(q.depth(), 0u);  // the timer always drains the tail
    EXPECT_EQ(q.dropped(), 0u);
    EXPECT_EQ(q.enqueued(), q.dispatched() + q.depth() + q.dropped());
    EXPECT_EQ(q.enqueued(), n_frames);
    EXPECT_EQ(sink.frames, n_frames);
    for (const auto& r : sink.runs) EXPECT_LE(r.frames, co.max_frames);

    // FIFO-match enqueues to fires: the queue is strictly in-order, so
    // the k frames of each fire are the k oldest unmatched enqueues.
    std::deque<Cycles> waiting;
    std::uint64_t fired = 0;
    for (const auto& ev : trace::global().events(0)) {
      if (ev.type == trace::EventType::RxEnqueue && ev.id == 0) {
        waiting.push_back(ev.time);
      } else if (ev.type == trace::EventType::CoalesceFire && ev.id == 0) {
        EXPECT_LE(ev.arg0, co.max_frames);
        for (std::uint32_t k = 0; k < ev.arg0; ++k) {
          ASSERT_FALSE(waiting.empty());
          EXPECT_LE(ev.time - waiting.front(), co.max_delay);
          waiting.pop_front();
          ++fired;
        }
      }
    }
    EXPECT_TRUE(waiting.empty());
    EXPECT_EQ(fired, n_frames);
  }
}

// ------------------------------------------------- inline-path equivalence

struct ReplyTrace {
  std::vector<Cycles> reply_times;  // client-side FrameArrival times
  std::uint32_t counter = 0;
  std::uint64_t commits = 0;
};

// One remote-increment exchange, either inline (queued == false) or through
// a single-queue, coalescing-off RxQueueSet. ISSUE 5 pins these as
// cycle-identical: queue 0 charges on the node's main CPU and an
// Immediate fire charges exactly the inline interrupt entry + driver work.
ReplyTrace run_remote_increment(bool queued, int messages) {
  trace::TracerConfig tc;
  tc.max_cpus = 4;
  trace::Session session(tc);
  Simulator sim;
  Node& a = sim.add_node("client");
  Node& b = sim.add_node("server");
  An2Device dev_a(a), dev_b(b);
  dev_a.connect(dev_b);
  core::AshSystem ash_sys(b);

  std::unique_ptr<RxQueueSet> rxq;
  if (queued) {
    RxQueueSet::Config qc;
    qc.queues = 1;  // coalescing stays at the default: off
    rxq = std::make_unique<RxQueueSet>(b, qc);
    dev_b.set_rx_queues(rxq.get());
  }

  std::uint32_t ctr_addr = 0;
  int ash_id = -1;
  b.kernel().spawn("server", [&](Process& self) -> Task {
    core::AshOptions opts;
    std::string error;
    const int id = ash_sys.download(self, ashlib::make_remote_increment(),
                                    opts, &error);
    EXPECT_GE(id, 0) << error;
    ash_id = id;
    const int vc = dev_b.bind_vc(self);
    for (int i = 0; i < 32; ++i) {
      dev_b.supply_buffer(vc, self.segment().base + 64u * i, 64);
    }
    ctr_addr = self.segment().base + 0x80000;
    ash_sys.attach_an2(dev_b, vc, id, ctr_addr);
    co_await self.sleep_for(us(1e6));
  });

  a.kernel().spawn("client", [&](Process& self) -> Task {
    dev_a.bind_vc(self);  // replies arrive here (traced, not polled)
    co_await self.sleep_for(us(100.0));
    const std::uint8_t ping[4] = {1, 2, 3, 4};
    for (int m = 0; m < messages; ++m) {
      co_await self.compute(dev_a.config().tx_kernel_work);
      dev_a.send(0, ping);
      // Half paced, half back-to-back so the server CPU sees both an
      // idle pickup and a contended one.
      if (m < messages / 2) co_await self.sleep_for(us(120.0));
    }
  });

  sim.run(us(10000.0));

  ReplyTrace out;
  for (const auto& ev : trace::global().all_events()) {
    if (ev.type == trace::EventType::FrameArrival && ev.cpu == a.cpu_id()) {
      out.reply_times.push_back(ev.time);
    }
  }
  const std::uint8_t* p = b.mem(ctr_addr, 4);
  out.counter = static_cast<std::uint32_t>(p[0]) |
                (static_cast<std::uint32_t>(p[1]) << 8) |
                (static_cast<std::uint32_t>(p[2]) << 16) |
                (static_cast<std::uint32_t>(p[3]) << 24);
  out.commits = ash_id >= 0 ? ash_sys.stats(ash_id).commits : 0;
  return out;
}

TEST(RxQueue, SingleQueueCoalescingOffMatchesInlinePathCycleForCycle) {
  const int kMessages = 8;
  const ReplyTrace inline_run = run_remote_increment(false, kMessages);
  const ReplyTrace queued_run = run_remote_increment(true, kMessages);
  ASSERT_EQ(inline_run.reply_times.size(),
            static_cast<std::size_t>(kMessages));
  EXPECT_EQ(inline_run.reply_times, queued_run.reply_times);
  EXPECT_EQ(inline_run.counter, queued_run.counter);
  EXPECT_EQ(inline_run.counter, static_cast<std::uint32_t>(kMessages));
  EXPECT_EQ(inline_run.commits, queued_run.commits);
}

// ---------------------------------------------------- ethernet multi-queue

dpf::Filter eth_type_filter(std::uint16_t ethertype) {
  dpf::Filter f;
  f.atoms = {dpf::atom_be16(12, ethertype)};
  return f;
}

std::vector<std::uint8_t> eth_frame(std::uint16_t ethertype,
                                    std::size_t payload_len) {
  std::vector<std::uint8_t> f(14 + payload_len, 0);
  f[12] = static_cast<std::uint8_t>(ethertype >> 8);
  f[13] = static_cast<std::uint8_t>(ethertype);
  for (std::size_t i = 0; i < payload_len; ++i) {
    f[14 + i] = static_cast<std::uint8_t>(i);
  }
  return f;
}

TEST(RxQueue, EthernetSteersByEndpointAndBatchCopyOutDelivers) {
  Simulator sim;
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  EthernetDevice dev_a(a), dev_b(b);
  dev_a.connect(dev_b);

  RxQueueSet::Config qc;
  qc.queues = 2;
  qc.coalesce.enabled = true;
  qc.coalesce.max_frames = 4;
  qc.coalesce.max_delay = us(50.0);
  RxQueueSet rxq(b, qc);
  dev_b.set_rx_queues(&rxq);

  int got_ip = 0, got_arp = 0;
  b.kernel().spawn("rx", [&](Process& self) -> Task {
    const int ep_ip = dev_b.attach(self, eth_type_filter(0x0800));
    const int ep_arp = dev_b.attach(self, eth_type_filter(0x0806));
    for (int i = 0; i < 16; ++i) {
      dev_b.supply_buffer(ep_ip, self.segment().base + 2048u * i, 2048);
      dev_b.supply_buffer(ep_arp,
                          self.segment().base + 0x40000 + 2048u * i, 2048);
    }
    co_await self.sleep_for(us(20000.0));
    while (dev_b.poll(ep_ip).has_value()) ++got_ip;
    while (dev_b.poll(ep_arp).has_value()) ++got_arp;
  });
  sim.queue().schedule_at(us(100.0), [&] {
    for (int i = 0; i < 8; ++i) {
      dev_a.send(eth_frame(0x0800, 50));
      dev_a.send(eth_frame(0x0806, 28));
    }
    dev_a.send(eth_frame(0x86dd, 40));  // no endpoint: stays inline
  });
  sim.run();

  EXPECT_EQ(got_ip, 8);
  EXPECT_EQ(got_arp, 8);
  EXPECT_EQ(dev_b.unmatched(), 1u);
  EXPECT_EQ(dev_b.drops(), 0u);
  std::uint64_t enq = 0, disp = 0;
  for (std::size_t i = 0; i < rxq.size(); ++i) {
    const RxQueue& q = rxq.queue(i);
    EXPECT_EQ(q.depth(), 0u);
    EXPECT_EQ(q.dropped(), 0u);
    enq += q.enqueued();
    disp += q.dispatched();
  }
  EXPECT_EQ(enq, 16u);  // the unmatched frame never reaches a queue
  EXPECT_EQ(enq, disp);
}

TEST(RxQueue, EthernetOverflowDropsBackToTheDeviceAndRecyclesBuffers) {
  Simulator sim;
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  EthernetDevice dev_a(a), dev_b(b);
  dev_a.connect(dev_b);

  RxQueueSet::Config qc;
  qc.queues = 1;
  qc.capacity = 2;
  qc.coalesce.enabled = true;
  qc.coalesce.max_frames = 64;  // never fires on count during the burst
  qc.coalesce.max_delay = us(500.0);
  RxQueueSet rxq(b, qc);
  dev_b.set_rx_queues(&rxq);

  int got = 0;
  b.kernel().spawn("rx", [&](Process& self) -> Task {
    const int ep = dev_b.attach(self, eth_type_filter(0x0800));
    for (int i = 0; i < 16; ++i) {
      dev_b.supply_buffer(ep, self.segment().base + 2048u * i, 2048);
    }
    co_await self.sleep_for(us(20000.0));
    while (dev_b.poll(ep).has_value()) ++got;
  });
  // A same-instant burst of 6: the queue holds 2, the rest are dropped
  // back to the device, which must recycle their kernel buffers (the
  // later paced frames would otherwise run the NIC out of buffers).
  sim.queue().schedule_at(us(100.0), [&] {
    for (int i = 0; i < 6; ++i) dev_a.send(eth_frame(0x0800, 50));
  });
  for (int i = 0; i < 4; ++i) {
    sim.queue().schedule_at(us(2000.0 + 1000.0 * i),
                            [&] { dev_a.send(eth_frame(0x0800, 50)); });
  }
  sim.run();

  const RxQueue& q = rxq.queue(0);
  EXPECT_EQ(q.dropped(), 4u);
  EXPECT_EQ(dev_b.drops(), 4u);
  EXPECT_EQ(got, 6);  // 2 from the burst + all 4 paced frames
  EXPECT_EQ(q.enqueued(), q.dispatched() + q.depth() + q.dropped());
}

TEST(RxQueue, EthernetBatchHookConsumesAndDeclinedFramesFallBack) {
  Simulator sim;
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  EthernetDevice dev_a(a), dev_b(b);
  dev_a.connect(dev_b);

  RxQueueSet::Config qc;
  qc.queues = 1;
  qc.coalesce.enabled = true;
  qc.coalesce.max_frames = 16;
  qc.coalesce.max_delay = us(200.0);
  RxQueueSet rxq(b, qc);
  dev_b.set_rx_queues(&rxq);

  int seen_by_hook = 0, consumed_total = 0, got_fallback = 0;
  b.kernel().spawn("rx", [&](Process& self) -> Task {
    const int ep = dev_b.attach(self, eth_type_filter(0x0800));
    for (int i = 0; i < 16; ++i) {
      dev_b.supply_buffer(ep, self.segment().base + 2048u * i, 2048);
    }
    // Kernel batch hook that consumes every other frame; declined frames
    // must take the default copy-out and surface on the notify ring.
    dev_b.set_kernel_batch_hook(
        ep, [&](std::span<const EthernetDevice::RxEvent> evs,
                const KernelCpu& cpu, bool* consumed) {
          (void)cpu;
          for (std::size_t i = 0; i < evs.size(); ++i) {
            ++seen_by_hook;
            consumed[i] = (i % 2) == 0;
            if (consumed[i]) ++consumed_total;
          }
        });
    co_await self.sleep_for(us(20000.0));
    while (dev_b.poll(ep).has_value()) ++got_fallback;
  });
  sim.queue().schedule_at(us(100.0), [&] {
    for (int i = 0; i < 6; ++i) dev_a.send(eth_frame(0x0800, 50));
  });
  sim.run();

  // Wire pacing may split the train across coalesce batches, so pin the
  // conservation rather than the split: every frame was offered to the
  // hook exactly once, and every declined frame (and only those) came
  // back on the notify ring.
  EXPECT_EQ(seen_by_hook, 6);
  EXPECT_GT(consumed_total, 0);
  EXPECT_GT(got_fallback, 0);
  EXPECT_EQ(got_fallback, 6 - consumed_total);
  EXPECT_EQ(dev_b.drops(), 0u);
}

}  // namespace
}  // namespace ash::net
