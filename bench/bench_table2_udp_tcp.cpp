// Table II — latency and throughput for UDP and TCP over AN2 and Ethernet:
// {in place, copy} x {no checksum, with checksum} on AN2, plus Ethernet
// with checksum. Latency: 4-byte ping-pong (us/RTT). Throughput: UDP sends
// 6-packet MSS trains per ack; TCP writes a large buffer in 8 KB chunks
// through the fixed 8 KB window (MB/s).
#include "bench_util.hpp"

#include <algorithm>

#include "proto/an2_link.hpp"
#include "proto/eth_link.hpp"
#include "proto/tcp.hpp"
#include "proto/udp.hpp"

namespace ash::bench {
namespace {

using proto::An2Link;
using proto::EthLink;
using proto::Ipv4Addr;
using proto::MacAddr;
using proto::UdpSocket;
using sim::Process;
using sim::Task;
using sim::us;

const Ipv4Addr kIpA = Ipv4Addr::of(10, 0, 0, 1);
const Ipv4Addr kIpB = Ipv4Addr::of(10, 0, 0, 2);
const MacAddr kMacA{{{2, 0, 0, 0, 0, 1}}};
const MacAddr kMacB{{{2, 0, 0, 0, 0, 2}}};

enum class Net { An2, Ethernet };

struct Variant {
  Net net;
  bool in_place;
  bool checksum;
};

// ------------------------------------------------------------------ UDP

struct UdpEndpoints {
  std::unique_ptr<proto::Link> link;
  std::unique_ptr<UdpSocket> sock;
};

UdpEndpoints make_udp(Process& self, An2World* an2, EthWorld* eth,
                      bool client, bool checksum) {
  UdpEndpoints e;
  const UdpSocket::Options opts =
      client ? UdpSocket::Options{kIpA, kIpB, 1000, 2000, checksum}
             : UdpSocket::Options{kIpB, kIpA, 2000, 1000, checksum};
  if (an2 != nullptr) {
    An2Link::Config cfg;
    cfg.rx_buffers = 32;
    e.link = std::make_unique<An2Link>(self, client ? *an2->dev_a : *an2->dev_b,
                                       cfg);
  } else {
    EthLink::Config cfg{client ? kMacA : kMacB, client ? kMacB : kMacA};
    cfg.rx_buffers = 32;
    e.link = std::make_unique<EthLink>(self, client ? *eth->dev_a : *eth->dev_b,
                                       cfg);
  }
  e.sock = std::make_unique<UdpSocket>(*e.link, opts);
  return e;
}

double udp_latency_us(const Variant& v) {
  constexpr int kIters = 24;
  An2World an2;
  EthWorld eth;
  An2World* pa = v.net == Net::An2 ? &an2 : nullptr;
  EthWorld* pe = v.net == Net::An2 ? nullptr : &eth;
  sim::Simulator& s = v.net == Net::An2 ? an2.sim : eth.sim;
  sim::Node* na = v.net == Net::An2 ? an2.a : eth.a;
  sim::Node* nb = v.net == Net::An2 ? an2.b : eth.b;
  sim::Cycles t0 = 0, t1 = 0;

  nb->kernel().spawn("server", [&, pa, pe](Process& self) -> Task {
    auto e = make_udp(self, pa, pe, false, v.checksum);
    const std::uint32_t app = self.segment().base;
    for (int i = 0; i < kIters; ++i) {
      if (v.in_place) {
        auto dg = co_await e.sock->recv_in_place();
        const bool sent =
            co_await e.sock->send_from(dg.payload_addr, dg.payload_len);
        (void)sent;
        e.sock->release(dg);
      } else {
        auto dg = co_await e.sock->recv_copy(app, 64);
        const bool sent = co_await e.sock->send_from(app, dg.payload_len);
        (void)sent;
      }
    }
  });
  na->kernel().spawn("client", [&, pa, pe](Process& self) -> Task {
    auto e = make_udp(self, pa, pe, true, v.checksum);
    const std::uint32_t app = self.segment().base;
    co_await self.sleep_for(us(1000.0));
    const std::uint8_t ping[] = {1, 2, 3, 4};
    t0 = self.node().now();
    for (int i = 0; i < kIters; ++i) {
      const bool sent = co_await e.sock->send(ping);
      (void)sent;
      if (v.in_place) {
        auto dg = co_await e.sock->recv_in_place();
        e.sock->release(dg);
      } else {
        (void)co_await e.sock->recv_copy(app, 64);
      }
    }
    t1 = self.node().now();
  });
  s.run(us(3e6));
  return sim::to_us(t1 - t0) / kIters;
}

double udp_throughput_mbps(const Variant& v) {
  // "Throughput is measured by sending a train of six maximum-segment-size
  // packets and waiting for a small acknowledgment."
  const std::uint32_t mss = v.net == Net::An2 ? 3072 : 1472;
  constexpr int kTrains = 48;
  An2World an2;
  EthWorld eth;
  An2World* pa = v.net == Net::An2 ? &an2 : nullptr;
  EthWorld* pe = v.net == Net::An2 ? nullptr : &eth;
  sim::Simulator& s = v.net == Net::An2 ? an2.sim : eth.sim;
  sim::Node* na = v.net == Net::An2 ? an2.a : eth.a;
  sim::Node* nb = v.net == Net::An2 ? an2.b : eth.b;
  sim::Cycles t0 = 0, t1 = 0;

  nb->kernel().spawn("sink", [&, pa, pe](Process& self) -> Task {
    auto e = make_udp(self, pa, pe, false, v.checksum);
    const std::uint32_t app = self.segment().base;
    const std::uint8_t ack[] = {0xac};
    for (int t = 0; t < kTrains; ++t) {
      for (int i = 0; i < 6; ++i) {
        if (v.in_place) {
          auto dg = co_await e.sock->recv_in_place();
          e.sock->release(dg);
        } else {
          (void)co_await e.sock->recv_copy(app, 4096);
        }
      }
      const bool sent = co_await e.sock->send(ack);
      (void)sent;
    }
    t1 = self.node().now();
  });
  na->kernel().spawn("source", [&, pa, pe, mss](Process& self) -> Task {
    auto e = make_udp(self, pa, pe, true, v.checksum);
    const std::uint32_t app = self.segment().base;
    fill_pattern(self.node(), app, mss, 3);
    co_await self.sleep_for(us(1000.0));
    t0 = self.node().now();
    for (int t = 0; t < kTrains; ++t) {
      for (int i = 0; i < 6; ++i) {
        const bool sent =
            co_await e.sock->send_from(app, static_cast<std::uint16_t>(mss));
        (void)sent;
      }
      auto dg = co_await e.sock->recv_in_place();
      e.sock->release(dg);
    }
  });
  s.run(us(3e7));
  const double seconds = sim::to_us(t1 - t0) / 1e6;
  return static_cast<double>(mss) * 6 * kTrains / seconds / 1e6;
}

// ------------------------------------------------------------------ TCP

proto::TcpConfig tcp_cfg(bool client, const Variant& v) {
  proto::TcpConfig c;
  c.local_ip = client ? kIpA : kIpB;
  c.remote_ip = client ? kIpB : kIpA;
  c.local_port = client ? 4000 : 5000;
  c.remote_port = client ? 5000 : 4000;
  c.iss = client ? 100 : 900;
  c.mss = v.net == Net::An2 ? 3072 : 1456;
  c.checksum = v.checksum;
  c.in_place = v.in_place;
  return c;
}

double tcp_latency_us(const Variant& v) {
  constexpr int kIters = 16;
  An2World an2;
  EthWorld eth;
  sim::Simulator& s = v.net == Net::An2 ? an2.sim : eth.sim;
  sim::Node* na = v.net == Net::An2 ? an2.a : eth.a;
  sim::Node* nb = v.net == Net::An2 ? an2.b : eth.b;
  sim::Cycles t0 = 0, t1 = 0;

  nb->kernel().spawn("server", [&](Process& self) -> Task {
    std::unique_ptr<proto::Link> link;
    if (v.net == Net::An2) {
      link = std::make_unique<An2Link>(self, *an2.dev_b, An2Link::Config{});
    } else {
      link = std::make_unique<EthLink>(self, *eth.dev_b,
                                       EthLink::Config{kMacB, kMacA});
    }
    proto::TcpConnection conn(*link, tcp_cfg(false, v));
    const bool ok = co_await conn.accept();
    (void)ok;
    const std::uint32_t app = self.segment().base;
    for (int i = 0; i < kIters; ++i) {
      const std::uint32_t n = co_await conn.read_into(app, 64);
      const bool sent = co_await conn.write_from(app, n);
      (void)sent;
    }
  });
  na->kernel().spawn("client", [&](Process& self) -> Task {
    std::unique_ptr<proto::Link> link;
    if (v.net == Net::An2) {
      link = std::make_unique<An2Link>(self, *an2.dev_a, An2Link::Config{});
    } else {
      link = std::make_unique<EthLink>(self, *eth.dev_a,
                                       EthLink::Config{kMacA, kMacB});
    }
    proto::TcpConnection conn(*link, tcp_cfg(true, v));
    co_await self.sleep_for(us(500.0));
    const bool ok = co_await conn.connect();
    (void)ok;
    const std::uint32_t app = self.segment().base;
    fill_pattern(self.node(), app, 4, 4);
    t0 = self.node().now();
    for (int i = 0; i < kIters; ++i) {
      const bool sent = co_await conn.write_from(app, 4);
      (void)sent;
      (void)co_await conn.read_into(app + 32, 64);
    }
    t1 = self.node().now();
  });
  s.run(us(3e6));
  return sim::to_us(t1 - t0) / kIters;
}

double tcp_throughput_mbps(const Variant& v, std::uint32_t total_bytes) {
  An2World an2;
  EthWorld eth;
  sim::Simulator& s = v.net == Net::An2 ? an2.sim : eth.sim;
  sim::Node* na = v.net == Net::An2 ? an2.a : eth.a;
  sim::Node* nb = v.net == Net::An2 ? an2.b : eth.b;
  sim::Cycles t0 = 0, t1 = 0;

  nb->kernel().spawn("sink", [&](Process& self) -> Task {
    std::unique_ptr<proto::Link> link;
    if (v.net == Net::An2) {
      An2Link::Config cfg;
      cfg.rx_buffers = 32;
      link = std::make_unique<An2Link>(self, *an2.dev_b, cfg);
    } else {
      EthLink::Config cfg{kMacB, kMacA};
      cfg.rx_buffers = 32;
      link = std::make_unique<EthLink>(self, *eth.dev_b, cfg);
    }
    proto::TcpConnection conn(*link, tcp_cfg(false, v));
    const bool ok = co_await conn.accept();
    (void)ok;
    std::uint32_t got = 0;
    while (got < total_bytes) {
      // The experiments' receiver consumes without further copying
      // ("the code throws away the application data"); the read-interface
      // copy for the non-in-place variants was already charged when the
      // library moved the segment out of the network buffers.
      const std::uint32_t n = co_await conn.read_discard(total_bytes - got);
      if (n == 0) break;
      got += n;
    }
    t1 = self.node().now();
  });
  na->kernel().spawn("source", [&](Process& self) -> Task {
    std::unique_ptr<proto::Link> link;
    if (v.net == Net::An2) {
      link = std::make_unique<An2Link>(self, *an2.dev_a, An2Link::Config{});
    } else {
      link = std::make_unique<EthLink>(self, *eth.dev_a,
                                       EthLink::Config{kMacA, kMacB});
    }
    proto::TcpConnection conn(*link, tcp_cfg(true, v));
    co_await self.sleep_for(us(500.0));
    const bool ok = co_await conn.connect();
    (void)ok;
    const std::uint32_t app = self.segment().base;
    fill_pattern(self.node(), app, 8192, 5);
    t0 = self.node().now();
    for (std::uint32_t off = 0; off < total_bytes; off += 8192) {
      const bool sent =
          co_await conn.write_from(app, std::min(8192u, total_bytes - off));
      (void)sent;
    }
  });
  s.run(us(6e7));
  const double seconds = sim::to_us(t1 - t0) / 1e6;
  return static_cast<double>(total_bytes) / seconds / 1e6;
}

}  // namespace
}  // namespace ash::bench

int main(int argc, char** argv) {
  using namespace ash::bench;
  // 2 MB by default (paper: 10 MB); --full restores the paper's size.
  std::uint32_t tcp_bytes = 2u << 20;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--full") tcp_bytes = 10u << 20;
  }

  struct Config {
    const char* name;
    Variant v;
    double paper_udp_lat, paper_udp_thr, paper_tcp_lat, paper_tcp_thr;
  };
  const Config configs[] = {
      {"AN2; in place, no checksum", {Net::An2, true, false}, 221, 11.69,
       333, 5.76},
      {"AN2; in place, with checksum", {Net::An2, true, true}, 244, 7.86,
       383, 4.42},
      {"AN2; no checksum", {Net::An2, false, false}, 225, 8.57, 333, 5.02},
      {"AN2; with checksum", {Net::An2, false, true}, 244, 6.45, 384, 4.11},
      {"Ethernet; with checksum", {Net::Ethernet, false, true}, 399, 1.02,
       713, 1.03},
  };

  std::vector<Row> rows;
  for (const Config& c : configs) {
    rows.push_back({std::string(c.name) + "  UDP latency",
                    udp_latency_us(c.v), c.paper_udp_lat, "us/RTT"});
  }
  for (const Config& c : configs) {
    rows.push_back({std::string(c.name) + "  UDP throughput",
                    udp_throughput_mbps(c.v), c.paper_udp_thr, "MB/s"});
  }
  for (const Config& c : configs) {
    rows.push_back({std::string(c.name) + "  TCP latency",
                    tcp_latency_us(c.v), c.paper_tcp_lat, "us/RTT"});
  }
  for (const Config& c : configs) {
    rows.push_back({std::string(c.name) + "  TCP throughput",
                    tcp_throughput_mbps(c.v, tcp_bytes), c.paper_tcp_thr,
                    "MB/s"});
  }
  print_table("Table II", "UDP and TCP over AN2 and Ethernet", rows);
  std::printf("note: the paper's Ethernet row is partially illegible in our "
              "source scan;\npaper values 399/713 us are reconstructed from "
              "Table I + library costs.\n");
  return 0;
}
