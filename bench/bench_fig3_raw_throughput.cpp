// Fig. 3 — user-level AN2 throughput versus packet size. The paper's curve
// rises with packet size and tops out at 16.11 MB/s for 4 KB packets
// (link max 16.8 MB/s).
#include "bench_util.hpp"

#include "proto/an2_link.hpp"

namespace ash::bench {
namespace {

using proto::An2Link;
using sim::Process;
using sim::Task;
using sim::us;

/// Send a long train of `size`-byte packets from user level; the receiver
/// polls and recycles buffers. Throughput = payload bytes / elapsed.
double throughput_mbps(std::uint32_t size) {
  constexpr int kPackets = 192;
  An2World w;
  sim::Cycles t0 = 0, t1 = 0;
  int received = 0;

  w.b->kernel().spawn("sink", [&](Process& self) -> Task {
    An2Link::Config cfg;
    cfg.rx_buffers = 64;
    An2Link link(self, *w.dev_b, cfg);
    while (received < kPackets) {
      const net::RxDesc d = co_await link.recv();
      ++received;
      link.release(d);
    }
    t1 = self.node().now();
  });
  w.a->kernel().spawn("source", [&, size](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    co_await self.sleep_for(us(1000.0));
    const std::uint32_t buf = link.tx_alloc(size);
    fill_pattern(self.node(), buf, size, 1);
    t0 = self.node().now();
    for (int i = 0; i < kPackets; ++i) {
      const bool sent = co_await link.send(buf, size);
      (void)sent;
    }
  });
  w.sim.run(us(1e7));
  const double seconds = sim::to_us(t1 - t0) / 1e6;
  return static_cast<double>(size) * kPackets / seconds / 1e6;
}

}  // namespace
}  // namespace ash::bench

int main() {
  using namespace ash::bench;
  std::vector<std::pair<double, std::vector<double>>> points;
  for (std::uint32_t size : {64u, 128u, 256u, 512u, 1024u, 2048u, 3072u,
                             4096u}) {
    points.push_back({static_cast<double>(size), {throughput_mbps(size)}});
  }
  print_series("Fig. 3", "user-level AN2 throughput vs packet size",
               "bytes", {"measured MB/s"}, points, "MB/s");
  std::printf("paper: 16.11 MB/s at 4096 bytes; link max 16.8 MB/s\n");
  return 0;
}
