// Table V — raw round-trip times for a remote increment (microseconds),
// for a sandboxed ASH, an unsafe (not sandboxed) ASH, an upcall, and
// normal user-level communication, with the destination process either
// currently running (polling) or suspended (interrupt-driven).
#include "bench_util.hpp"

#include "ashlib/handlers.hpp"
#include "core/ash.hpp"
#include "core/upcall.hpp"
#include "proto/an2_link.hpp"

namespace ash::bench {
namespace {

using proto::An2Link;
using sim::Process;
using sim::Task;
using sim::us;

constexpr int kIters = 32;

enum class Mode { SandboxedAsh, UnsafeAsh, Upcall, UserLevel };

double rtt_us(Mode mode, bool suspended) {
  An2World w;
  core::AshSystem ash_sys(*w.b);
  core::UpcallManager upcalls(*w.b);
  sim::Cycles t0 = 0, t1 = 0;

  // --- server side ---
  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    if (mode == Mode::UserLevel) {
      An2Link::Config cfg;
      cfg.mode = suspended ? proto::RecvMode::Interrupt
                           : proto::RecvMode::Polling;
      An2Link link(self, *w.dev_b, cfg);
      const std::uint32_t ctr = self.segment().base + 0x100;
      for (int i = 0; i < kIters; ++i) {
        const net::RxDesc d = co_await link.recv();
        // The increment itself.
        std::uint8_t* c = self.node().mem(ctr, 4);
        c[0] = static_cast<std::uint8_t>(c[0] + 1);
        co_await self.compute(4);
        const bool sent = co_await link.send(d.addr, d.len);
        (void)sent;
        link.release(d);
      }
      co_return;
    }

    // Handler modes: the kernel does everything; the app just exists
    // (polling or suspended per the experiment's process state).
    const int vc = w.dev_b->bind_vc(self);
    for (int i = 0; i < 32; ++i) {
      w.dev_b->supply_buffer(
          vc, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
    }
    const std::uint32_t ctr = self.segment().base + 0x4000;
    if (mode == Mode::Upcall) {
      upcalls.attach_an2(*w.dev_b, vc,
                         [&w, ctr](const core::UpcallManager::Ctx& ctx) {
                           std::uint8_t* c = w.b->mem(ctr, 4);
                           c[0] = static_cast<std::uint8_t>(c[0] + 1);
                           const std::uint8_t* m =
                               w.b->mem(ctx.msg_addr, ctx.msg_len);
                           ctx.send(ctx.channel, {m, m + ctx.msg_len});
                           return core::UpcallManager::Result{us(1.0), true};
                         });
    } else {
      core::AshOptions opts;
      opts.sandboxed = mode == Mode::SandboxedAsh;
      std::string error;
      const int id = ash_sys.download(self, ashlib::make_remote_increment(),
                                      opts, &error);
      ash_sys.attach_an2(*w.dev_b, vc, id, ctr);
    }
    // Process state during the experiment:
    if (suspended) {
      co_await self.sleep_for(us(1e6));
    } else {
      for (;;) {
        co_await self.compute(self.node().cost().poll_iteration);
        if (self.node().now() > sim::us(9e5)) break;
      }
    }
  });

  // --- client: tight user-level ping-pong ---
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    co_await self.sleep_for(us(1000.0));
    const std::uint8_t ping[] = {1, 2, 3, 4};
    t0 = self.node().now();
    for (int i = 0; i < kIters; ++i) {
      const bool sent = co_await link.send_bytes(ping);
      (void)sent;
      const net::RxDesc d = co_await link.recv();
      link.release(d);
    }
    t1 = self.node().now();
  });

  w.sim.run(us(1e6));
  return sim::to_us(t1 - t0) / kIters;
}

}  // namespace
}  // namespace ash::bench

int main() {
  using namespace ash::bench;
  const struct {
    const char* name;
    Mode mode;
    double paper_polling, paper_suspended;
  } rows_spec[] = {
      {"Unsafe ASH", Mode::UnsafeAsh, 147, 147},
      {"Sandboxed ASH", Mode::SandboxedAsh, 152, 151},
      {"Upcall", Mode::Upcall, 191, 193},
      {"User-level", Mode::UserLevel, 182, 247},
  };
  std::vector<Row> rows;
  for (const auto& spec : rows_spec) {
    rows.push_back({std::string(spec.name) + "  [currently running/polling]",
                    rtt_us(spec.mode, false), spec.paper_polling, "us/RTT"});
  }
  for (const auto& spec : rows_spec) {
    rows.push_back({std::string(spec.name) + "  [suspended/interrupts]",
                    rtt_us(spec.mode, true), spec.paper_suspended,
                    "us/RTT"});
  }
  print_table("Table V", "remote increment round-trip times", rows);
  return 0;
}
