// Multi-tenant isolation — weighted-fair scheduling, per-tenant quotas,
// and the noisy-neighbor gauntlet (DESIGN §"Multi-tenant isolation").
//
// Not a paper figure: the paper's fig. 4 shows throughput holding as
// untrusting processes share a node, but nothing there stops one hostile
// tenant from starving the rest. This bench measures what the tenant
// scheduler buys: per-tenant goodput fairness (Jain index) and queueing
// p99 as the tenant population scales to 1024, and a gauntlet where
// three hostile tenants — a cycle flooder (infinite-loop handler), a
// frame flooder (20x everyone's offered load), and a faulter (handler
// that aborts on every message) — attack a population of victims whose
// goodput must hold.
//
// Setup: two nodes over an over-provisioned AN2 link; every tenant is
// its own server process owning one VC with one sandboxed ASH
// (remote-increment for honest tenants), behind a 4-queue adaptive-
// coalescing receive set wired to a core::TenantScheduler (DRR cycle
// accounts + RX occupancy quotas + install admission), with the
// supervisor revoking repeat faulters. Offered load is open-loop per
// VC; goodput is measured at the CLIENT as reply arrivals per second
// (the client supplies no reply buffers, so the device's per-VC drop
// counter counts arrivals at zero client cost — same trick as
// bench_scaling). The hostile cycle budget is bounded by tightening
// CostModel::ash_max_runtime to 100 us so a runaway handler burns 4000
// cycles per admitted run, not 312k.
//
// Flags: --smoke   two gates, also a ctest target: Jain >= 0.9 across
//                  256 equal tenants at saturating load, and every
//                  gauntlet victim >= 80% of its hostile-free goodput
//                  while each hostile stays inside its cycle quota.
//        --json    emit the full sweep (BENCH_multitenant.json).
#include "bench_util.hpp"

#include <algorithm>
#include <cstring>
#include <functional>
#include <memory>
#include <string>

#include "ashlib/handlers.hpp"
#include "core/ash.hpp"
#include "core/supervisor.hpp"
#include "core/tenant.hpp"
#include "net/rx_queue.hpp"
#include "trace/metrics.hpp"
#include "vcode/builder.hpp"

namespace ash::bench {
namespace {

using sim::Process;
using sim::Task;
using sim::us;

net::An2Config fast_link() {
  net::An2Config cfg;
  cfg.bandwidth_mbytes_per_sec = 1000.0;
  cfg.one_way_latency = us(5.0);
  cfg.per_packet_overhead = us(0.1);
  cfg.tx_kernel_work = us(0.4);
  return cfg;
}

/// The cycle flooder: spins until the budget timer kills it, every run.
vcode::Program spin_ash() {
  vcode::Builder b;
  const vcode::Label loop = b.label();
  b.bind(loop);
  b.jmp(loop);
  return b.take();
}

/// The faulter: divide-by-zero on every message the gauntlet sends it.
vcode::Program div_fault_ash() {
  vcode::Builder b;
  const vcode::Reg v = b.reg();
  const vcode::Reg q = b.reg();
  b.lw(v, vcode::kRegArg0, 0);
  b.divu(q, vcode::kRegArg1, v);
  b.movi(vcode::kRegArg0, 1);
  b.halt();
  return b.take();
}

enum class Kind { Good, Spin, Fault };

struct TenantSpec {
  Kind kind = Kind::Good;
  std::uint32_t weight = 1;
  double offered_kmsgs = 0;  // per-tenant open-loop rate
};

struct RunOut {
  std::vector<double> goodput;        // kmsg/s per tenant, spec order
  std::vector<std::uint64_t> charged; // cycles charged per tenant
  double p50_us = 0, p99_us = 0;
  std::uint64_t cycle_deferrals = 0;
  std::uint64_t rx_quota_drops = 0;
  std::uint64_t rx_overflow_drops = 0;
  std::uint64_t drained = 0;
};

double jain(const std::vector<double>& xs) {
  double sum = 0, sq = 0;
  for (const double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (sq <= 0) return 0;
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

/// One run of a tenant mix. Per-tenant quantum: an equal slice of the
/// receive set's aggregate cycle capacity per 1 ms round (4 queue CPUs),
/// scaled by weight — generous when the population is small, the binding
/// fair share when it is large.
RunOut run_mix(const std::vector<TenantSpec>& specs, sim::Cycles window) {
  const std::size_t n = specs.size();

  sim::NodeConfig server_cfg;
  server_cfg.memory_bytes = (n + 8) << 20;  // 1 MB segment per tenant
  server_cfg.cost.ash_max_runtime = us(100.0);  // bound the cycle flooder
  sim::Simulator sim;
  sim::Node& client = sim.add_node("client");
  sim::Node& server = sim.add_node("server", server_cfg);
  net::An2Device dev_c(client, fast_link());
  net::An2Device dev_s(server, fast_link());
  dev_c.connect(dev_s);
  core::AshSystem ash_sys(server);

  core::TenantSchedulerConfig tcfg;
  tcfg.replenish_period = us(1000.0);
  tcfg.quantum_per_weight = std::max<std::uint64_t>(
      64, 4 * static_cast<std::uint64_t>(us(1000.0)) / n);
  tcfg.burst_rounds = 2;
  tcfg.rx_quota_frames = 32;
  core::TenantScheduler tenants(server, tcfg);
  ash_sys.set_tenants(&tenants);

  core::SupervisorConfig sup;
  sup.enabled = true;
  sup.fault_threshold = 8;
  sup.quarantine_base = us(500.0);
  sup.max_quarantines = 4;  // the faulter ends up revoked mid-window
  ash_sys.set_supervisor(sup);

  net::RxQueueSet::Config qc;
  qc.queues = 4;
  qc.steering.mode = net::SteerMode::ChannelHash;
  qc.coalesce.enabled = true;
  qc.coalesce.max_frames = 8;
  qc.coalesce.max_delay = us(50.0);
  qc.coalesce.adaptive = true;
  qc.quota = &tenants;
  net::RxQueueSet rxq(server, qc);
  dev_s.set_rx_queues(&rxq);

  // --- server: one process + VC + handler per tenant ---
  std::vector<int> vc_of(n, -1);
  std::vector<std::uint32_t> pid_of(n, 0);
  for (std::size_t t = 0; t < n; ++t) {
    server.kernel().spawn(
        "tenant" + std::to_string(t), [&, t](Process& self) -> Task {
          pid_of[t] = self.pid();
          tenants.set_weight(self, specs[t].weight);
          vcode::Program prog;
          switch (specs[t].kind) {
            case Kind::Good: prog = ashlib::make_remote_increment(); break;
            case Kind::Spin: prog = spin_ash(); break;
            case Kind::Fault: prog = div_fault_ash(); break;
          }
          std::string error;
          const int id = ash_sys.download(self, prog, {}, &error);
          const int vc = dev_s.bind_vc(self);
          vc_of[t] = vc;
          for (int i = 0; i < 32; ++i) {
            dev_s.supply_buffer(
                vc,
                self.segment().base + 64u * static_cast<std::uint32_t>(i),
                64);
          }
          if (id >= 0) {
            ash_sys.attach_an2(dev_s, vc, id,
                               self.segment().base + 0x80000);
          }
          co_await self.sleep_for(us(1e9));
        });
  }

  // --- client: one VC owner process, open-loop per-tenant senders ---
  client.kernel().spawn("client", [&](Process& self) -> Task {
    for (std::size_t t = 0; t < n; ++t) dev_c.bind_vc(self);
    co_await self.sleep_for(us(1e9));
  });

  // Every process start pays a context switch (35 us), so booting n
  // tenants takes ~35n us of simulated time before the last VC is bound.
  const sim::Cycles warmup = us(1000.0 + 60.0 * static_cast<double>(n));
  const sim::Cycles t_start = warmup + us(2000.0);
  const sim::Cycles t_end = warmup + window;
  static const std::uint8_t kGood[4] = {1, 2, 3, 4};
  static const std::uint8_t kBad[4] = {0, 0, 0, 0};
  // Each tenant's stream is a self-rescheduling timer on the client
  // event queue: zero client-CPU cost, so the offered load never
  // back-pressures through the sender.
  struct Stream {
    std::function<void()> tick;
    sim::Cycles next = 0;
    sim::Cycles period = 0;
  };
  std::vector<Stream> streams(n);
  for (std::size_t t = 0; t < n; ++t) {
    if (specs[t].offered_kmsgs <= 0) continue;
    Stream& s = streams[t];
    s.period = us(1000.0 / specs[t].offered_kmsgs);
    s.next = warmup;
    s.tick = [&, t] {
      Stream& st = streams[t];
      // Tenants still starting up (download + bind not yet run) just miss
      // their early slots; measurement starts 2 ms after warmup.
      if (vc_of[t] >= 0) {
        dev_c.send(vc_of[t], specs[t].kind == Kind::Fault ? kBad : kGood);
      }
      st.next += st.period;
      if (st.next < t_end) client.queue().schedule_at(st.next, st.tick);
    };
    client.queue().schedule_at(s.next, s.tick);
  }

  // --- measurement: reply arrivals per VC over [t_start, t_end] ---
  std::vector<std::uint64_t> start_count(n, 0), end_count(n, 0);
  client.queue().schedule_at(t_start, [&] {
    for (std::size_t t = 0; t < n; ++t) {
      start_count[t] = vc_of[t] >= 0 ? dev_c.drops(vc_of[t]) : 0;
    }
  });
  client.queue().schedule_at(t_end, [&] {
    for (std::size_t t = 0; t < n; ++t) {
      end_count[t] = vc_of[t] >= 0 ? dev_c.drops(vc_of[t]) : 0;
    }
  });
  sim.run(t_end + us(50.0));

  RunOut out;
  out.goodput.resize(n);
  out.charged.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    out.goodput[t] = static_cast<double>(end_count[t] - start_count[t]) /
                     sim::to_us(t_end - t_start) * 1000.0;
    const core::TenantAccount* a = tenants.find_account(pid_of[t]);
    if (a == nullptr) continue;
    out.charged[t] = a->cycles_charged;
    out.cycle_deferrals +=
        a->denials[static_cast<std::size_t>(core::TenantDeny::CycleQuota)];
    out.rx_quota_drops += a->rx_quota_drops;
    out.rx_overflow_drops += a->rx_overflow_drops;
    out.drained += a->drained_frames;
  }

  // Queueing latency: merge the per-queue sojourn histograms and walk
  // the merged log2 buckets to the percentile ranks.
  std::uint64_t buckets[trace::Histogram::kBuckets] = {};
  std::uint64_t total = 0;
  for (std::size_t q = 0; q < rxq.size(); ++q) {
    const trace::Histogram& h = rxq.queue(q).sojourn();
    for (std::size_t b = 0; b < trace::Histogram::kBuckets; ++b) {
      buckets[b] += h.bucket(b);
    }
    total += h.count();
  }
  const auto pct = [&](double p) -> double {
    if (total == 0) return 0;
    const std::uint64_t rank = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(total - 1));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < trace::Histogram::kBuckets; ++b) {
      seen += buckets[b];
      if (seen > rank) {
        return sim::to_us(trace::Histogram::bucket_hi(b));
      }
    }
    return 0;
  };
  out.p50_us = pct(50.0);
  out.p99_us = pct(99.0);
  return out;
}

/// Equal-tenant fairness point: n tenants split `total_kmsgs` evenly.
RunOut run_fair(std::size_t n, double total_kmsgs, sim::Cycles window) {
  std::vector<TenantSpec> specs(n);
  for (TenantSpec& s : specs) s.offered_kmsgs = total_kmsgs / n;
  return run_mix(specs, window);
}

constexpr std::size_t kVictims = 16;
constexpr double kVictimLoad = 20.0;  // kmsg/s each: below saturation

/// The gauntlet mix: 16 honest victims plus (when hostile) a cycle
/// flooder, a frame flooder at 20x a victim's load, and a faulter.
std::vector<TenantSpec> gauntlet_specs(bool hostile) {
  std::vector<TenantSpec> specs(kVictims + 3);
  for (std::size_t t = 0; t < kVictims; ++t) {
    specs[t].offered_kmsgs = kVictimLoad;
  }
  specs[kVictims] = {Kind::Spin, 1, hostile ? 100.0 : 0.0};
  specs[kVictims + 1] = {Kind::Good, 1, hostile ? 1000.0 : 0.0};
  specs[kVictims + 2] = {Kind::Fault, 1, hostile ? 200.0 : 0.0};
  return specs;
}

/// Upper bound on what one gauntlet tenant may burn: every round's
/// earnings over the window, the banked burst, and one overdrawn run.
std::uint64_t gauntlet_cycle_cap(sim::Cycles window) {
  const std::uint64_t rounds = window / us(1000.0) + 1;
  const std::uint64_t quantum =
      std::max<std::uint64_t>(64, 4 * us(1000.0) / (kVictims + 3));
  return (rounds + 2) * quantum + us(100.0);
}

}  // namespace
}  // namespace ash::bench

int main(int argc, char** argv) {
  using namespace ash::bench;
  using ash::sim::us;
  bool smoke = false, json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  if (smoke) {
    bool ok = true;
    const ash::sim::Cycles window = us(20000.0);
    const RunOut fair = run_fair(256, 2000.0, window);
    const double j = jain(fair.goodput);
    std::size_t zeros = 0;
    double lo = 1e18, hi = 0;
    for (const double g : fair.goodput) {
      if (g <= 0) ++zeros;
      lo = std::min(lo, g);
      hi = std::max(hi, g);
    }
    std::printf("bench_multitenant --smoke: 256 tenants jain=%.4f "
                "p99=%.1f us deferrals=%llu qdrop=%llu odrop=%llu "
                "zeros=%zu lo=%.2f hi=%.2f\n",
                j, fair.p99_us,
                static_cast<unsigned long long>(fair.cycle_deferrals),
                static_cast<unsigned long long>(fair.rx_quota_drops),
                static_cast<unsigned long long>(fair.rx_overflow_drops),
                zeros, lo, hi);
    if (!(j >= 0.9)) {
      std::printf("FAIL: Jain fairness %.4f < 0.9 at 256 tenants\n", j);
      ok = false;
    }

    const RunOut base = run_mix(gauntlet_specs(false), window);
    const RunOut host = run_mix(gauntlet_specs(true), window);
    double worst = 1e9;
    for (std::size_t t = 0; t < kVictims; ++t) {
      if (base.goodput[t] <= 0) continue;
      worst = std::min(worst, host.goodput[t] / base.goodput[t]);
    }
    std::printf("gauntlet: worst victim retention=%.3f "
                "(rx-quota drops=%llu drained=%llu)\n",
                worst, static_cast<unsigned long long>(host.rx_quota_drops),
                static_cast<unsigned long long>(host.drained));
    if (!(worst >= 0.8)) {
      std::printf("FAIL: a victim fell to %.3f of its hostile-free "
                  "goodput (gate: 0.8)\n", worst);
      ok = false;
    }
    const std::uint64_t cap = gauntlet_cycle_cap(window);
    for (std::size_t h = kVictims; h < kVictims + 3; ++h) {
      std::printf("hostile %zu charged %llu cyc (cap %llu)\n", h,
                  static_cast<unsigned long long>(host.charged[h]),
                  static_cast<unsigned long long>(cap));
      if (host.charged[h] > cap) {
        std::printf("FAIL: hostile %zu burned past its cycle quota\n", h);
        ok = false;
      }
    }
    std::printf(ok ? "PASS\n" : "FAIL\n");
    return ok ? 0 : 1;
  }

  const std::size_t populations[] = {16, 64, 256, 1024};
  const double offered[] = {500.0, 1000.0, 2000.0};
  const ash::sim::Cycles window = us(30000.0);

  struct Point {
    std::size_t n;
    double load, jain_idx, served, p50, p99;
    std::uint64_t deferrals;
  };
  std::vector<Point> grid;
  for (const std::size_t n : populations) {
    for (const double load : offered) {
      const RunOut r = run_fair(n, load, window);
      double served = 0;
      for (const double g : r.goodput) served += g;
      grid.push_back({n, load, jain(r.goodput), served, r.p50_us, r.p99_us,
                      r.cycle_deferrals});
    }
  }

  const RunOut base = run_mix(gauntlet_specs(false), window);
  const RunOut host = run_mix(gauntlet_specs(true), window);
  double worst = 1e9, mean_ret = 0;
  for (std::size_t t = 0; t < kVictims; ++t) {
    const double ret = base.goodput[t] > 0
                           ? host.goodput[t] / base.goodput[t] : 1.0;
    worst = std::min(worst, ret);
    mean_ret += ret / kVictims;
  }

  if (json) {
    std::printf("{\n  \"bench\": \"multitenant\",\n");
    std::printf("  \"fairness\": [\n");
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const Point& p = grid[i];
      std::printf("    {\"tenants\": %zu, \"offered_kmsgs\": %.0f, "
                  "\"jain\": %.4f, \"served_kmsgs\": %.1f, "
                  "\"p50_us\": %.1f, \"p99_us\": %.1f, "
                  "\"cycle_deferrals\": %llu}%s\n",
                  p.n, p.load, p.jain_idx, p.served, p.p50, p.p99,
                  static_cast<unsigned long long>(p.deferrals),
                  i + 1 < grid.size() ? "," : "");
    }
    std::printf("  ],\n  \"gauntlet\": {\n");
    std::printf("    \"victims\": %zu, \"victim_load_kmsgs\": %.0f,\n",
                kVictims, kVictimLoad);
    std::printf("    \"worst_victim_retention\": %.4f,\n", worst);
    std::printf("    \"mean_victim_retention\": %.4f,\n", mean_ret);
    std::printf("    \"hostile_charged_cyc\": [%llu, %llu, %llu],\n",
                static_cast<unsigned long long>(host.charged[kVictims]),
                static_cast<unsigned long long>(host.charged[kVictims + 1]),
                static_cast<unsigned long long>(host.charged[kVictims + 2]));
    std::printf("    \"hostile_cycle_cap\": %llu,\n",
                static_cast<unsigned long long>(gauntlet_cycle_cap(window)));
    std::printf("    \"rx_quota_drops\": %llu,\n",
                static_cast<unsigned long long>(host.rx_quota_drops));
    std::printf("    \"drained_frames\": %llu\n  }\n}\n",
                static_cast<unsigned long long>(host.drained));
    return 0;
  }

  std::vector<std::pair<double, std::vector<double>>> points;
  std::vector<std::string> cols = {"jain", "served kmsg/s", "p99 us"};
  for (const Point& p : grid) {
    if (p.load != 2000.0) continue;  // the saturating column
    points.push_back({static_cast<double>(p.n),
                      {p.jain_idx, p.served, p.p99}});
  }
  print_series("Multitenant", "fairness at 2000 kmsg/s offered",
               "tenants", cols, points, "mixed");
  std::printf("\ngauntlet: worst victim retention %.3f, mean %.3f "
              "(gate 0.8)\n", worst, mean_ret);
  return 0;
}
