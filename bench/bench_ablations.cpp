// Ablations over the design choices DESIGN.md calls out — not a paper
// table, but the knobs the paper discusses qualitatively:
//
//  * sandbox configuration (Section III-B / V-E): general epilogue on/off,
//    software budget checks vs the hardware timer, the x86 segmentation
//    mode that needs "almost no software checks";
//  * ASH dispatch with pre-bound address translation (Section III-A note);
//  * DILP composition depth: fused loop cost as pipes stack up, and the
//    Ethernet striped-source loop variant (Section III-C);
//  * the host execution engine (--code-cache={on,off}): pre-decoded
//    threaded form vs plain interpreter. Simulated cycles are bit-identical
//    on both paths; the axis only changes host wall-clock, reported in
//    Ablation C;
//  * the ashtrace tracer (--trace): a pure observer that never charges
//    simulated cycles, so enabling it must leave every simulated result
//    bit-identical (checked here) and only costs host wall-clock, reported
//    in Ablation D.
#include "bench_util.hpp"

#include <array>
#include <chrono>
#include <cstring>

#include "ashlib/handlers.hpp"
#include "core/ash.hpp"
#include "core/ash_env.hpp"
#include "dilp/engine.hpp"
#include "dilp/stdpipes.hpp"
#include "trace/trace.hpp"
#include "util/byteorder.hpp"
#include "vcode/backend.hpp"
#include "vcode/codecache.hpp"
#include "vcode/interp.hpp"
#include "vcode/jit/jit.hpp"

namespace ash::bench {
namespace {

// --backend={interp,codecache,jit}: which engine executes the handlers
// below (--code-cache={on,off} is the legacy two-way spelling).
vcode::Backend g_backend = vcode::Backend::CodeCache;

/// Cycles for one remote-increment invocation under the given options
/// (execution only; dispatch costs added per the option set).
double invocation_cycles(const core::AshOptions& opts) {
  sim::Simulator s;
  sim::Node& node = s.add_node("n");
  core::AshSystem ash_sys(node);
  const std::uint32_t seg = 0x100000;

  vcode::Program prog = ashlib::make_remote_increment();
  vcode::Program installed = prog;
  sandbox::Report report;
  if (opts.sandboxed) {
    sandbox::Options sb;
    sb.segment = {seg, 0x100000};
    sb.mode = opts.mode;
    sb.software_budget_checks = opts.software_budget_checks;
    sb.general_epilogue = opts.general_epilogue;
    std::string error;
    auto boxed = sandbox::sandbox(prog, sb, &error);
    if (!boxed) return -1;
    installed = std::move(boxed->program);
    report = boxed->report;
  }

  // Fabricate a 4-byte message + counter and execute directly.
  const std::uint32_t msg = seg + 0x8000;
  util::store_u32(node.mem(msg, 4), 42);
  core::AshEnv::Config ec;
  ec.node = &node;
  ec.owner_seg = {seg, 0x100000};
  ec.msg_addr = msg;
  ec.msg_len = 4;
  ec.engine = &ash_sys.dilp();
  ec.tx_cost = sim::us(4.0);
  core::AshEnv env(ec);
  vcode::ExecLimits limits;
  if (opts.software_budget_checks) {
    limits.software_budget = node.cost().ash_max_runtime;
  } else {
    limits.max_cycles = node.cost().ash_max_runtime;
  }
  vcode::ExecResult r;
  if (g_backend == vcode::Backend::Interp) {
    vcode::Interpreter interp(installed, env);
    interp.set_args(msg, 4, seg + 0x100, 0);
    r = interp.run(limits);
  } else {
    std::array<std::uint32_t, vcode::kNumRegs> regs{};
    regs[vcode::kRegArg0] = msg;
    regs[vcode::kRegArg1] = 4;
    regs[vcode::kRegArg2] = seg + 0x100;
    regs[vcode::kRegArg3] = 0;
    if (g_backend == vcode::Backend::Jit) {
      vcode::JitBackend jit(installed);
      r = jit.run(env, regs, limits);
    } else {
      vcode::CodeCache cache(installed);
      r = cache.run(env, regs, limits);
    }
  }
  if (r.outcome != vcode::Outcome::Halted) return -2;

  const auto& cost = node.cost();
  const sim::Cycles dispatch =
      cost.ash_timer_setup +
      (opts.prebound_translation ? 0 : cost.ash_context_install) +
      cost.ash_timer_clear;
  return static_cast<double>(r.cycles + dispatch);
}

/// Host nanoseconds per remote-increment invocation (sandboxed defaults),
/// one setup amortised over many runs — the same shape as AshSystem::invoke
/// (fresh Interpreter per run vs prebuilt translated form with fresh
/// registers).
double host_ns_per_invocation(vcode::Backend be) {
  sim::Simulator s;
  sim::Node& node = s.add_node("n");
  core::AshSystem ash_sys(node);
  const std::uint32_t seg = 0x100000;

  sandbox::Options sb;
  sb.segment = {seg, 0x100000};
  std::string error;
  auto boxed = sandbox::sandbox(ashlib::make_remote_increment(), sb, &error);
  if (!boxed) return -1;
  const vcode::Program installed = std::move(boxed->program);
  const vcode::CodeCache cache(installed);
  const vcode::JitBackend jit(installed);

  const std::uint32_t msg = seg + 0x8000;
  util::store_u32(node.mem(msg, 4), 42);
  core::AshEnv::Config ec;
  ec.node = &node;
  ec.owner_seg = {seg, 0x100000};
  ec.msg_addr = msg;
  ec.msg_len = 4;
  ec.engine = &ash_sys.dilp();
  ec.tx_cost = sim::us(4.0);
  core::AshEnv env(ec);
  vcode::ExecLimits limits;
  limits.max_cycles = node.cost().ash_max_runtime;

  constexpr int kWarmup = 2000;
  constexpr int kRuns = 20000;
  const auto once = [&]() -> vcode::Outcome {
    if (be == vcode::Backend::Interp) {
      vcode::Interpreter interp(installed, env);
      interp.set_args(msg, 4, seg + 0x100, 0);
      return interp.run(limits).outcome;
    }
    std::array<std::uint32_t, vcode::kNumRegs> regs{};
    regs[vcode::kRegArg0] = msg;
    regs[vcode::kRegArg1] = 4;
    regs[vcode::kRegArg2] = seg + 0x100;
    if (be == vcode::Backend::Jit) return jit.run(env, regs, limits).outcome;
    return cache.run(env, regs, limits).outcome;
  };
  for (int i = 0; i < kWarmup; ++i) {
    if (once() != vcode::Outcome::Halted) return -2;
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kRuns; ++i) once();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / kRuns;
}

double fused_insns_per_word(int n_pipes, bool striped) {
  dilp::PipeList pl;
  for (int i = 0; i < n_pipes; ++i) {
    switch (i % 3) {
      case 0: pl.add(dilp::make_cksum_pipe(nullptr)); break;
      case 1: pl.add(dilp::make_byteswap_pipe()); break;
      default: pl.add(dilp::make_xor_pipe(nullptr)); break;
    }
  }
  std::string error;
  dilp::LoopLayout layout;
  if (striped) layout.src_stripe_chunk = 16;
  const auto compiled =
      dilp::compile_pipes(pl, dilp::Direction::Write, &error, layout);
  return compiled.has_value() ? compiled->insns_per_word : -1;
}

}  // namespace
}  // namespace ash::bench

int main(int argc, char** argv) {
  using namespace ash::bench;
  using ash::core::AshOptions;

  bool with_trace = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--code-cache=on") == 0) {
      g_backend = ash::vcode::Backend::CodeCache;
    } else if (std::strcmp(argv[i], "--code-cache=off") == 0) {
      g_backend = ash::vcode::Backend::Interp;
    } else if (std::strcmp(argv[i], "--backend=interp") == 0) {
      g_backend = ash::vcode::Backend::Interp;
    } else if (std::strcmp(argv[i], "--backend=codecache") == 0) {
      g_backend = ash::vcode::Backend::CodeCache;
    } else if (std::strcmp(argv[i], "--backend=jit") == 0) {
      g_backend = ash::vcode::Backend::Jit;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      with_trace = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_ablations [--backend={interp,codecache,jit}]"
                   " [--code-cache={on,off}] [--trace]\n");
      return 2;
    }
  }
  std::printf("execution engine: %s (simulated cycles are identical on "
              "every path)\n",
              ash::vcode::to_string(g_backend));

  std::vector<Row> rows;
  {
    AshOptions o;
    o.sandboxed = false;
    rows.push_back({"unsafe (kernel-trusted)", invocation_cycles(o), -1,
                    "cycles/invocation"});
  }
  {
    AshOptions o;  // defaults: sandboxed, timer mode, epilogue on
    rows.push_back({"sandboxed, timer budget, full epilogue",
                    invocation_cycles(o), -1, "cycles/invocation"});
  }
  {
    AshOptions o;
    o.general_epilogue = false;
    rows.push_back({"sandboxed, lean exit code (paper's 'improved')",
                    invocation_cycles(o), -1, "cycles/invocation"});
  }
  {
    AshOptions o;
    o.software_budget_checks = true;
    rows.push_back({"sandboxed, software budget checks (no timer HW)",
                    invocation_cycles(o), -1, "cycles/invocation"});
  }
  {
    AshOptions o;
    o.mode = ash::sandbox::Mode::X86Segments;
    rows.push_back({"x86 segmentation mode (no software mem checks)",
                    invocation_cycles(o), -1, "cycles/invocation"});
  }
  {
    AshOptions o;
    o.prebound_translation = true;
    rows.push_back({"sandboxed + pre-bound translation (III-A note)",
                    invocation_cycles(o), -1, "cycles/invocation"});
  }
  print_table("Ablation A", "remote-increment invocation cost vs sandbox "
                            "configuration", rows);

  std::vector<Row> dilp_rows;
  for (int n = 0; n <= 3; ++n) {
    char label[64];
    std::snprintf(label, sizeof label, "%d pipe(s), contiguous source", n);
    dilp_rows.push_back({label, fused_insns_per_word(n, false), -1,
                         "insns/word"});
  }
  dilp_rows.push_back({"1 pipe, striped Ethernet source",
                       fused_insns_per_word(1, true), -1, "insns/word"});
  print_table("Ablation B", "DILP fused-loop cost vs composition depth",
              dilp_rows);
  std::printf("linear growth with actually-used pipes is the dynamic-ILP "
              "memory argument:\nstatic ILP grows with every *possible* "
              "composition instead (Section VI-3c).\n");

  std::vector<Row> host_rows;
  host_rows.push_back({"interpreter",
                       host_ns_per_invocation(ash::vcode::Backend::Interp),
                       -1, "host ns/invocation"});
  host_rows.push_back({"code cache (translate at download)",
                       host_ns_per_invocation(ash::vcode::Backend::CodeCache),
                       -1, "host ns/invocation"});
  host_rows.push_back({"superblock jit (fused pipe chains)",
                       host_ns_per_invocation(ash::vcode::Backend::Jit),
                       -1, "host ns/invocation"});
  print_table("Ablation C", "host execution engine (simulated results "
                            "bit-identical)", host_rows);

  if (with_trace) {
    // Invariance first: the tracer must not perturb a single simulated
    // cycle. Same invocation, tracer off vs on, compared exactly.
    AshOptions o;
    const double cycles_off = invocation_cycles(o);
    double cycles_on;
    {
      ash::trace::Session session;
      cycles_on = invocation_cycles(o);
    }
    if (cycles_off != cycles_on) {
      std::fprintf(stderr,
                   "FAIL: tracer perturbed simulated cycles (%f != %f)\n",
                   cycles_off, cycles_on);
      return 1;
    }
    std::printf("tracer invariance: simulated cycles identical on/off "
                "(%.0f)\n", cycles_off);

    // Overhead is host wall-clock only: the same measurement loop as
    // Ablation C, with the tracer recording every invocation.
    std::vector<Row> trace_rows;
    for (const auto be : {ash::vcode::Backend::Interp,
                          ash::vcode::Backend::CodeCache,
                          ash::vcode::Backend::Jit}) {
      const char* eng = ash::vcode::to_string(be);
      const double off_ns = host_ns_per_invocation(be);
      double on_ns;
      {
        ash::trace::Session session;
        on_ns = host_ns_per_invocation(be);
      }
      char label[96];
      std::snprintf(label, sizeof label, "%s, tracer off", eng);
      trace_rows.push_back({label, off_ns, -1, "host ns/invocation"});
      std::snprintf(label, sizeof label, "%s, tracer on (+%.1f%%)", eng,
                    off_ns > 0 ? (on_ns - off_ns) / off_ns * 100.0 : 0.0);
      trace_rows.push_back({label, on_ns, -1, "host ns/invocation"});
    }
    print_table("Ablation D", "ashtrace overhead (host wall-clock; "
                              "simulated results bit-identical)", trace_rows);
  }
  return 0;
}
