// Fig. 4 — remote-increment round-trip time as the number of competing
// processes on the receiving machine grows, for three configurations:
//  * ASH (in-kernel handling: latency decoupled from scheduling),
//  * user-level under Aegis' round-robin scheduler that is "oblivious to
//    message arrival" (the woken process waits its turn),
//  * user-level under an Ultrix-style scheduler "that raises the priority
//    of a process immediately after a network interrupt".
//
// Optional: --livelock additionally prints the receive-livelock ablation
// (Section VI-4): an ASH flood with and without the per-process quota.
#include "bench_util.hpp"

#include <cstring>

#include "ashlib/handlers.hpp"
#include "core/ash.hpp"
#include "proto/an2_link.hpp"

namespace ash::bench {
namespace {

using proto::An2Link;
using sim::Process;
using sim::Task;
using sim::us;

constexpr int kIters = 16;

enum class Mode { Ash, Oblivious, PriorityBoost };

double rtt_us(Mode mode, int competing) {
  sim::NodeConfig node_cfg;
  node_cfg.policy = mode == Mode::PriorityBoost
                        ? sim::SchedPolicy::PriorityBoost
                        : sim::SchedPolicy::RoundRobinOblivious;
  // A 1 ms quantum keeps the experiment's runtime manageable; the paper's
  // qualitative axes (flat ASH, linear oblivious, damped priority-boost)
  // do not depend on the exact timeslice.
  node_cfg.cost.quantum = us(1000.0);
  if (mode == Mode::PriorityBoost) {
    // The paper measured this configuration *under Ultrix*, whose
    // crossings cost an order of magnitude more than Aegis' (Section V):
    // load its per-message user-level path accordingly.
    node_cfg.cost.an2_user_recv_overhead +=
        node_cfg.cost.ultrix_crossing_extra;
    node_cfg.cost.an2_user_send_overhead +=
        node_cfg.cost.ultrix_crossing_extra / 2;
    node_cfg.cost.context_switch += us(25.0);
  }
  An2World w({}, node_cfg);
  core::AshSystem ash_sys(*w.b);
  sim::Cycles t0 = 0, t1 = 0;
  bool done = false;

  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    if (mode == Mode::Ash) {
      const int vc = w.dev_b->bind_vc(self);
      for (int i = 0; i < 32; ++i) {
        w.dev_b->supply_buffer(
            vc, self.segment().base + 64u * static_cast<std::uint32_t>(i),
            64);
      }
      std::string error;
      const int id = ash_sys.download(self, ashlib::make_remote_increment(),
                                      {}, &error);
      ash_sys.attach_an2(*w.dev_b, vc, id, self.segment().base + 0x4000);
      while (!done) co_await self.sleep_for(us(2000.0));
      co_return;
    }
    An2Link::Config cfg;
    cfg.mode = proto::RecvMode::Interrupt;
    An2Link link(self, *w.dev_b, cfg);
    const std::uint32_t ctr = self.segment().base + 0x100;
    for (int i = 0; i < kIters; ++i) {
      const net::RxDesc d = co_await link.recv();
      std::uint8_t* c = self.node().mem(ctr, 4);
      c[0] = static_cast<std::uint8_t>(c[0] + 1);
      co_await self.compute(4);
      const bool sent = co_await link.send(d.addr, d.len);
      (void)sent;
      link.release(d);
    }
  });

  // Competing CPU-bound processes on the receiving machine.
  for (int i = 0; i < competing; ++i) {
    w.b->kernel().spawn("hog", [&done](Process& self) -> Task {
      while (!done) co_await self.compute(2000);
    });
  }

  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    co_await self.sleep_for(us(2000.0));
    const std::uint8_t ping[] = {1, 2, 3, 4};
    t0 = self.node().now();
    for (int i = 0; i < kIters; ++i) {
      const bool sent = co_await link.send_bytes(ping);
      (void)sent;
      const net::RxDesc d = co_await link.recv();
      link.release(d);
    }
    t1 = self.node().now();
    done = true;
  });

  w.sim.run(us(2e6 + 2e5 * competing * kIters));
  return sim::to_us(t1 - t0) / kIters;
}

void livelock_ablation() {
  // Flood the server with messages faster than ASHs alone should be
  // allowed to consume CPU; compare handled counts with and without the
  // Section VI-4 quota, and show the victim process still makes progress.
  for (const bool quota : {false, true}) {
    An2World w;
    core::AshSystem ash_sys(*w.b);
    if (quota) ash_sys.set_livelock_quota(64, us(10000.0));
    int ash_id = -1;
    std::uint64_t victim_work = 0;

    w.b->kernel().spawn("owner", [&](Process& self) -> Task {
      const int vc = w.dev_b->bind_vc(self);
      for (int i = 0; i < 64; ++i) {
        w.dev_b->supply_buffer(
            vc, self.segment().base + 64u * static_cast<std::uint32_t>(i),
            64);
      }
      std::string error;
      ash_id = ash_sys.download(self, ashlib::make_remote_increment(), {},
                                &error);
      ash_sys.attach_an2(*w.dev_b, vc, ash_id, self.segment().base + 0x4000);
      // Drain the fallback ring so deferred messages do not starve buffers.
      for (;;) {
        while (w.dev_b->poll(vc).has_value()) {
          co_await self.compute(100);
        }
        co_await self.sleep_for(us(500.0));
        if (self.node().now() > us(90000.0)) co_return;
      }
    });
    w.b->kernel().spawn("victim", [&](Process& self) -> Task {
      while (self.node().now() < us(90000.0)) {
        co_await self.compute(1000);
        ++victim_work;
      }
    });
    w.a->kernel().spawn("flood", [&](Process& self) -> Task {
      const std::uint8_t m[] = {1, 2, 3, 4};
      for (int i = 0; i < 2000; ++i) {
        w.dev_a->send(0, m);
        co_await self.compute(400);  // ~10 us between sends
      }
    });
    w.sim.run(us(1e5));
    const auto& st = ash_sys.stats(ash_id);
    std::printf("  quota %-3s: ash runs %6llu, deferred %6llu, victim "
                "compute slices %llu\n",
                quota ? "on" : "off",
                static_cast<unsigned long long>(st.commits),
                static_cast<unsigned long long>(st.livelock_deferrals),
                static_cast<unsigned long long>(victim_work));
  }
}

}  // namespace
}  // namespace ash::bench

int main(int argc, char** argv) {
  using namespace ash::bench;
  std::vector<std::pair<double, std::vector<double>>> points;
  for (int n = 0; n <= 7; ++n) {
    points.push_back({static_cast<double>(n),
                      {rtt_us(Mode::Ash, n), rtt_us(Mode::Oblivious, n),
                       rtt_us(Mode::PriorityBoost, n)}});
  }
  print_series("Fig. 4", "remote increment RTT vs competing processes",
               "#processes", {"ASH", "oblivious RR", "priority boost"},
               points, "us/RTT");
  std::printf("paper: ASH stays near-constant; the oblivious scheduler "
              "grows with the process count;\nthe Ultrix-style boosting "
              "scheduler damps but does not eliminate the effect.\n");

  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--livelock") {
      std::printf("\nreceive-livelock quota ablation (Section VI-4):\n");
      livelock_ablation();
    }
  }
  return 0;
}
