// Table I — raw 4-byte round-trip latency: in-kernel AN2, user-level AN2,
// and user-level Ethernet (microseconds per round trip).
#include "bench_util.hpp"

#include "proto/an2_link.hpp"
#include "proto/headers.hpp"

namespace ash::bench {
namespace {

using proto::An2Link;
using sim::Process;
using sim::Task;
using sim::us;

constexpr int kIters = 32;

/// In-kernel AN2: both sides consume and reply from kernel receive hooks —
/// the best hand-written in-kernel path (no scheduling, no crossings).
double in_kernel_an2() {
  An2World w;
  int rtts = 0;
  sim::Cycles t0 = 0, t1 = 0;

  auto setup = [&](sim::Node* node, net::An2Device* dev, bool client) {
    node->kernel().spawn(client ? "client" : "server",
                         [&, node, dev, client](Process& self) -> Task {
      const int vc = dev->bind_vc(self);
      for (int i = 0; i < 32; ++i) {
        dev->supply_buffer(
            vc, self.segment().base + 64u * static_cast<std::uint32_t>(i),
            64);
      }
      dev->set_kernel_hook(vc, [&, node, dev,
                                client](const net::An2Device::RxEvent& ev) {
        if (client) {
          ++rtts;
          if (rtts == kIters) {
            t1 = node->now();
            return true;
          }
        }
        node->kernel_work(dev->config().tx_kernel_work, [dev, ev] {
          dev->send_from(0, ev.desc.addr, ev.desc.len);
        });
        return true;
      });
      co_await self.compute(1);
    });
  };
  setup(w.a, w.dev_a, true);
  setup(w.b, w.dev_b, false);
  w.sim.queue().schedule_at(us(100.0), [&] {
    t0 = w.a->now();
    const std::uint8_t m[] = {1, 2, 3, 4};
    w.dev_a->send(0, m);
  });
  w.sim.run(us(1e6));
  return sim::to_us(t1 - t0) / kIters;
}

/// User-level AN2: raw link access from polling processes with full system
/// calls on the send path.
double user_level_an2() {
  An2World w;
  sim::Cycles t0 = 0, t1 = 0;

  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, {});
    for (int i = 0; i < kIters; ++i) {
      const net::RxDesc d = co_await link.recv();
      const bool sent = co_await link.send(d.addr, d.len);
      (void)sent;
      link.release(d);
    }
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, {});
    co_await self.sleep_for(us(1000.0));
    const std::uint8_t ping[] = {1, 2, 3, 4};
    t0 = self.node().now();
    for (int i = 0; i < kIters; ++i) {
      const bool sent = co_await link.send_bytes(ping);
      (void)sent;
      const net::RxDesc d = co_await link.recv();
      link.release(d);
    }
    t1 = self.node().now();
  });
  w.sim.run(us(1e6));
  return sim::to_us(t1 - t0) / kIters;
}

/// User-level Ethernet: raw 4-byte frames through DPF demux, polling.
double user_level_ethernet() {
  EthWorld w;
  sim::Cycles t0 = 0, t1 = 0;
  constexpr std::uint16_t kType = 0x88b5;  // local experimental ethertype

  auto echo = [&](sim::Node* node, net::EthernetDevice* dev, bool client) {
    node->kernel().spawn(client ? "client" : "server",
                         [&, node, dev, client](Process& self) -> Task {
      dpf::Filter f;
      f.atoms = {dpf::atom_be16(12, kType)};
      const int ep = dev->attach(self, f);
      for (int i = 0; i < 8; ++i) {
        dev->supply_buffer(
            ep, self.segment().base + 128u * static_cast<std::uint32_t>(i),
            128);
      }
      std::uint8_t frame[18] = {};
      frame[12] = kType >> 8;
      frame[13] = kType & 0xff;

      if (client) co_await self.sleep_for(us(2000.0));
      if (client) t0 = node->now();
      for (int i = 0; i < kIters; ++i) {
        if (client) {
          co_await self.syscall(dev->config().tx_kernel_work +
                                node->cost().an2_user_send_overhead);
          dev->send(frame);
        }
        for (;;) {
          if (auto d = dev->poll(ep)) {
            co_await self.compute(node->cost().an2_user_recv_overhead);
            dev->return_buffer(ep, d->addr, 128);
            break;
          }
          co_await self.compute(node->cost().poll_iteration);
        }
        if (!client) {
          co_await self.syscall(dev->config().tx_kernel_work +
                                node->cost().an2_user_send_overhead);
          dev->send(frame);
        }
      }
      if (client) t1 = node->now();
    });
  };
  echo(w.a, w.dev_a, true);
  echo(w.b, w.dev_b, false);
  w.sim.run(us(1e6));
  return sim::to_us(t1 - t0) / kIters;
}

}  // namespace
}  // namespace ash::bench

int main() {
  using namespace ash::bench;
  std::vector<Row> rows;
  rows.push_back({"in-kernel AN2", in_kernel_an2(), 112, "us/RTT"});
  rows.push_back({"user-level AN2", user_level_an2(), 182, "us/RTT"});
  rows.push_back({"Ethernet (user-level)", user_level_ethernet(), 309,
                  "us/RTT"});
  print_table("Table I", "raw 4-byte round-trip latency", rows);
  return 0;
}
