// Extension (not a paper table): the TCP receive fast path as a sandboxed
// ASH over the *Ethernet*, where the message sits in a striped kernel
// buffer and the handler works through trusted message access — the paper
// evaluated TCP handlers on the AN2 only (Table VI).
#include "bench_util.hpp"

#include <algorithm>
#include <memory>

#include "ashlib/tcp_fastpath.hpp"
#include "proto/eth_link.hpp"

namespace ash::bench {
namespace {

using proto::EthLink;
using proto::Ipv4Addr;
using proto::MacAddr;
using proto::TcpConfig;
using proto::TcpConnection;
using sim::Process;
using sim::Task;
using sim::us;

const Ipv4Addr kIpA = Ipv4Addr::of(192, 168, 0, 1);
const Ipv4Addr kIpB = Ipv4Addr::of(192, 168, 0, 2);
const MacAddr kMacA{{{2, 0, 0, 0, 0, 1}}};
const MacAddr kMacB{{{2, 0, 0, 0, 0, 2}}};

enum class Mode { SandboxedAsh, UnsafeAsh, UserPoll, UserInterrupt };

TcpConfig cfg_for(bool client) {
  TcpConfig c;
  c.local_ip = client ? kIpA : kIpB;
  c.remote_ip = client ? kIpB : kIpA;
  c.local_port = client ? 4000 : 5000;
  c.remote_port = client ? 5000 : 4000;
  c.iss = client ? 100 : 900;
  c.mss = 1456;
  return c;
}

struct ExtResult {
  double mbps = 0;
  std::uint32_t commits = 0;
  std::uint32_t fallbacks = 0;
  double kernel_cycles_per_kb = 0;
};

ExtResult throughput_mbps(Mode mode, std::uint32_t total) {
  EthWorld w;
  core::AshSystem ash_b(*w.b);
  sim::Cycles t0 = 0, t1 = 0;
  ExtResult res;

  w.b->kernel().spawn("sink", [&](Process& self) -> Task {
    EthLink::Config lc{kMacB, kMacA};
    lc.rx_buffers = 24;
    lc.mode = mode == Mode::UserInterrupt ? proto::RecvMode::Interrupt
                                          : proto::RecvMode::Polling;
    EthLink link(self, *w.dev_b, lc);
    TcpConnection conn(link, cfg_for(false));
    if (mode == Mode::SandboxedAsh || mode == Mode::UnsafeAsh) {
      core::AshOptions opts;
      opts.sandboxed = mode == Mode::SandboxedAsh;
      std::string error;
      const auto fp = ashlib::install_tcp_fastpath_eth(
          ash_b, *w.dev_b, link.endpoint(), conn, kMacB, kMacA, opts,
          &error);
      if (!fp.has_value()) std::fprintf(stderr, "%s\n", error.c_str());
    }
    const bool ok = co_await conn.accept();
    (void)ok;
    std::uint32_t got = 0;
    while (got < total) {
      const std::uint32_t n = co_await conn.read_discard(total - got);
      if (n == 0) break;
      got += n;
    }
    t1 = self.node().now();
    res.commits = conn.shm().get(proto::tcb::kAshCommits);
    res.fallbacks = conn.shm().get(proto::tcb::kAshFallbacks);
  });
  w.a->kernel().spawn("source", [&](Process& self) -> Task {
    EthLink link(self, *w.dev_a, {kMacA, kMacB});
    TcpConnection conn(link, cfg_for(true));
    co_await self.sleep_for(us(500.0));
    const bool ok = co_await conn.connect();
    (void)ok;
    const std::uint32_t buf = self.segment().base;
    fill_pattern(self.node(), buf, 8192, 3);
    t0 = self.node().now();
    for (std::uint32_t off = 0; off < total; off += 8192) {
      const bool sent =
          co_await conn.write_from(buf, std::min(8192u, total - off));
      (void)sent;
    }
  });
  w.sim.run(us(6e7));
  const double seconds = sim::to_us(t1 - t0) / 1e6;
  res.mbps = static_cast<double>(total) / seconds / 1e6;
  res.kernel_cycles_per_kb =
      static_cast<double>(w.b->kernel_cycles_total()) / (total / 1024.0);
  return res;
}

}  // namespace
}  // namespace ash::bench

int main() {
  using namespace ash::bench;
  const std::uint32_t total = 1u << 20;
  const struct {
    const char* name;
    Mode mode;
  } spec[] = {
      {"Sandboxed ASH (striped kernel buffers)", Mode::SandboxedAsh},
      {"Unsafe ASH", Mode::UnsafeAsh},
      {"User-level (polling)", Mode::UserPoll},
      {"User-level (interrupt)", Mode::UserInterrupt},
  };
  std::vector<Row> rows;
  ExtResult sandboxed{};
  for (const auto& sp : spec) {
    const ExtResult r = throughput_mbps(sp.mode, total);
    if (sp.mode == Mode::SandboxedAsh) sandboxed = r;
    rows.push_back({std::string(sp.name) + "  throughput", r.mbps, -1,
                    "MB/s"});
    rows.push_back({std::string(sp.name) + "  receiver kernel work",
                    r.kernel_cycles_per_kb, -1, "cycles/KB"});
  }
  print_table("Extension", "TCP fast path as an ASH over Ethernet "
                           "(beyond the paper's AN2-only Table VI)", rows);
  std::printf(
      "the 10 Mb/s wire bounds throughput near 1.1 MB/s in every mode. In "
      "the ASH modes the\nper-segment protocol work moved INTO kernel "
      "context (higher kernel cycles/KB, with the\nprocess freed to run "
      "other work — Fig. 4's mechanism); the sandboxed handler consumed\n"
      "%u segments in the interrupt path (%u fell back to the library).\n",
      sandboxed.commits, sandboxed.fallbacks);
  return 0;
}
