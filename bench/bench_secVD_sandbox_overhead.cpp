// Section V-D — sandboxing overhead in isolation (no communication):
// a generic, kernel-trusted remote write (Thekkath-style: segment number +
// offset + size + translation tables) versus an application-specific
// remote write (trusted-peer protocol: a raw pointer in the message),
// sandboxed and unsandboxed, for 40-byte and 4096-byte writes.
//
// Paper: sandboxed/unsafe = 1.3-1.4x at 40 bytes, 1.01-1.02x at 4096;
// dynamic instruction counts (excluding the copy): hand-crafted specific
// 10, sandboxed specific 38, generic hand-crafted 68.
#include "bench_util.hpp"

#include <cstring>

#include "ashlib/handlers.hpp"
#include "core/ash.hpp"
#include "core/ash_env.hpp"
#include "util/byteorder.hpp"
#include "vcode/interp.hpp"

namespace ash::bench {
namespace {

struct Measure {
  double cycles = 0;
  double insns = 0;  // dynamic instructions, excluding the bulk copy
};

/// Run `prog` once over a fabricated message in a single-node world.
Measure run_once(const vcode::Program& prog, bool generic,
                 std::uint32_t payload) {
  sim::Simulator s;
  sim::Node& node = s.add_node("n");
  core::AshSystem ash_sys(node);
  const std::uint32_t seg = 0x100000;

  // Message: either [ptr | payload] or [seg# | off | size | payload].
  const std::uint32_t msg = seg + 0x8000;
  const std::uint32_t hdr = generic ? 12u : 4u;
  std::uint8_t* m = node.mem(msg, hdr + payload);
  const std::uint32_t dst_region = seg + 0x20000;
  if (generic) {
    // Translation table at seg+0x100: 1 entry {dst_region, 64 KB}.
    util::store_u32(node.mem(seg + 0x100, 4), 1);
    util::store_u32(node.mem(seg + 0x104, 4), dst_region);
    util::store_u32(node.mem(seg + 0x108, 4), 64 * 1024);
    util::store_u32(m + 0, 0);        // segment 0
    util::store_u32(m + 4, 128);      // offset
    util::store_u32(m + 8, payload);  // size
  } else {
    util::store_u32(m, dst_region + 128);
  }
  for (std::uint32_t i = 0; i < payload; ++i) {
    m[hdr + i] = static_cast<std::uint8_t>(i);
  }

  core::AshEnv::Config ec;
  ec.node = &node;
  ec.owner_seg = {seg, 0x100000};
  ec.msg_addr = msg;
  ec.msg_len = hdr + payload;
  ec.engine = &ash_sys.dilp();
  ec.tx_cost = 0;
  core::AshEnv env(ec);

  vcode::Interpreter interp(prog, env);
  interp.set_args(msg, hdr + payload, generic ? seg + 0x100 : 0, 0);
  const auto r = interp.run({});
  if (r.outcome != vcode::Outcome::Halted) {
    std::fprintf(stderr, "handler failed: %s at %u\n",
                 vcode::to_string(r.outcome), r.fault_pc);
  }
  Measure out;
  out.cycles = static_cast<double>(r.cycles);
  out.insns = static_cast<double>(r.insns);
  return out;
}

}  // namespace
}  // namespace ash::bench

int main() {
  using namespace ash::bench;
  using ash::sandbox::Options;
  using ash::sandbox::sandbox;

  const auto specific = ash::ashlib::make_remote_write_specific();
  const auto generic = ash::ashlib::make_remote_write_generic();
  Options opts;
  opts.segment = {0x100000, 0x100000};
  std::string error;
  const auto boxed_specific = sandbox(specific, opts, &error);
  if (!boxed_specific) {
    std::fprintf(stderr, "sandbox failed: %s\n", error.c_str());
    return 1;
  }

  std::vector<Row> rows;
  for (const std::uint32_t bytes : {40u, 4096u}) {
    const Measure unsafe = run_once(specific, false, bytes);
    const Measure boxed = run_once(boxed_specific->program, false, bytes);
    const Measure gen = run_once(generic, true, bytes);
    const double paper_ratio = bytes == 40 ? 1.35 : 1.015;
    char label[80];
    std::snprintf(label, sizeof label, "sandboxed/unsafe ratio, %u-byte",
                  bytes);
    rows.push_back({label, boxed.cycles / unsafe.cycles, paper_ratio, "x"});
    std::snprintf(label, sizeof label, "  unsafe specific cycles, %u-byte",
                  bytes);
    rows.push_back({label, unsafe.cycles, -1, "cycles"});
    std::snprintf(label, sizeof label, "  generic (trusted) cycles, %u-byte",
                  bytes);
    rows.push_back({label, gen.cycles, -1, "cycles"});
  }

  // Static/dynamic instruction accounting (paper: 10 -> 38 vs 68 generic).
  const Measure u40 = run_once(specific, false, 40);
  const Measure b40 = run_once(boxed_specific->program, false, 40);
  const Measure g40 = run_once(generic, true, 40);
  rows.push_back({"dyn insns: hand-crafted specific", u40.insns, 10,
                  "insns"});
  rows.push_back({"dyn insns: sandboxed specific", b40.insns, 38, "insns"});
  rows.push_back({"dyn insns: generic (trusted)", g40.insns, 68, "insns"});
  rows.push_back({"sandbox added (static)",
                  static_cast<double>(boxed_specific->report.added()), 28,
                  "insns"});

  print_table("Sec. V-D", "sandboxing overhead for remote write", rows);
  std::printf("note: instruction counts exclude the bulk copy, which runs "
              "through the kernel's\nchecked TUserCopy on both paths "
              "(access checks aggregated at initiation).\n");
  return 0;
}
