// Shared harness pieces for the reproduction benches.
//
// Every bench binary prints the paper's rows with the measured (simulated)
// value beside the paper's published value, so `for b in build/bench/*; do
// $b; done` regenerates the whole evaluation section in one pass.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "net/an2.hpp"
#include "net/ethernet.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace ash::bench {

struct Row {
  std::string label;
  double measured;
  double paper;  // <0 = not reported in the paper
  std::string unit;
};

inline void print_table(const char* id, const char* title,
                        const std::vector<Row>& rows) {
  std::printf("\n=== %s: %s ===\n", id, title);
  std::printf("%-44s %12s %12s  %s\n", "configuration", "measured",
              "paper", "unit");
  for (const Row& r : rows) {
    if (r.paper >= 0) {
      std::printf("%-44s %12.2f %12.2f  %s\n", r.label.c_str(), r.measured,
                  r.paper, r.unit.c_str());
    } else {
      std::printf("%-44s %12.2f %12s  %s\n", r.label.c_str(), r.measured,
                  "-", r.unit.c_str());
    }
  }
}

inline void print_series(const char* id, const char* title,
                         const char* x_label,
                         const std::vector<std::string>& col_names,
                         const std::vector<std::pair<double,
                                                     std::vector<double>>>&
                             points,
                         const char* unit) {
  std::printf("\n=== %s: %s (%s) ===\n", id, title, unit);
  std::printf("%-12s", x_label);
  for (const auto& c : col_names) std::printf(" %16s", c.c_str());
  std::printf("\n");
  for (const auto& [x, ys] : points) {
    std::printf("%-12.0f", x);
    for (double y : ys) std::printf(" %16.2f", y);
    std::printf("\n");
  }
}

/// Two nodes joined by an AN2 link (the standard testbed).
struct An2World {
  sim::Simulator sim;
  sim::Node* a;
  sim::Node* b;
  net::An2Device* dev_a;
  net::An2Device* dev_b;

  explicit An2World(const net::An2Config& cfg = {},
                    const sim::NodeConfig& node_cfg = {}) {
    a = &sim.add_node("a", node_cfg);
    b = &sim.add_node("b", node_cfg);
    dev_a = new net::An2Device(*a, cfg);
    dev_b = new net::An2Device(*b, cfg);
    dev_a->connect(*dev_b);
  }
  ~An2World() {
    delete dev_a;
    delete dev_b;
  }
  An2World(const An2World&) = delete;
  An2World& operator=(const An2World&) = delete;
};

/// Two nodes joined by Ethernet.
struct EthWorld {
  sim::Simulator sim;
  sim::Node* a;
  sim::Node* b;
  net::EthernetDevice* dev_a;
  net::EthernetDevice* dev_b;

  explicit EthWorld(const net::EthernetConfig& cfg = {}) {
    a = &sim.add_node("a");
    b = &sim.add_node("b");
    dev_a = new net::EthernetDevice(*a, cfg);
    dev_b = new net::EthernetDevice(*b, cfg);
    dev_a->connect(*dev_b);
  }
  ~EthWorld() {
    delete dev_a;
    delete dev_b;
  }
  EthWorld(const EthWorld&) = delete;
  EthWorld& operator=(const EthWorld&) = delete;
};

inline void fill_pattern(sim::Node& node, std::uint32_t addr,
                         std::uint32_t len, std::uint64_t seed) {
  util::Rng rng(seed);
  std::uint8_t* p = node.mem(addr, len);
  for (std::uint32_t i = 0; i < len; ++i) {
    p[i] = static_cast<std::uint8_t>(rng.next());
  }
}

}  // namespace ash::bench
