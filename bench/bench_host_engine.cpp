// Host execution-engine microbenchmark: ns per VCODE invocation for the
// plain interpreter vs the download-time translated form (CodeCache) vs
// the superblock JIT, on the handlers the paper's evaluation leans on:
//
//  * Table V's remote-increment (sandboxed),
//  * Table VI's TCP receive fast path, replayed on a real committing
//    invocation captured from a live simulated transfer (header
//    prediction hit, fused checksum+copy DILP, ACK template patch+send),
//  * the fused DILP pipe chain (checksum + byteswap + copy) standalone,
//    where the JIT collapses the whole loop into one host pass.
//
// Simulated results (outcome, cycles, insns, registers) are bit-identical
// on all three paths — asserted at setup — so this measures only how fast
// the host machine turns the simulation crank.
//
// Modes:
//   (none)    google-benchmark timings for every (workload, backend) pair
//   --smoke   acceptance gate: jit must beat the interpreter by >= 3x on
//             the TCP fast path; exits nonzero otherwise
//   --json    manual timing sweep; prints the speedup series per workload
//             and writes BENCH_host_engine.json (BENCH_scaling.json shape)
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "ashlib/handlers.hpp"
#include "ashlib/tcp_fastpath.hpp"
#include "core/ash.hpp"
#include "core/ash_env.hpp"
#include "dilp/engine.hpp"
#include "dilp/stdpipes.hpp"
#include "proto/an2_link.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/byteorder.hpp"
#include "util/rng.hpp"
#include "vcode/backend.hpp"
#include "vcode/codecache.hpp"
#include "vcode/env_util.hpp"
#include "vcode/interp.hpp"
#include "vcode/jit/jit.hpp"

namespace ash::bench {
namespace {

using proto::An2Link;
using proto::Ipv4Addr;
using proto::TcpConfig;
using proto::TcpConnection;
using sim::Process;
using sim::Task;
using sim::us;
using vcode::Backend;

constexpr Backend kBackends[] = {Backend::Interp, Backend::CodeCache,
                                 Backend::Jit};

// ---------------------------------------------------------------- TCP ----

TcpConfig fixture_cfg(bool client) {
  TcpConfig c;
  c.local_ip = client ? Ipv4Addr::of(10, 0, 0, 1) : Ipv4Addr::of(10, 0, 0, 2);
  c.remote_ip = client ? Ipv4Addr::of(10, 0, 0, 2) : Ipv4Addr::of(10, 0, 0, 1);
  c.local_port = client ? 4000 : 5000;
  c.remote_port = client ? 5000 : 4000;
  c.iss = client ? 100 : 900;
  c.checksum = true;
  return c;
}

/// A frozen fast-path invocation: the sandboxed handler, the packet bytes,
/// and the pre-invocation TCB snapshot of the first data segment that
/// committed during a real transfer. Restoring TCB + packet makes every
/// replay take the identical full commit path (DILP copy, ACK send).
struct TcpFixture {
  sim::Simulator sim;
  sim::Node* a = nullptr;
  sim::Node* b = nullptr;
  std::unique_ptr<net::An2Device> dev_a, dev_b;
  std::unique_ptr<core::AshSystem> ash_b;
  std::unique_ptr<vcode::JitBackend> jit;
  int ash_id = -1;

  bool captured = false;
  std::uint32_t msg_addr = 0, msg_len = 0, tcb_base = 0;
  int channel = 0;
  std::uint32_t owner_base = 0, owner_size = 0;
  std::array<std::uint32_t, proto::tcb::kWords> tcb{};
  std::vector<std::uint8_t> packet;
  std::uint64_t sim_insns = 0;   // per replay, identical on every engine
  std::uint64_t sim_cycles = 0;
};

void restore(TcpFixture& f) {
  proto::TcbShm shm(*f.b, f.tcb_base);
  for (std::uint32_t i = 0; i < proto::tcb::kWords; ++i) shm.set(i, f.tcb[i]);
  std::memcpy(f.b->mem(f.msg_addr, f.msg_len), f.packet.data(), f.msg_len);
}

vcode::ExecResult replay(TcpFixture& f, Backend be) {
  restore(f);
  core::AshEnv::Config ec;
  ec.node = f.b;
  ec.owner_seg = {f.owner_base, f.owner_size};
  ec.msg_addr = f.msg_addr;
  ec.msg_len = f.msg_len;
  ec.engine = &f.ash_b->dilp();
  ec.tx_cost = f.dev_b->config().tx_kernel_work;
  core::AshEnv env(ec);
  vcode::ExecLimits limits;
  limits.max_insns = 1u << 20;
  limits.max_cycles = f.b->cost().ash_max_runtime;
  // The handler's TDilp transfer runs on the same engine under test.
  f.ash_b->dilp().set_backend(be);
  if (be == Backend::Interp) {
    vcode::Interpreter interp(f.ash_b->program(f.ash_id), env);
    interp.set_args(f.msg_addr, f.msg_len, f.tcb_base,
                    static_cast<std::uint32_t>(f.channel));
    return interp.run(limits);
  }
  std::array<std::uint32_t, vcode::kNumRegs> regs{};
  regs[vcode::kRegArg0] = f.msg_addr;
  regs[vcode::kRegArg1] = f.msg_len;
  regs[vcode::kRegArg2] = f.tcb_base;
  regs[vcode::kRegArg3] = static_cast<std::uint32_t>(f.channel);
  if (be == Backend::Jit) return f.jit->run(env, regs, limits);
  return f.ash_b->code_cache(f.ash_id)->run(env, regs, limits);
}

TcpFixture* build_tcp_fixture() {
  auto* f = new TcpFixture;
  f->a = &f->sim.add_node("a");
  f->b = &f->sim.add_node("b");
  f->dev_a = std::make_unique<net::An2Device>(*f->a);
  f->dev_b = std::make_unique<net::An2Device>(*f->b);
  f->dev_a->connect(*f->dev_b);
  f->ash_b = std::make_unique<core::AshSystem>(*f->b);
  constexpr std::uint32_t kTotal = 4096;

  f->b->kernel().spawn("server", [f](Process& self) -> Task {
    An2Link link(self, *f->dev_b, {});
    TcpConnection conn(link, fixture_cfg(false));
    std::string error;
    core::AshOptions opts;  // sandboxed, code cache on
    const auto fp = ashlib::install_tcp_fastpath(*f->ash_b, *f->dev_b,
                                                 link.vc(), conn, opts,
                                                 &error);
    if (!fp.has_value()) {
      std::fprintf(stderr, "fastpath install failed: %s\n", error.c_str());
      co_return;
    }
    f->ash_id = fp->ash_id;
    f->tcb_base = conn.shm().base();
    f->owner_base = self.segment().base;
    f->owner_size = self.segment().size;

    // Re-wrap the attach hook: same invocation as AshSystem::attach_an2,
    // plus a pre-invoke TCB snapshot so the first committing data segment
    // can be replayed later.
    net::An2Device* dev = f->dev_b.get();
    core::AshSystem* sys = f->ash_b.get();
    const sim::Cycles txc = dev->config().tx_kernel_work;
    dev->set_kernel_hook(
        link.vc(), [f, dev, sys, txc](const net::An2Device::RxEvent& ev) {
          std::array<std::uint32_t, proto::tcb::kWords> pre{};
          proto::TcbShm shm(*f->b, f->tcb_base);
          for (std::uint32_t i = 0; i < proto::tcb::kWords; ++i) {
            pre[i] = shm.get(i);
          }
          core::MsgContext msg;
          msg.addr = ev.desc.addr;
          msg.len = ev.desc.len;
          msg.channel = ev.vc;
          msg.user_arg = f->tcb_base;
          const auto before = sys->stats(f->ash_id).commits;
          const bool consumed = sys->invoke(
              f->ash_id, msg,
              [dev](int chan, std::span<const std::uint8_t> bytes) {
                return dev->send(chan, bytes);
              },
              txc);
          if (!f->captured && sys->stats(f->ash_id).commits > before) {
            f->captured = true;
            f->msg_addr = msg.addr;
            f->msg_len = msg.len;
            f->channel = msg.channel;
            f->tcb = pre;
            const std::uint8_t* p = f->b->mem(msg.addr, msg.len);
            f->packet.assign(p, p + msg.len);
          }
          return consumed;
        });

    const bool accepted = co_await conn.accept();
    if (!accepted) co_return;
    const std::uint32_t buf = self.segment().base;
    std::uint32_t got = 0;
    while (got < kTotal) {
      const std::uint32_t n = co_await conn.read_into(buf, kTotal - got);
      if (n == 0) break;
      got += n;
    }
  });

  f->a->kernel().spawn("client", [f](Process& self) -> Task {
    An2Link link(self, *f->dev_a, {});
    TcpConnection conn(link, fixture_cfg(true));
    co_await self.sleep_for(us(500.0));
    const bool connected = co_await conn.connect();
    if (!connected) co_return;
    const std::uint32_t buf = self.segment().base;
    util::Rng rng(7);
    std::uint8_t* p = self.node().mem(buf, kTotal);
    for (std::uint32_t i = 0; i < kTotal; ++i) {
      p[i] = static_cast<std::uint8_t>(rng.next());
    }
    const bool wrote = co_await conn.write_from(buf, kTotal);
    (void)wrote;
  });

  f->sim.run(us(5e6));
  if (!f->captured) {
    std::fprintf(stderr, "bench_host_engine: no committing fast-path "
                         "invocation captured\n");
    std::exit(1);
  }
  f->jit = std::make_unique<vcode::JitBackend>(f->ash_b->program(f->ash_id));

  // All engines must replay to an identical commit before we time them.
  // One discarded warm-up first: the node's cache model charges cold
  // misses on the first pass, and we compare cycles exactly.
  (void)replay(*f, Backend::Interp);
  const vcode::ExecResult ri = replay(*f, Backend::Interp);
  const vcode::ExecResult rc = replay(*f, Backend::CodeCache);
  const vcode::ExecResult rj = replay(*f, Backend::Jit);
  if (ri.outcome != vcode::Outcome::Halted ||
      rc.outcome != vcode::Outcome::Halted ||
      rj.outcome != vcode::Outcome::Halted || ri.insns != rc.insns ||
      ri.cycles != rc.cycles || ri.result != rc.result ||
      ri.insns != rj.insns || ri.cycles != rj.cycles ||
      ri.result != rj.result) {
    std::fprintf(stderr, "bench_host_engine: engines disagree on the "
                         "captured invocation\n");
    std::exit(1);
  }
  f->sim_insns = ri.insns;
  f->sim_cycles = ri.cycles;
  return f;
}

TcpFixture& tcp_fixture() {
  static TcpFixture* f = build_tcp_fixture();
  return *f;
}

void BM_TcpFastpath(benchmark::State& state, Backend be) {
  TcpFixture& f = tcp_fixture();
  for (auto _ : state) {
    const vcode::ExecResult r = replay(f, be);
    if (r.outcome != vcode::Outcome::Halted) {
      state.SkipWithError("handler did not commit");
      break;
    }
    benchmark::DoNotOptimize(r.cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.sim_insns));
  state.counters["sim_insns/invocation"] =
      static_cast<double>(f.sim_insns);
  state.counters["sim_cycles/invocation"] =
      static_cast<double>(f.sim_cycles);
}

// ---------------------------------------------- remote increment ----------

struct RiFixture {
  sim::Simulator sim;
  sim::Node* n = nullptr;
  std::unique_ptr<core::AshSystem> sys;
  vcode::Program prog;
  std::unique_ptr<vcode::CodeCache> cache;
  std::unique_ptr<vcode::JitBackend> jit;
  std::uint32_t seg = 0x100000;
  std::uint32_t msg = 0;
  std::uint64_t sim_insns = 0;
  std::uint64_t sim_cycles = 0;
};

vcode::ExecResult ri_run(RiFixture& f, Backend be) {
  core::AshEnv::Config ec;
  ec.node = f.n;
  ec.owner_seg = {f.seg, 0x100000};
  ec.msg_addr = f.msg;
  ec.msg_len = 4;
  ec.engine = &f.sys->dilp();
  ec.tx_cost = sim::us(4.0);
  core::AshEnv env(ec);
  vcode::ExecLimits limits;
  limits.max_insns = 1u << 20;
  limits.max_cycles = f.n->cost().ash_max_runtime;
  if (be == Backend::Interp) {
    vcode::Interpreter interp(f.prog, env);
    interp.set_args(f.msg, 4, f.seg + 0x100, 0);
    return interp.run(limits);
  }
  std::array<std::uint32_t, vcode::kNumRegs> regs{};
  regs[vcode::kRegArg0] = f.msg;
  regs[vcode::kRegArg1] = 4;
  regs[vcode::kRegArg2] = f.seg + 0x100;
  if (be == Backend::Jit) return f.jit->run(env, regs, limits);
  return f.cache->run(env, regs, limits);
}

RiFixture& ri_fixture() {
  static RiFixture* f = [] {
    auto* r = new RiFixture;
    r->n = &r->sim.add_node("n");
    r->sys = std::make_unique<core::AshSystem>(*r->n);
    sandbox::Options sb;
    sb.segment = {r->seg, 0x100000};
    std::string error;
    auto boxed =
        sandbox::sandbox(ashlib::make_remote_increment(), sb, &error);
    if (!boxed.has_value()) {
      std::fprintf(stderr, "sandbox failed: %s\n", error.c_str());
      std::exit(1);
    }
    r->prog = std::move(boxed->program);
    r->cache = std::make_unique<vcode::CodeCache>(r->prog);
    r->jit = std::make_unique<vcode::JitBackend>(r->prog);
    r->msg = r->seg + 0x8000;
    util::store_u32(r->n->mem(r->msg, 4), 42);
    (void)ri_run(*r, Backend::Interp);  // warm the simulated cache model
    const vcode::ExecResult a = ri_run(*r, Backend::Interp);
    const vcode::ExecResult b = ri_run(*r, Backend::CodeCache);
    const vcode::ExecResult j = ri_run(*r, Backend::Jit);
    if (a.outcome != vcode::Outcome::Halted || a.insns != b.insns ||
        a.cycles != b.cycles || a.insns != j.insns || a.cycles != j.cycles) {
      std::fprintf(stderr, "remote-increment engines disagree\n");
      std::exit(1);
    }
    r->sim_insns = a.insns;
    r->sim_cycles = a.cycles;
    return r;
  }();
  return *f;
}

void BM_RemoteIncrement(benchmark::State& state, Backend be) {
  RiFixture& f = ri_fixture();
  for (auto _ : state) {
    const vcode::ExecResult r = ri_run(f, be);
    if (r.outcome != vcode::Outcome::Halted) {
      state.SkipWithError("handler did not commit");
      break;
    }
    benchmark::DoNotOptimize(r.cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.sim_insns));
  state.counters["sim_insns/invocation"] =
      static_cast<double>(f.sim_insns);
  state.counters["sim_cycles/invocation"] =
      static_cast<double>(f.sim_cycles);
}

// ---------------------------------------------- fused DILP chain ----------

/// The checksum + byteswap + copy pipe chain standalone over a 4 KiB
/// message: the workload where the JIT's fused single-pass loop shows the
/// largest win over per-template dispatch.
struct DilpFixture {
  dilp::Engine engine;
  vcode::FlatMemoryEnv env{1 << 20};
  int id = -1;
  std::uint32_t src = 0x1000, dst = 0x40000, len = 4096;
  std::uint64_t sim_insns = 0;
  std::uint64_t sim_cycles = 0;
};

vcode::ExecResult dilp_run(DilpFixture& f, Backend be) {
  f.engine.set_backend(be);
  const auto r = f.engine.run(f.id, f.env, f.src, f.dst, f.len);
  return r.exec;
}

DilpFixture& dilp_fixture() {
  static DilpFixture* f = [] {
    auto* d = new DilpFixture;
    vcode::Reg acc_reg = 0;
    dilp::PipeList pl;
    pl.add(dilp::make_cksum_pipe(&acc_reg));
    pl.add(dilp::make_byteswap_pipe());
    std::string error;
    d->id = d->engine.register_ilp(pl, dilp::Direction::Write, &error);
    if (d->id < 0) {
      std::fprintf(stderr, "dilp chain compile failed: %s\n", error.c_str());
      std::exit(1);
    }
    util::Rng rng(11);
    auto mem = d->env.memory();
    for (std::uint32_t i = 0; i < d->len; ++i) {
      mem[d->src + i] = static_cast<std::uint8_t>(rng.next());
    }
    const vcode::ExecResult a = dilp_run(*d, Backend::Interp);
    const vcode::ExecResult b = dilp_run(*d, Backend::CodeCache);
    const vcode::ExecResult j = dilp_run(*d, Backend::Jit);
    if (a.outcome != vcode::Outcome::Halted || a.insns != b.insns ||
        a.cycles != b.cycles || a.insns != j.insns || a.cycles != j.cycles) {
      std::fprintf(stderr, "dilp chain engines disagree\n");
      std::exit(1);
    }
    d->sim_insns = a.insns;
    d->sim_cycles = a.cycles;
    return d;
  }();
  return *f;
}

void BM_DilpChain(benchmark::State& state, Backend be) {
  DilpFixture& f = dilp_fixture();
  for (auto _ : state) {
    const vcode::ExecResult r = dilp_run(f, be);
    if (r.outcome != vcode::Outcome::Halted) {
      state.SkipWithError("chain did not complete");
      break;
    }
    benchmark::DoNotOptimize(r.cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.sim_insns));
  state.counters["sim_insns/invocation"] =
      static_cast<double>(f.sim_insns);
  state.counters["sim_cycles/invocation"] =
      static_cast<double>(f.sim_cycles);
}

BENCHMARK_CAPTURE(BM_RemoteIncrement, interp, Backend::Interp);
BENCHMARK_CAPTURE(BM_RemoteIncrement, codecache, Backend::CodeCache);
BENCHMARK_CAPTURE(BM_RemoteIncrement, jit, Backend::Jit);
BENCHMARK_CAPTURE(BM_TcpFastpath, interp, Backend::Interp);
BENCHMARK_CAPTURE(BM_TcpFastpath, codecache, Backend::CodeCache);
BENCHMARK_CAPTURE(BM_TcpFastpath, jit, Backend::Jit);
BENCHMARK_CAPTURE(BM_DilpChain, interp, Backend::Interp);
BENCHMARK_CAPTURE(BM_DilpChain, codecache, Backend::CodeCache);
BENCHMARK_CAPTURE(BM_DilpChain, jit, Backend::Jit);

// ---------------------------------------------- manual timing sweep -------

/// ns per call of `fn`, measured over at least `min_ms` of wall time.
template <typename F>
double time_ns(F&& fn, double min_ms = 60.0) {
  using clock = std::chrono::steady_clock;
  for (int i = 0; i < 32; ++i) fn();  // warm-up
  std::uint64_t iters = 0;
  const auto start = clock::now();
  auto end = start;
  do {
    for (int i = 0; i < 16; ++i) fn();
    iters += 16;
    end = clock::now();
  } while (std::chrono::duration<double, std::milli>(end - start).count() <
           min_ms);
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(iters);
}

struct Workload {
  const char* name;
  double ns[3];  // indexed by Backend order: interp, codecache, jit
};

std::vector<Workload> run_sweep() {
  std::vector<Workload> out;
  {
    Workload w{"remote_increment", {}};
    RiFixture& f = ri_fixture();
    for (Backend be : kBackends) {
      w.ns[static_cast<int>(be)] = time_ns([&] { (void)ri_run(f, be); });
    }
    out.push_back(w);
  }
  {
    Workload w{"tcp_fastpath", {}};
    TcpFixture& f = tcp_fixture();
    for (Backend be : kBackends) {
      w.ns[static_cast<int>(be)] = time_ns([&] { (void)replay(f, be); });
    }
    out.push_back(w);
  }
  {
    Workload w{"dilp_chain", {}};
    DilpFixture& f = dilp_fixture();
    for (Backend be : kBackends) {
      w.ns[static_cast<int>(be)] = time_ns([&] { (void)dilp_run(f, be); });
    }
    out.push_back(w);
  }
  return out;
}

}  // namespace
}  // namespace ash::bench

int main(int argc, char** argv) {
  using namespace ash::bench;
  using ash::vcode::Backend;
  bool smoke = false, json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  if (smoke) {
    // Acceptance gate: superblock JIT >= 3x over the interpreter on the
    // captured TCP fast-path commit.
    TcpFixture& f = tcp_fixture();
    const double ni = time_ns([&] { (void)replay(f, Backend::Interp); });
    const double nj = time_ns([&] { (void)replay(f, Backend::Jit); });
    const double speedup = ni / nj;
    std::printf("bench_host_engine --smoke: tcp_fastpath interp=%.0fns "
                "jit=%.0fns (%.2fx)\n",
                ni, nj, speedup);
    if (!(speedup >= 3.0)) {
      std::printf("FAIL: expected >= 3x jit speedup on the TCP fast path\n");
      return 1;
    }
    std::printf("PASS\n");
    return 0;
  }

  if (json) {
    const std::vector<Workload> sweep = run_sweep();
    std::string out;
    char line[256];
    out += "{\n  \"bench\": \"host_engine\",\n  \"unit\": "
           "\"ns/invocation\",\n  \"workloads\": {\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const Workload& w = sweep[i];
      const double si = w.ns[0] / w.ns[2];   // jit vs interp
      const double sc = w.ns[1] / w.ns[2];   // jit vs codecache
      std::snprintf(line, sizeof line,
                    "    \"%s\": {\"interp\": %.1f, \"codecache\": %.1f, "
                    "\"jit\": %.1f, \"jit_vs_interp\": %.2f, "
                    "\"jit_vs_codecache\": %.2f}%s\n",
                    w.name, w.ns[0], w.ns[1], w.ns[2], si, sc,
                    i + 1 < sweep.size() ? "," : "");
      out += line;
    }
    out += "  }\n}\n";
    std::fputs(out.c_str(), stdout);
    if (FILE* fp = std::fopen("BENCH_host_engine.json", "w")) {
      std::fputs(out.c_str(), fp);
      std::fclose(fp);
    } else {
      std::fprintf(stderr, "warning: could not write "
                           "BENCH_host_engine.json\n");
    }
    return 0;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
