// Host execution-engine microbenchmark: ns per VCODE instruction for the
// plain interpreter vs the download-time translated form (CodeCache), on
// the two handlers the paper's evaluation leans on:
//
//  * Table V's remote-increment (sandboxed), and
//  * Table VI's TCP receive fast path, replayed on a real committing
//    invocation captured from a live simulated transfer (header
//    prediction hit, fused checksum+copy DILP, ACK template patch+send).
//
// Simulated results (outcome, cycles, insns, registers) are bit-identical
// on both paths — asserted at setup — so this measures only how fast the
// host machine turns the simulation crank.
#include <benchmark/benchmark.h>

#include <array>
#include <cstring>
#include <memory>
#include <vector>

#include "ashlib/handlers.hpp"
#include "ashlib/tcp_fastpath.hpp"
#include "core/ash.hpp"
#include "core/ash_env.hpp"
#include "proto/an2_link.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/byteorder.hpp"
#include "util/rng.hpp"
#include "vcode/codecache.hpp"
#include "vcode/interp.hpp"

namespace ash::bench {
namespace {

using proto::An2Link;
using proto::Ipv4Addr;
using proto::TcpConfig;
using proto::TcpConnection;
using sim::Process;
using sim::Task;
using sim::us;

// ---------------------------------------------------------------- TCP ----

TcpConfig fixture_cfg(bool client) {
  TcpConfig c;
  c.local_ip = client ? Ipv4Addr::of(10, 0, 0, 1) : Ipv4Addr::of(10, 0, 0, 2);
  c.remote_ip = client ? Ipv4Addr::of(10, 0, 0, 2) : Ipv4Addr::of(10, 0, 0, 1);
  c.local_port = client ? 4000 : 5000;
  c.remote_port = client ? 5000 : 4000;
  c.iss = client ? 100 : 900;
  c.checksum = true;
  return c;
}

/// A frozen fast-path invocation: the sandboxed handler, the packet bytes,
/// and the pre-invocation TCB snapshot of the first data segment that
/// committed during a real transfer. Restoring TCB + packet makes every
/// replay take the identical full commit path (DILP copy, ACK send).
struct TcpFixture {
  sim::Simulator sim;
  sim::Node* a = nullptr;
  sim::Node* b = nullptr;
  std::unique_ptr<net::An2Device> dev_a, dev_b;
  std::unique_ptr<core::AshSystem> ash_b;
  int ash_id = -1;

  bool captured = false;
  std::uint32_t msg_addr = 0, msg_len = 0, tcb_base = 0;
  int channel = 0;
  std::uint32_t owner_base = 0, owner_size = 0;
  std::array<std::uint32_t, proto::tcb::kWords> tcb{};
  std::vector<std::uint8_t> packet;
  std::uint64_t sim_insns = 0;   // per replay, identical on both engines
  std::uint64_t sim_cycles = 0;
};

void restore(TcpFixture& f) {
  proto::TcbShm shm(*f.b, f.tcb_base);
  for (std::uint32_t i = 0; i < proto::tcb::kWords; ++i) shm.set(i, f.tcb[i]);
  std::memcpy(f.b->mem(f.msg_addr, f.msg_len), f.packet.data(), f.msg_len);
}

vcode::ExecResult replay(TcpFixture& f, bool use_cache) {
  restore(f);
  core::AshEnv::Config ec;
  ec.node = f.b;
  ec.owner_seg = {f.owner_base, f.owner_size};
  ec.msg_addr = f.msg_addr;
  ec.msg_len = f.msg_len;
  ec.engine = &f.ash_b->dilp();
  ec.tx_cost = f.dev_b->config().tx_kernel_work;
  core::AshEnv env(ec);
  vcode::ExecLimits limits;
  limits.max_insns = 1u << 20;
  limits.max_cycles = f.b->cost().ash_max_runtime;
  if (use_cache) {
    std::array<std::uint32_t, vcode::kNumRegs> regs{};
    regs[vcode::kRegArg0] = f.msg_addr;
    regs[vcode::kRegArg1] = f.msg_len;
    regs[vcode::kRegArg2] = f.tcb_base;
    regs[vcode::kRegArg3] = static_cast<std::uint32_t>(f.channel);
    return f.ash_b->code_cache(f.ash_id)->run(env, regs, limits);
  }
  vcode::Interpreter interp(f.ash_b->program(f.ash_id), env);
  interp.set_args(f.msg_addr, f.msg_len, f.tcb_base,
                  static_cast<std::uint32_t>(f.channel));
  return interp.run(limits);
}

TcpFixture* build_tcp_fixture() {
  auto* f = new TcpFixture;
  f->a = &f->sim.add_node("a");
  f->b = &f->sim.add_node("b");
  f->dev_a = std::make_unique<net::An2Device>(*f->a);
  f->dev_b = std::make_unique<net::An2Device>(*f->b);
  f->dev_a->connect(*f->dev_b);
  f->ash_b = std::make_unique<core::AshSystem>(*f->b);
  constexpr std::uint32_t kTotal = 4096;

  f->b->kernel().spawn("server", [f](Process& self) -> Task {
    An2Link link(self, *f->dev_b, {});
    TcpConnection conn(link, fixture_cfg(false));
    std::string error;
    core::AshOptions opts;  // sandboxed, code cache on
    const auto fp = ashlib::install_tcp_fastpath(*f->ash_b, *f->dev_b,
                                                 link.vc(), conn, opts,
                                                 &error);
    if (!fp.has_value()) {
      std::fprintf(stderr, "fastpath install failed: %s\n", error.c_str());
      co_return;
    }
    f->ash_id = fp->ash_id;
    f->tcb_base = conn.shm().base();
    f->owner_base = self.segment().base;
    f->owner_size = self.segment().size;

    // Re-wrap the attach hook: same invocation as AshSystem::attach_an2,
    // plus a pre-invoke TCB snapshot so the first committing data segment
    // can be replayed later.
    net::An2Device* dev = f->dev_b.get();
    core::AshSystem* sys = f->ash_b.get();
    const sim::Cycles txc = dev->config().tx_kernel_work;
    dev->set_kernel_hook(
        link.vc(), [f, dev, sys, txc](const net::An2Device::RxEvent& ev) {
          std::array<std::uint32_t, proto::tcb::kWords> pre{};
          proto::TcbShm shm(*f->b, f->tcb_base);
          for (std::uint32_t i = 0; i < proto::tcb::kWords; ++i) {
            pre[i] = shm.get(i);
          }
          core::MsgContext msg;
          msg.addr = ev.desc.addr;
          msg.len = ev.desc.len;
          msg.channel = ev.vc;
          msg.user_arg = f->tcb_base;
          const auto before = sys->stats(f->ash_id).commits;
          const bool consumed = sys->invoke(
              f->ash_id, msg,
              [dev](int chan, std::span<const std::uint8_t> bytes) {
                return dev->send(chan, bytes);
              },
              txc);
          if (!f->captured && sys->stats(f->ash_id).commits > before) {
            f->captured = true;
            f->msg_addr = msg.addr;
            f->msg_len = msg.len;
            f->channel = msg.channel;
            f->tcb = pre;
            const std::uint8_t* p = f->b->mem(msg.addr, msg.len);
            f->packet.assign(p, p + msg.len);
          }
          return consumed;
        });

    const bool accepted = co_await conn.accept();
    if (!accepted) co_return;
    const std::uint32_t buf = self.segment().base;
    std::uint32_t got = 0;
    while (got < kTotal) {
      const std::uint32_t n = co_await conn.read_into(buf, kTotal - got);
      if (n == 0) break;
      got += n;
    }
  });

  f->a->kernel().spawn("client", [f](Process& self) -> Task {
    An2Link link(self, *f->dev_a, {});
    TcpConnection conn(link, fixture_cfg(true));
    co_await self.sleep_for(us(500.0));
    const bool connected = co_await conn.connect();
    if (!connected) co_return;
    const std::uint32_t buf = self.segment().base;
    util::Rng rng(7);
    std::uint8_t* p = self.node().mem(buf, kTotal);
    for (std::uint32_t i = 0; i < kTotal; ++i) {
      p[i] = static_cast<std::uint8_t>(rng.next());
    }
    const bool wrote = co_await conn.write_from(buf, kTotal);
    (void)wrote;
  });

  f->sim.run(us(5e6));
  if (!f->captured) {
    std::fprintf(stderr, "bench_host_engine: no committing fast-path "
                         "invocation captured\n");
    std::exit(1);
  }

  // Both engines must replay to an identical commit before we time them.
  // One discarded warm-up first: the node's cache model charges cold
  // misses on the first pass, and we compare cycles exactly.
  (void)replay(*f, false);
  const vcode::ExecResult ri = replay(*f, false);
  const vcode::ExecResult rc = replay(*f, true);
  if (ri.outcome != vcode::Outcome::Halted ||
      rc.outcome != vcode::Outcome::Halted || ri.insns != rc.insns ||
      ri.cycles != rc.cycles || ri.result != rc.result) {
    std::fprintf(stderr, "bench_host_engine: engines disagree on the "
                         "captured invocation\n");
    std::exit(1);
  }
  f->sim_insns = ri.insns;
  f->sim_cycles = ri.cycles;
  return f;
}

TcpFixture& tcp_fixture() {
  static TcpFixture* f = build_tcp_fixture();
  return *f;
}

void BM_TcpFastpath(benchmark::State& state, bool use_cache) {
  TcpFixture& f = tcp_fixture();
  // The handler's TDilp transfer should run on the same engine under test.
  f.ash_b->dilp().set_use_code_cache(use_cache);
  for (auto _ : state) {
    const vcode::ExecResult r = replay(f, use_cache);
    if (r.outcome != vcode::Outcome::Halted) {
      state.SkipWithError("handler did not commit");
      break;
    }
    benchmark::DoNotOptimize(r.cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.sim_insns));
  state.counters["sim_insns/invocation"] =
      static_cast<double>(f.sim_insns);
  state.counters["sim_cycles/invocation"] =
      static_cast<double>(f.sim_cycles);
}

// ---------------------------------------------- remote increment ----------

struct RiFixture {
  sim::Simulator sim;
  sim::Node* n = nullptr;
  std::unique_ptr<core::AshSystem> sys;
  vcode::Program prog;
  std::unique_ptr<vcode::CodeCache> cache;
  std::uint32_t seg = 0x100000;
  std::uint32_t msg = 0;
  std::uint64_t sim_insns = 0;
  std::uint64_t sim_cycles = 0;
};

vcode::ExecResult ri_run(RiFixture& f, bool use_cache) {
  core::AshEnv::Config ec;
  ec.node = f.n;
  ec.owner_seg = {f.seg, 0x100000};
  ec.msg_addr = f.msg;
  ec.msg_len = 4;
  ec.engine = &f.sys->dilp();
  ec.tx_cost = sim::us(4.0);
  core::AshEnv env(ec);
  vcode::ExecLimits limits;
  limits.max_insns = 1u << 20;
  limits.max_cycles = f.n->cost().ash_max_runtime;
  if (use_cache) {
    std::array<std::uint32_t, vcode::kNumRegs> regs{};
    regs[vcode::kRegArg0] = f.msg;
    regs[vcode::kRegArg1] = 4;
    regs[vcode::kRegArg2] = f.seg + 0x100;
    return f.cache->run(env, regs, limits);
  }
  vcode::Interpreter interp(f.prog, env);
  interp.set_args(f.msg, 4, f.seg + 0x100, 0);
  return interp.run(limits);
}

RiFixture& ri_fixture() {
  static RiFixture* f = [] {
    auto* r = new RiFixture;
    r->n = &r->sim.add_node("n");
    r->sys = std::make_unique<core::AshSystem>(*r->n);
    sandbox::Options sb;
    sb.segment = {r->seg, 0x100000};
    std::string error;
    auto boxed =
        sandbox::sandbox(ashlib::make_remote_increment(), sb, &error);
    if (!boxed.has_value()) {
      std::fprintf(stderr, "sandbox failed: %s\n", error.c_str());
      std::exit(1);
    }
    r->prog = std::move(boxed->program);
    r->cache = std::make_unique<vcode::CodeCache>(r->prog);
    r->msg = r->seg + 0x8000;
    util::store_u32(r->n->mem(r->msg, 4), 42);
    (void)ri_run(*r, false);  // warm the simulated cache model
    const vcode::ExecResult a = ri_run(*r, false);
    const vcode::ExecResult b = ri_run(*r, true);
    if (a.outcome != vcode::Outcome::Halted || a.insns != b.insns ||
        a.cycles != b.cycles) {
      std::fprintf(stderr, "remote-increment engines disagree\n");
      std::exit(1);
    }
    r->sim_insns = a.insns;
    r->sim_cycles = a.cycles;
    return r;
  }();
  return *f;
}

void BM_RemoteIncrement(benchmark::State& state, bool use_cache) {
  RiFixture& f = ri_fixture();
  for (auto _ : state) {
    const vcode::ExecResult r = ri_run(f, use_cache);
    if (r.outcome != vcode::Outcome::Halted) {
      state.SkipWithError("handler did not commit");
      break;
    }
    benchmark::DoNotOptimize(r.cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.sim_insns));
  state.counters["sim_insns/invocation"] =
      static_cast<double>(f.sim_insns);
  state.counters["sim_cycles/invocation"] =
      static_cast<double>(f.sim_cycles);
}

BENCHMARK_CAPTURE(BM_RemoteIncrement, interpreter, false);
BENCHMARK_CAPTURE(BM_RemoteIncrement, code_cache, true);
BENCHMARK_CAPTURE(BM_TcpFastpath, interpreter, false);
BENCHMARK_CAPTURE(BM_TcpFastpath, code_cache, true);

}  // namespace
}  // namespace ash::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
