// Receive scaling — aggregate remote-increment throughput vs offered load
// for the multi-queue receive path (DESIGN §"Receive scaling model").
//
// Not a paper figure: the paper runs every ASH synchronously from the
// driver, one interrupt per message. This bench records how far the
// multi-queue subsystem (per-CPU RX queues + interrupt coalescing +
// batched ASH dispatch) moves the serial receive bottleneck, as the
// repo's first forward-looking BENCH_* trajectory point.
//
// Setup: two nodes over a fast AN2 link (the link is deliberately
// over-provisioned so the server is the bottleneck), 8 VCs on the
// server each attached to one sandboxed remote-increment ASH, a client
// that offers bursty load round-robin across the VCs at a configured
// rate. Columns: the inline (paper) path, 1/2/4/8 queues with adaptive
// coalescing, and "offload" — 8 queues fronted by a smart-NIC processor
// (16 execution units per queue) running the handler on the device, so
// the host CPU never touches a consumed frame. Throughput is measured at
// the CLIENT as reply arrivals per second: replies release only when the
// serving side's charged work completes, so arrival rate is the true
// service rate. The client supplies no reply buffers — the device's
// per-VC drop counter then counts arrivals exactly, costing zero client
// CPU (polling the replies out would perturb the offered load).
//
// Flags: --smoke   two gates in one run: 4 queues must deliver >= 2x the
//                  1-queue throughput at saturating load (the ISSUE-5
//                  gate), and the offload column must deliver >= 5x the
//                  8-queue host ceiling (the ISSUE-9 gate); also a ctest
//                  target.
//        --json    emit the full sweep as JSON (BENCH_scaling.json).
#include "bench_util.hpp"

#include <cstring>
#include <memory>

#include "ashlib/handlers.hpp"
#include "core/ash.hpp"
#include "net/nic_offload.hpp"
#include "net/rx_queue.hpp"

namespace ash::bench {
namespace {

using sim::Process;
using sim::Task;
using sim::us;

constexpr int kVcs = 8;
constexpr int kBurst = 4;  // frames per VC before moving on (bursty load)

net::An2Config fast_link() {
  // Over-provisioned link AND client: serialization, per-packet, and tx
  // costs small enough that the serving side saturates first at every
  // queue count — including the device-offload column, whose service
  // rate is an order of magnitude past the 8-queue host ceiling.
  net::An2Config cfg;
  cfg.bandwidth_mbytes_per_sec = 1000.0;
  cfg.one_way_latency = us(5.0);
  cfg.per_packet_overhead = us(0.025);
  cfg.tx_kernel_work = us(0.025);
  return cfg;
}

/// One run: offered load in kmsg/s, `queues` == 0 means the inline path,
/// `units` > 0 fronts the queue set with a smart-NIC processor running
/// that many execution units per queue (NIC-resident handlers; the host
/// CPU never sees a consumed frame). Returns served throughput in kmsg/s.
double run_point(double offered_kmsgs, std::size_t queues, std::size_t units,
                 sim::Cycles window) {
  An2World w(fast_link());
  core::AshSystem ash_sys(*w.b);

  std::unique_ptr<net::RxQueueSet> rxq;
  std::unique_ptr<net::NicProcessor> nic;
  if (queues > 0) {
    net::RxQueueSet::Config qc;
    qc.queues = queues;
    qc.steering.mode = net::SteerMode::ChannelHash;
    qc.coalesce.enabled = true;
    qc.coalesce.max_frames = 8;
    qc.coalesce.max_delay = us(50.0);
    qc.coalesce.adaptive = true;
    rxq = std::make_unique<net::RxQueueSet>(*w.b, qc);
    w.dev_b->set_rx_queues(rxq.get());
    if (units > 0) {
      net::NicConfig nc;
      nc.units_per_queue = units;
      nc.queue_capacity = 512;
      nic = std::make_unique<net::NicProcessor>(*w.b, *rxq, nc);
      w.dev_b->set_nic(nic.get());
    }
  }

  // --- server: 8 VCs, one remote-increment ASH attached to each ---
  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    core::AshOptions opts;
    std::string error;
    const int id = ash_sys.download(self, ashlib::make_remote_increment(),
                                    opts, &error);
    const std::uint32_t ctr = self.segment().base + 0x80000;
    for (int v = 0; v < kVcs; ++v) {
      const int vc = w.dev_b->bind_vc(self);
      for (int i = 0; i < 64; ++i) {
        w.dev_b->supply_buffer(
            vc,
            self.segment().base +
                64u * static_cast<std::uint32_t>(v * 64 + i),
            64);
      }
      if (nic != nullptr) {
        ash_sys.offload_an2(*w.dev_b, vc, id, ctr);
      } else {
        ash_sys.attach_an2(*w.dev_b, vc, id, ctr);
      }
    }
    co_await self.sleep_for(us(1e9));
  });

  // --- client: open-loop bursty sender, round-robin across VCs ---
  const sim::Cycles warmup = us(1000.0);
  // Fractional-cycle pacing: at the offload column's loads the period is
  // a few cycles, so accumulating a truncated integer period would
  // systematically over-offer.
  const double period = static_cast<double>(sim::us(1000.0)) / offered_kmsgs;
  const sim::Cycles t_end = warmup + window;
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    for (int v = 0; v < kVcs; ++v) w.dev_a->bind_vc(self);
    co_await self.sleep_for(warmup);
    const std::uint8_t ping[4] = {1, 2, 3, 4};
    double next = static_cast<double>(self.node().now());
    int vc = 0;
    int burst = 0;
    while (self.node().now() < t_end) {
      co_await self.compute(w.dev_a->config().tx_kernel_work);
      w.dev_a->send(vc, ping);
      if (++burst == kBurst) {
        burst = 0;
        vc = (vc + 1) % kVcs;
      }
      next += period;
      const auto next_cyc = static_cast<sim::Cycles>(next);
      if (next_cyc > self.node().now()) {
        co_await self.sleep_for(next_cyc - self.node().now());
      }
    }
  });

  // Measurement window: skip a settling prefix, then count reply arrivals
  // (client-side VC drops — see header comment) over the rest.
  const sim::Cycles t_start = warmup + us(2000.0);
  std::uint64_t start_count = 0, end_count = 0;
  const auto arrivals = [&w] {
    std::uint64_t n = 0;
    for (int v = 0; v < kVcs; ++v) n += w.dev_a->drops(v);
    return n;
  };
  w.a->queue().schedule_at(t_start, [&] { start_count = arrivals(); });
  w.a->queue().schedule_at(t_end, [&] { end_count = arrivals(); });
  w.sim.run(t_end + us(1.0));

  return static_cast<double>(end_count - start_count) /
         sim::to_us(t_end - t_start) * 1000.0;
}

}  // namespace
}  // namespace ash::bench

int main(int argc, char** argv) {
  using namespace ash::bench;
  bool smoke = false, json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  if (smoke) {
    // Saturating points; the ISSUE-5 host gate and the ISSUE-9 offload
    // gate in one run.
    const ash::sim::Cycles window = ash::sim::us(20000.0);
    const double q1 = run_point(2000.0, 1, 0, window);
    const double q4 = run_point(2000.0, 4, 0, window);
    std::printf("bench_scaling --smoke: q1=%.1f kmsg/s q4=%.1f kmsg/s "
                "(%.2fx)\n",
                q1, q4, q4 / q1);
    if (!(q4 >= 2.0 * q1)) {
      std::printf("FAIL: expected >= 2x scaling from 1 to 4 queues\n");
      return 1;
    }
    const ash::sim::Cycles offload_window = ash::sim::us(10000.0);
    const double q8 = run_point(2000.0, 8, 0, offload_window);
    const double off = run_point(12000.0, 8, 16, offload_window);
    std::printf("bench_scaling --smoke: q8=%.1f kmsg/s offload=%.1f kmsg/s "
                "(%.2fx)\n",
                q8, off, off / q8);
    if (!(off >= 5.0 * q8)) {
      std::printf("FAIL: expected >= 5x the 8-queue host ceiling from the "
                  "NIC offload path\n");
      return 1;
    }
    std::printf("PASS\n");
    return 0;
  }

  const double offered[] = {100.0,  250.0,  500.0,  1000.0, 2000.0,
                            4000.0, 8000.0, 16000.0, 32000.0};
  const struct {
    const char* name;
    std::size_t queues;
    std::size_t units;
  } cols[] = {{"inline", 0, 0},   {"1 queue", 1, 0}, {"2 queues", 2, 0},
              {"4 queues", 4, 0}, {"8 queues", 8, 0}, {"offload", 8, 16}};

  std::vector<std::pair<double, std::vector<double>>> points;
  for (double load : offered) {
    // Past-saturation host points are pure queue-overflow churn; a
    // shorter window bounds the sweep's wall-clock without moving the
    // measured service rate.
    const ash::sim::Cycles window =
        load >= 4000.0 ? ash::sim::us(10000.0) : ash::sim::us(30000.0);
    std::vector<double> row;
    for (const auto& col : cols) {
      row.push_back(run_point(load, col.queues, col.units, window));
    }
    points.push_back({load, std::move(row)});
  }

  if (json) {
    std::printf("{\n  \"bench\": \"scaling\",\n  \"unit\": \"kmsg/s\",\n");
    std::printf("  \"offered_kmsgs\": [");
    for (std::size_t i = 0; i < std::size(offered); ++i) {
      std::printf("%s%.0f", i ? ", " : "", offered[i]);
    }
    std::printf("],\n  \"series\": {\n");
    for (std::size_t c = 0; c < std::size(cols); ++c) {
      std::printf("    \"%s\": [", cols[c].name);
      for (std::size_t i = 0; i < points.size(); ++i) {
        std::printf("%s%.1f", i ? ", " : "", points[i].second[c]);
      }
      std::printf("]%s\n", c + 1 < std::size(cols) ? "," : "");
    }
    std::printf("  }\n}\n");
    return 0;
  }

  std::vector<std::string> names;
  for (const auto& col : cols) names.push_back(col.name);
  print_series("Scaling", "remote-increment throughput vs offered load",
               "kmsg/s in", names, points, "kmsg/s served");
  return 0;
}
