// Table IV — integrated vs non-integrated memory operations (4096 bytes),
// MB/s: Separate, Separate/uncached, C integrated, DILP, for the two
// compositions copy&checksum and copy&checksum&byteswap.
//
// Simulated rows use the machinery the system itself runs on: the
// "separate" and "C integrated" strategies via the charged memops hand
// loops, and DILP via the pipe compiler's fused VCODE loop executed by the
// cycle-charging interpreter over the node's cache model. Native rows
// rerun the same strategies on the host CPU (google-benchmark).
#include "bench_util.hpp"

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "dilp/engine.hpp"
#include "dilp/native.hpp"
#include "dilp/stdpipes.hpp"
#include "sim/memops.hpp"
#include "vcode/interp.hpp"

namespace ash::bench {
namespace {

constexpr std::uint32_t kLen = 4096;
constexpr int kIters = 64;

enum class Combo { CkCopy, CkCopyBswap };
enum class Strategy { Separate, SeparateUncached, CIntegrated, Dilp };

/// vcode::Env giving the fused loop the node's memory + cache model.
class NodeEnv final : public vcode::Env {
 public:
  explicit NodeEnv(sim::Node& node) : node_(node) {}
  bool mem_read(std::uint32_t addr, void* dst, std::uint32_t len) override {
    const std::uint8_t* p = node_.mem(addr, len);
    if (!p) return false;
    std::memcpy(dst, p, len);
    return true;
  }
  bool mem_write(std::uint32_t addr, const void* src,
                 std::uint32_t len) override {
    std::uint8_t* p = node_.mem(addr, len);
    if (!p) return false;
    std::memcpy(p, src, len);
    return true;
  }
  std::uint64_t mem_cycles(std::uint32_t addr, std::uint32_t len,
                           bool is_write) override {
    return node_.dcache().access(addr, len, is_write);
  }

 private:
  sim::Node& node_;
};

double simulated_mbps(Combo combo, Strategy strategy) {
  sim::Simulator s;
  sim::Node& node = s.add_node("n");
  const std::uint32_t src = 0x100000, dst = 0x120000;
  fill_pattern(node, src, kLen, 2);

  dilp::Engine engine;
  int ilp = -1;
  if (strategy == Strategy::Dilp) {
    dilp::PipeList pl;
    pl.add(dilp::make_cksum_pipe(nullptr));
    if (combo == Combo::CkCopyBswap) pl.add(dilp::make_byteswap_pipe());
    std::string error;
    ilp = engine.register_ilp(pl, dilp::Direction::Write, &error);
  }
  NodeEnv env(node);

  sim::Cycles total = 0;
  for (int i = 0; i < kIters; ++i) {
    // The experiment's per-iteration flush: message and destination are
    // not cached when the data arrives.
    node.dcache().flush_all();
    std::uint32_t acc = 0;
    switch (strategy) {
      case Strategy::Separate:
        total += sim::memops::copy(node, dst, src, kLen);
        total += sim::memops::cksum(node, dst, kLen, &acc);
        if (combo == Combo::CkCopyBswap) {
          total += sim::memops::bswap(node, dst, kLen);
        }
        break;
      case Strategy::SeparateUncached:
        // "Much time occurs in between the manipulations, and the message
        // gets flushed from the cache."
        total += sim::memops::copy(node, dst, src, kLen);
        node.dcache().flush_all();
        total += sim::memops::cksum(node, dst, kLen, &acc);
        if (combo == Combo::CkCopyBswap) {
          node.dcache().flush_all();
          total += sim::memops::bswap(node, dst, kLen);
        }
        break;
      case Strategy::CIntegrated:
        if (combo == Combo::CkCopy) {
          total += sim::memops::copy_cksum(node, dst, src, kLen, &acc);
        } else {
          total += sim::memops::copy_cksum_bswap(node, dst, src, kLen, &acc);
        }
        break;
      case Strategy::Dilp: {
        const auto r = engine.run(ilp, env, src, dst, kLen);
        total += r.exec.cycles;
        break;
      }
    }
  }
  const double seconds = sim::to_us(total) / 1e6;
  return static_cast<double>(kLen) * kIters / seconds / 1e6;
}

// --- native versions ---

std::vector<std::uint8_t> g_src(kLen, 3);

void bm_separate_ck_copy(benchmark::State& state) {
  std::vector<std::uint8_t> dst(kLen);
  for (auto _ : state) {
    dilp::native::copy_pass(g_src.data(), dst.data(), kLen);
    auto acc = dilp::native::cksum_pass(dst.data(), kLen, 0);
    benchmark::DoNotOptimize(acc);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kLen);
}
BENCHMARK(bm_separate_ck_copy);

void bm_separate_ck_copy_bswap(benchmark::State& state) {
  std::vector<std::uint8_t> dst(kLen);
  for (auto _ : state) {
    dilp::native::copy_pass(g_src.data(), dst.data(), kLen);
    auto acc = dilp::native::cksum_pass(dst.data(), kLen, 0);
    dilp::native::bswap_pass(dst.data(), kLen);
    benchmark::DoNotOptimize(acc);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kLen);
}
BENCHMARK(bm_separate_ck_copy_bswap);

void bm_integrated_ck_copy(benchmark::State& state) {
  std::vector<std::uint8_t> dst(kLen);
  for (auto _ : state) {
    auto acc = dilp::native::integrated_copy_cksum(g_src.data(), dst.data(),
                                                   kLen, 0);
    benchmark::DoNotOptimize(acc);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kLen);
}
BENCHMARK(bm_integrated_ck_copy);

void bm_integrated_ck_copy_bswap(benchmark::State& state) {
  std::vector<std::uint8_t> dst(kLen);
  for (auto _ : state) {
    auto acc = dilp::native::integrated_copy_cksum_bswap(
        g_src.data(), dst.data(), kLen, 0);
    benchmark::DoNotOptimize(acc);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kLen);
}
BENCHMARK(bm_integrated_ck_copy_bswap);

void bm_dilp_native_ck_copy(benchmark::State& state) {
  // The native runtime-composed kernel (dispatches to a fused template).
  std::vector<std::uint8_t> dst(kLen);
  const dilp::native::StageKind stages[] = {dilp::native::StageKind::Cksum};
  const auto composed = dilp::native::compose(stages);
  std::uint32_t st[1] = {0};
  for (auto _ : state) {
    st[0] = 0;
    composed.kernel(g_src.data(), dst.data(), kLen, st);
    benchmark::DoNotOptimize(st[0]);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kLen);
}
BENCHMARK(bm_dilp_native_ck_copy);

void bm_dilp_native_ck_copy_bswap(benchmark::State& state) {
  std::vector<std::uint8_t> dst(kLen);
  const dilp::native::StageKind stages[] = {dilp::native::StageKind::Cksum,
                                            dilp::native::StageKind::Bswap};
  const auto composed = dilp::native::compose(stages);
  std::uint32_t st[2] = {0, 0};
  for (auto _ : state) {
    st[0] = 0;
    composed.kernel(g_src.data(), dst.data(), kLen, st);
    benchmark::DoNotOptimize(st[0]);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kLen);
}
BENCHMARK(bm_dilp_native_ck_copy_bswap);

}  // namespace
}  // namespace ash::bench

int main(int argc, char** argv) {
  using namespace ash::bench;
  const double paper[4][2] = {{11, 5.8}, {10, 5.1}, {16, 8.3}, {17, 8.2}};
  const char* names[4] = {"Separate", "Separate/uncached", "C integrated",
                          "DILP (fused VCODE loop)"};
  const Strategy strategies[4] = {Strategy::Separate,
                                  Strategy::SeparateUncached,
                                  Strategy::CIntegrated, Strategy::Dilp};
  std::vector<Row> rows;
  for (int i = 0; i < 4; ++i) {
    rows.push_back({std::string(names[i]) + "  [copy & cksum]",
                    simulated_mbps(Combo::CkCopy, strategies[i]),
                    paper[i][0], "MB/s"});
  }
  for (int i = 0; i < 4; ++i) {
    rows.push_back({std::string(names[i]) + "  [copy & cksum & bswap]",
                    simulated_mbps(Combo::CkCopyBswap, strategies[i]),
                    paper[i][1], "MB/s"});
  }
  print_table("Table IV", "integrated vs non-integrated ops (simulated)",
              rows);

  std::printf("\nnative (host CPU) versions via google-benchmark:\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
