// HTTP/1.0 at c10k over the event-driven TCP engine — the scale workload
// the blocking, process-per-connection library (proto/tcp.hpp) cannot
// reach by construction (one 1 MB segment per process, 16 MB per node).
//
// Setup: two nodes over the AN2 link. The server node runs one TcpEngine
// with a port-80 TcpListener; the client node runs a second TcpEngine
// opening `--conns` (default 10240) connections, paced so at most
// kOpenWindow handshakes are in flight. Once EVERY connection is
// established — the concurrency high-water mark is read off the server's
// connection table at that instant — each client sends one GET and the
// server answers with a fixed body and closes (HTTP/1.0 framing).
// Requests run closed-loop with at most kReqWindow outstanding so the
// receive-buffer pools see bounded bursts.
//
// Regimes: a lossless link; 1% loss each way; and reorder+loss with
// out-of-order reassembly on vs. off (the pre-refactor drop-everything
// receiver). Per regime: connections/s over the open phase, request
// latency p50/p99, goodput (response payload bytes over the request
// phase), and the engine's recovery counters.
//
// Flags: --smoke   lossless + 1% loss only; exits nonzero unless the
//                  server table held >= 10000 concurrent connections and
//                  lossy goodput >= 90% of lossless (the ISSUE-7 gate;
//                  also a ctest target).
//        --conns N / --body N   scale overrides.
//
// Output: the table, plus BENCH_http_c10k.json.
#include "bench_util.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "proto/an2_link.hpp"
#include "proto/http.hpp"
#include "proto/tcp_engine.hpp"

namespace ash::bench {
namespace {

using proto::An2Link;
using proto::Ipv4Addr;
using proto::TcpEngine;
using sim::Process;
using sim::Task;
using sim::us;

const Ipv4Addr kServerIp = Ipv4Addr::of(10, 0, 0, 1);
const Ipv4Addr kClientIp = Ipv4Addr::of(10, 0, 0, 2);

constexpr std::size_t kOpenWindow = 256;  // handshakes in flight
// GETs outstanding. Sized so closed-loop queueing delay stays well under
// the 25 ms min-RTO floor: deeper windows make every response look lost
// and the RTO timer (correctly) fires on traffic that is merely queued.
constexpr std::size_t kReqWindow = 64;
constexpr std::uint16_t kBasePort = 1024;

An2Link::Config link_cfg() {
  An2Link::Config cfg;
  // 288 * 1536 B fills the segment-half budget: enough pinned buffers to
  // absorb a full request window plus the ACK traffic riding behind it.
  cfg.rx_buffers = 288;
  cfg.buf_size = 1536;
  cfg.mode = proto::RecvMode::Interrupt;
  return cfg;
}

TcpEngine::Config engine_cfg(Ipv4Addr ip, bool reassemble) {
  TcpEngine::Config cfg;
  cfg.local_ip = ip;
  cfg.mss = 1456;
  cfg.window = 8192;
  cfg.rcv_limit = 16384;
  cfg.reassemble = reassemble;
  cfg.shards = 8;
  cfg.rx_batch = 256;
  // Closed-loop queueing at this depth reaches ~25 ms; keep the RTO floor
  // above it so the timer only fires on genuine loss (BSD's classic
  // 200 ms floor exists for exactly this reason, scaled to the sim).
  cfg.min_rto = us(50000.0);
  return cfg;
}

struct RegimeSpec {
  const char* name;
  net::FaultConfig faults;
  bool reassemble = true;
};

struct RegimeResult {
  std::size_t conns = 0;
  std::size_t established = 0;     // client connections that completed
  std::size_t server_peak = 0;     // server TCBs when the last one did
  std::size_t responses_ok = 0;    // 200s fully received
  double open_seconds = 0;
  double conns_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  double goodput_mbps = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t fast_retx = 0;
  std::uint64_t rto_timeouts = 0;
  std::uint64_t ooo_buffered = 0;
  std::uint64_t ooo_reassembled = 0;
  std::uint64_t ooo_dropped = 0;
};

RegimeResult run_regime(const RegimeSpec& spec, std::size_t conns,
                        std::uint32_t body_len) {
  An2World w;
  w.dev_a->set_faults(spec.faults);
  w.dev_b->set_faults(spec.faults);

  RegimeResult res;
  res.conns = conns;

  bool server_done = false;
  TcpEngine* server_eng = nullptr;
  const sim::Cycles budget = us(30e6);

  // ---- server: one engine, one listener, canned response ----
  w.a->kernel().spawn("httpd", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, link_cfg());
    TcpEngine eng(link, engine_cfg(kServerIp, spec.reassemble));
    server_eng = &eng;

    const std::vector<std::uint8_t> body(body_len, 'x');
    const std::string wire =
        proto::http_format_response(std::string("/obj"), body);
    std::unordered_map<TcpEngine::ConnId, std::string> reqs;

    TcpEngine::ListenConfig lc;
    lc.backlog = 1024;
    lc.callbacks.on_readable = [&](TcpEngine::ConnId id) {
      std::string& acc = reqs[id];
      std::uint8_t buf[512];
      for (;;) {
        const std::size_t n = eng.read(id, buf, sizeof buf);
        if (n == 0) break;
        acc.append(reinterpret_cast<const char*>(buf), n);
      }
      if (!proto::http_request_complete(acc)) return;
      eng.write(id, {reinterpret_cast<const std::uint8_t*>(wire.data()),
                     wire.size()});
      eng.close(id);
      reqs.erase(id);
    };
    lc.callbacks.on_closed = [&](TcpEngine::ConnId id) { reqs.erase(id); };
    eng.listen(80, lc);

    co_await eng.run(server_done, self.node().now() + budget);
    server_eng = nullptr;
  });

  // ---- clients: one engine, `conns` flows ----
  w.b->kernel().spawn("clients", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_b, link_cfg());
    TcpEngine eng(link, engine_cfg(kClientIp, spec.reassemble));

    enum Phase : std::uint8_t { Opening, Open, Requested, Done, Dead };
    std::vector<TcpEngine::ConnId> ids(conns, 0);
    std::vector<Phase> phase(conns, Opening);
    std::vector<sim::Cycles> t_start(conns, 0);
    std::vector<sim::Cycles> latency;
    std::vector<std::string> resp(conns);
    std::unordered_map<TcpEngine::ConnId, std::size_t> idx;
    std::size_t established = 0, failed = 0, resp_done = 0,
                outstanding = 0;
    std::uint64_t good_bytes = 0;
    sim::Cycles t_last_resp = 0;

    TcpEngine::Callbacks cbs;
    cbs.on_established = [&](TcpEngine::ConnId id) {
      const std::size_t i = idx[id];
      if (phase[i] == Opening) {
        phase[i] = Open;
        ++established;
      }
    };
    cbs.on_readable = [&](TcpEngine::ConnId id) {
      const std::size_t i = idx[id];
      if (phase[i] != Requested) return;
      std::uint8_t buf[2048];
      for (;;) {
        const std::size_t n = eng.read(id, buf, sizeof buf);
        if (n == 0) break;
        resp[i].append(reinterpret_cast<const char*>(buf), n);
      }
      if (!eng.at_eof(id)) return;
      const auto r = proto::http_parse_response(resp[i]);
      phase[i] = Done;
      ++resp_done;
      --outstanding;
      if (r.has_value() && r->status == 200 &&
          r->body.size() == body_len) {
        ++res.responses_ok;
        good_bytes += r->body.size();
        latency.push_back(self.node().now() - t_start[i]);
        t_last_resp = self.node().now();
      }
      resp[i].clear();
      resp[i].shrink_to_fit();
      eng.close(id);
    };
    cbs.on_closed = [&](TcpEngine::ConnId id) {
      const std::size_t i = idx[id];
      if (phase[i] == Opening) {
        ++failed;
      } else if (phase[i] == Requested) {
        ++failed;
        --outstanding;  // torn down before the response completed
      }
      if (phase[i] != Done) phase[i] = Dead;
    };

    // Phase 1: open everything, paced.
    const sim::Cycles t_open0 = self.node().now();
    const sim::Cycles open_deadline = t_open0 + budget / 2;
    std::size_t issued = 0;
    while (established + failed < conns) {
      if (self.node().now() >= open_deadline) break;
      while (issued < conns &&
             issued - established - failed < kOpenWindow) {
        const auto port =
            static_cast<std::uint16_t>(kBasePort + issued);
        const TcpEngine::ConnId id =
            eng.connect(kServerIp, 80, port, cbs);
        if (id == 0) {
          phase[issued] = Dead;
          ++failed;
        } else {
          ids[issued] = id;
          idx[id] = issued;
        }
        ++issued;
      }
      const bool got = co_await eng.step(us(200.0));
      (void)got;
    }
    res.established = established;
    res.open_seconds = sim::to_us(self.node().now() - t_open0) / 1e6;
    res.conns_per_sec =
        res.open_seconds > 0 ? established / res.open_seconds : 0;
    // The moment of maximum concurrency: every client flow is up, none
    // has begun closing. Read the server's table size directly.
    res.server_peak =
        server_eng != nullptr ? server_eng->open_connections() : 0;

    // Phase 2: one GET per established connection, closed-loop.
    const std::string get = proto::http_format_get("/obj");
    const auto* get_p =
        reinterpret_cast<const std::uint8_t*>(get.data());
    const sim::Cycles t_req0 = self.node().now();
    const sim::Cycles req_deadline = t_req0 + budget / 2;
    std::size_t next = 0;
    for (;;) {
      if (self.node().now() >= req_deadline) break;
      while (next < conns && outstanding < kReqWindow) {
        if (phase[next] == Open) {
          t_start[next] = self.node().now();
          eng.write(ids[next], {get_p, get.size()});
          phase[next] = Requested;
          ++outstanding;
        }
        ++next;
      }
      if (next >= conns && outstanding == 0) break;
      const bool got = co_await eng.step(us(200.0));
      (void)got;
    }

    if (t_last_resp > t_req0) {
      const double req_s = sim::to_us(t_last_resp - t_req0) / 1e6;
      res.goodput_mbps = req_s > 0 ? good_bytes / req_s / 1e6 : 0;
    }
    std::sort(latency.begin(), latency.end());
    if (!latency.empty()) {
      res.p50_us = sim::to_us(latency[latency.size() / 2]);
      res.p99_us = sim::to_us(latency[latency.size() * 99 / 100]);
    }
    res.retransmits = eng.stats().retransmits;
    res.fast_retx = eng.stats().fast_retransmits;
    res.rto_timeouts = eng.stats().rto_timeouts;
    res.ooo_buffered = eng.stats().ooo_buffered;
    res.ooo_reassembled = eng.stats().ooo_reassembled;
    res.ooo_dropped = eng.stats().ooo_dropped;
    if (server_eng != nullptr) {
      res.retransmits += server_eng->stats().retransmits;
      res.fast_retx += server_eng->stats().fast_retransmits;
      res.rto_timeouts += server_eng->stats().rto_timeouts;
      res.ooo_buffered += server_eng->stats().ooo_buffered;
      res.ooo_reassembled += server_eng->stats().ooo_reassembled;
      res.ooo_dropped += server_eng->stats().ooo_dropped;
    }

    // Drain our own teardown, then stop the server.
    const sim::Cycles drain_until = self.node().now() + us(100000.0);
    while (self.node().now() < drain_until) {
      const bool got = co_await eng.step(us(5000.0));
      (void)got;
    }
    server_done = true;
  });

  w.sim.run(budget + us(1e6));
  return res;
}

net::FaultConfig lossy(double drop, double reorder) {
  net::FaultConfig f;
  f.drop_prob = drop;
  f.reorder_prob = reorder;
  f.reorder_delay = us(120.0);
  f.seed = 7;
  return f;
}

std::string regime_json(const RegimeResult& r) {
  char buf[640];
  std::snprintf(
      buf, sizeof buf,
      "{\"connections\": %zu, \"established\": %zu, "
      "\"server_peak_concurrent\": %zu, \"responses_ok\": %zu, "
      "\"conns_per_sec\": %.0f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
      "\"goodput_mbps\": %.3f, \"retransmits\": %llu, "
      "\"fast_retransmits\": %llu, \"rto_timeouts\": %llu, "
      "\"ooo_buffered\": %llu, \"ooo_reassembled\": %llu, "
      "\"ooo_dropped\": %llu}",
      r.conns, r.established, r.server_peak, r.responses_ok,
      r.conns_per_sec, r.p50_us, r.p99_us, r.goodput_mbps,
      static_cast<unsigned long long>(r.retransmits),
      static_cast<unsigned long long>(r.fast_retx),
      static_cast<unsigned long long>(r.rto_timeouts),
      static_cast<unsigned long long>(r.ooo_buffered),
      static_cast<unsigned long long>(r.ooo_reassembled),
      static_cast<unsigned long long>(r.ooo_dropped));
  return buf;
}

}  // namespace
}  // namespace ash::bench

int main(int argc, char** argv) {
  using namespace ash::bench;

  bool smoke = false;
  std::size_t conns = 10240;
  std::uint32_t body = 4096;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      body = 1024;  // lighter payload, same protocol dynamics
    } else if (std::strcmp(argv[i], "--conns") == 0 && i + 1 < argc) {
      conns = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--body") == 0 && i + 1 < argc) {
      body = static_cast<std::uint32_t>(std::atol(argv[++i]));
    }
  }

  std::vector<RegimeSpec> specs = {
      {"lossless", {}, true},
      {"loss_1pct", lossy(0.01, 0.0), true},
  };
  if (!smoke) {
    specs.push_back({"reorder_loss_ooo", lossy(0.01, 0.02), true});
    specs.push_back({"reorder_loss_drop", lossy(0.01, 0.02), false});
  }

  std::vector<RegimeResult> results;
  std::printf("http_c10k: %zu connections, %u-byte responses\n", conns,
              body);
  for (const RegimeSpec& s : specs) {
    results.push_back(run_regime(s, conns, body));
    const RegimeResult& r = results.back();
    std::printf(
        "%-18s est %6zu/%zu  peak %6zu  ok %6zu  %8.0f conns/s  "
        "p50 %8.0f us  p99 %8.0f us  %7.3f MB/s  (retx %llu, fast %llu, "
        "rto %llu, ooo +%llu/-%llu)\n",
        s.name, r.established, r.conns, r.server_peak, r.responses_ok,
        r.conns_per_sec, r.p50_us, r.p99_us, r.goodput_mbps,
        static_cast<unsigned long long>(r.retransmits),
        static_cast<unsigned long long>(r.fast_retx),
        static_cast<unsigned long long>(r.rto_timeouts),
        static_cast<unsigned long long>(r.ooo_buffered),
        static_cast<unsigned long long>(r.ooo_dropped));
  }

  std::string out = "{\n  \"bench\": \"http_c10k\",\n";
  char line[700];
  std::snprintf(line, sizeof line,
                "  \"connections\": %zu,\n  \"body_bytes\": %u,\n"
                "  \"regimes\": {\n",
                conns, body);
  out += line;
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::snprintf(line, sizeof line, "    \"%s\": %s%s\n",
                  specs[i].name, regime_json(results[i]).c_str(),
                  i + 1 < results.size() ? "," : "");
    out += line;
  }
  out += "  }\n}\n";
  if (FILE* fp = std::fopen("BENCH_http_c10k.json", "w")) {
    std::fputs(out.c_str(), fp);
    std::fclose(fp);
  } else {
    std::fprintf(stderr,
                 "warning: could not write BENCH_http_c10k.json\n");
  }

  if (smoke) {
    const RegimeResult& clean = results[0];
    const RegimeResult& loss = results[1];
    bool ok = true;
    if (clean.server_peak < 10000 || conns < 10000) {
      std::fprintf(stderr,
                   "SMOKE FAIL: server peak concurrency %zu < 10000\n",
                   clean.server_peak);
      ok = false;
    }
    if (clean.established != conns) {
      std::fprintf(stderr, "SMOKE FAIL: only %zu/%zu established\n",
                   clean.established, conns);
      ok = false;
    }
    if (clean.responses_ok < conns * 99 / 100 ||
        loss.responses_ok < conns * 99 / 100) {
      std::fprintf(stderr, "SMOKE FAIL: responses ok %zu / %zu of %zu\n",
                   clean.responses_ok, loss.responses_ok, conns);
      ok = false;
    }
    if (loss.goodput_mbps < 0.9 * clean.goodput_mbps) {
      std::fprintf(stderr,
                   "SMOKE FAIL: lossy goodput %.3f < 90%% of lossless "
                   "%.3f MB/s\n",
                   loss.goodput_mbps, clean.goodput_mbps);
      ok = false;
    }
    std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  return 0;
}
