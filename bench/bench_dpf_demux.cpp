// Section IV-A — DPF demultiplexing: the compiled (dynamic-code-generation
// analogue) engine versus the classic interpreted filter engine, as the
// number of installed filters grows. The paper's claim: DPF is an order of
// magnitude faster than the best interpreted engines.
//
// Native timings via google-benchmark, plus the structural work counts
// (atoms evaluated vs tree nodes visited) that drive the simulator's demux
// cost model.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "dpf/dpf.hpp"

namespace ash::bench {
namespace {

using dpf::atom_be16;
using dpf::atom_u8;
using dpf::CompiledEngine;
using dpf::Filter;
using dpf::InterpretedEngine;
using dpf::MatchStats;

Filter udp_port_filter(std::uint16_t port) {
  Filter f;
  f.atoms = {atom_be16(12, 0x0800), atom_u8(23, 17), atom_be16(34, port)};
  return f;
}

std::vector<std::uint8_t> packet_for_port(std::uint16_t port) {
  std::vector<std::uint8_t> p(64, 0);
  p[12] = 0x08;
  p[13] = 0x00;
  p[23] = 17;
  p[34] = static_cast<std::uint8_t>(port >> 8);
  p[35] = static_cast<std::uint8_t>(port);
  return p;
}

template <typename Engine>
void install(Engine& engine, int n) {
  for (int i = 0; i < n; ++i) {
    engine.insert(udp_port_filter(static_cast<std::uint16_t>(1000 + i)),
                  i);
  }
}

template <typename Engine>
void bm_match(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Engine engine;
  install(engine, n);
  // Match the last-installed (worst case for the linear scan).
  const auto pkt = packet_for_port(static_cast<std::uint16_t>(1000 + n - 1));
  for (auto _ : state) {
    const int owner = engine.match(pkt);
    benchmark::DoNotOptimize(owner);
  }
}

void bm_interpreted(benchmark::State& state) {
  bm_match<InterpretedEngine>(state);
}
void bm_compiled(benchmark::State& state) { bm_match<CompiledEngine>(state); }
BENCHMARK(bm_interpreted)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(bm_compiled)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void print_work_counts() {
  std::printf("\nstructural work per demultiplex (drives the simulated "
              "kernel's demux cost):\n");
  std::printf("%8s %24s %24s\n", "filters", "interpreted atoms",
              "compiled nodes");
  for (int n : {1, 4, 16, 64, 256}) {
    InterpretedEngine interp;
    CompiledEngine compiled;
    install(interp, n);
    install(compiled, n);
    const auto pkt =
        packet_for_port(static_cast<std::uint16_t>(1000 + n - 1));
    MatchStats is, cs;
    interp.match(pkt, &is);
    compiled.match(pkt, &cs);
    std::printf("%8d %24u %24u\n", n, is.atoms_evaluated, cs.nodes_visited);
  }
  std::printf("paper claim: DPF's dynamic code generation beats interpreted "
              "engines by an order\nof magnitude; the compiled tree visits "
              "O(depth) nodes regardless of filter count.\n");
}

}  // namespace
}  // namespace ash::bench

int main(int argc, char** argv) {
  std::printf("=== Sec. IV-A: DPF compiled vs interpreted demultiplexing "
              "===\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ash::bench::print_work_counts();
  return 0;
}
