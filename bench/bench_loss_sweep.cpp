// Loss sweep — TCP goodput over AN2 as a function of injected frame loss.
//
// Not a paper table: the paper measured a lossless machine-room network.
// This bench drives the unified fault injector (net/fault.hpp) across a
// range of drop rates to show (a) the protocol library survives loss and
// (b) what each percent of loss costs in goodput and retransmissions.
// Everything is seeded, so a row can be replayed exactly: rerunning the
// binary reproduces the same drops, the same retransmits, and the same
// goodput to the cycle.
#include "bench_util.hpp"

#include "proto/an2_link.hpp"
#include "proto/tcp.hpp"

namespace ash::bench {
namespace {

using proto::An2Link;
using proto::Ipv4Addr;
using sim::Process;
using sim::Task;
using sim::us;

const Ipv4Addr kIpA = Ipv4Addr::of(10, 0, 0, 1);
const Ipv4Addr kIpB = Ipv4Addr::of(10, 0, 0, 2);

struct SweepPoint {
  double goodput_mbps = 0.0;
  double retransmits = 0.0;
  double link_drops = 0.0;
};

SweepPoint run_point(double drop_prob, std::uint32_t total_bytes) {
  net::An2Config cfg;
  cfg.faults.drop_prob = drop_prob;
  cfg.faults.seed = 42;  // same schedule every run — replayable rows
  An2World w(cfg);
  sim::Cycles t0 = 0, t1 = 0;
  std::uint64_t retransmits = 0;

  w.b->kernel().spawn("sink", [&](Process& self) -> Task {
    An2Link::Config lc;
    lc.rx_buffers = 32;
    An2Link link(self, *w.dev_b, lc);
    proto::TcpConfig c;
    c.local_ip = kIpB;
    c.remote_ip = kIpA;
    c.local_port = 5000;
    c.remote_port = 4000;
    c.iss = 900;
    c.rto = us(5000.0);
    c.max_retries = 64;
    proto::TcpConnection conn(link, c);
    const bool ok = co_await conn.accept();
    if (!ok) co_return;
    std::uint32_t got = 0;
    while (got < total_bytes) {
      const std::uint32_t n = co_await conn.read_discard(total_bytes - got);
      if (n == 0) break;
      got += n;
    }
    t1 = self.node().now();
    retransmits += conn.stats().retransmits;
  });
  w.a->kernel().spawn("source", [&](Process& self) -> Task {
    An2Link link(self, *w.dev_a, An2Link::Config{});
    proto::TcpConfig c;
    c.local_ip = kIpA;
    c.remote_ip = kIpB;
    c.local_port = 4000;
    c.remote_port = 5000;
    c.iss = 100;
    c.rto = us(5000.0);
    c.max_retries = 64;
    proto::TcpConnection conn(link, c);
    co_await self.sleep_for(us(500.0));
    const bool ok = co_await conn.connect();
    if (!ok) co_return;
    const std::uint32_t app = self.segment().base;
    fill_pattern(self.node(), app, 8192, 7);
    t0 = self.node().now();
    for (std::uint32_t off = 0; off < total_bytes; off += 8192) {
      const bool sent =
          co_await conn.write_from(app, std::min(8192u, total_bytes - off));
      if (!sent) co_return;  // retry exhaustion — row reports what it got
    }
    retransmits += conn.stats().retransmits;
  });
  w.sim.run(us(6e7));

  SweepPoint p;
  const double seconds = sim::to_us(t1 - t0) / 1e6;
  if (t1 > t0) {
    p.goodput_mbps = static_cast<double>(total_bytes) / seconds / 1e6;
  }
  p.retransmits = static_cast<double>(retransmits);
  p.link_drops = static_cast<double>(w.dev_a->fault_counters().drops +
                                     w.dev_b->fault_counters().drops);
  return p;
}

}  // namespace
}  // namespace ash::bench

int main(int argc, char** argv) {
  using namespace ash::bench;
  // 256 KB per point by default; --full runs 2 MB points.
  std::uint32_t bytes = 256u << 10;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--full") bytes = 2u << 20;
  }

  const double rates[] = {0.0, 0.01, 0.02, 0.05, 0.10, 0.20};
  std::vector<std::pair<double, std::vector<double>>> points;
  for (double r : rates) {
    const SweepPoint p = run_point(r, bytes);
    points.push_back({r * 100.0,
                      {p.goodput_mbps, p.retransmits, p.link_drops}});
  }
  print_series("Loss sweep", "TCP goodput vs injected frame loss (AN2)",
               "loss %", {"goodput MB/s", "retransmits", "link drops"},
               points, "fault seed 42");
  return 0;
}
