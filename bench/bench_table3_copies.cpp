// Table III — throughput for copies of 4096 bytes: single copy, double
// copy (second copy cached), double copy with intervening cache flush.
//
// Two reproductions:
//  * simulated: the cost-model + direct-mapped-cache machinery the whole
//    system runs on (MB/s at 40 MHz) — the paper's numbers;
//  * native: the same experiment on the host CPU via google-benchmark,
//    showing the effect is real on modern memory systems too.
#include "bench_util.hpp"

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "sim/memops.hpp"

namespace ash::bench {
namespace {

constexpr std::uint32_t kLen = 4096;

/// Simulated copy experiment. The paper flushes caches every iteration so
/// the source is never resident when the (first) copy starts.
double simulated_mbps(int copies, bool flush_between) {
  sim::Simulator s;
  sim::Node& node = s.add_node("n");
  const std::uint32_t src = 0x100000, mid = 0x110000, dst = 0x120000;
  fill_pattern(node, src, kLen, 1);

  sim::Cycles total = 0;
  constexpr int kIters = 64;
  for (int i = 0; i < kIters; ++i) {
    node.dcache().flush_all();
    total += sim::memops::copy(node, mid, src, kLen);
    if (copies == 2) {
      // Cached variant: the second copy re-reads the (now cached) source;
      // uncached variant flushes in between ("the message gets flushed
      // from the cache").
      if (flush_between) node.dcache().flush_all();
      total += sim::memops::copy(node, dst, src, kLen);
    }
  }
  const double seconds = sim::to_us(total) / 1e6;
  return static_cast<double>(kLen) * kIters / seconds / 1e6;
}

// --- native (host CPU) versions ---

void bm_single_copy(benchmark::State& state) {
  std::vector<std::uint8_t> src(kLen, 1), mid(kLen);
  for (auto _ : state) {
    std::memcpy(mid.data(), src.data(), kLen);
    benchmark::DoNotOptimize(mid.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kLen);
}
BENCHMARK(bm_single_copy);

void bm_double_copy_cached(benchmark::State& state) {
  std::vector<std::uint8_t> src(kLen, 1), mid(kLen), dst(kLen);
  for (auto _ : state) {
    std::memcpy(mid.data(), src.data(), kLen);
    std::memcpy(dst.data(), mid.data(), kLen);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kLen);
}
BENCHMARK(bm_double_copy_cached);

void bm_double_copy_uncached(benchmark::State& state) {
  // A large stride defeats the cache between the two copies, standing in
  // for the paper's explicit flush.
  constexpr std::size_t kSlots = 8192;  // 32 MB footprint
  std::vector<std::uint8_t> src(kLen * kSlots, 1), mid(kLen * kSlots),
      dst(kLen);
  std::size_t slot = 0;
  for (auto _ : state) {
    std::uint8_t* m = mid.data() + slot * kLen;
    std::memcpy(m, src.data() + slot * kLen, kLen);
    std::memcpy(dst.data(), m, kLen);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
    slot = (slot + 1) % kSlots;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kLen);
}
BENCHMARK(bm_double_copy_uncached);

}  // namespace
}  // namespace ash::bench

int main(int argc, char** argv) {
  using namespace ash::bench;
  std::vector<Row> rows;
  rows.push_back({"single copy", simulated_mbps(1, false), 20, "MB/s"});
  rows.push_back({"double copy (cached)", simulated_mbps(2, false), 14,
                  "MB/s"});
  rows.push_back({"double copy (uncached)", simulated_mbps(2, true), 11,
                  "MB/s"});
  print_table("Table III", "copy throughput, 4096 bytes (simulated)", rows);

  std::printf("\nnative (host CPU) versions via google-benchmark:\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
