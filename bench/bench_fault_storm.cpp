// Supervisor containment under a faulting-handler storm.
//
// A misbehaving download (an infinite loop — the worst involuntary abort:
// every invocation burns the full hardware-timer budget before the kernel
// kills it) is stormed with messages while a well-behaved remote-increment
// handler serves request/response traffic on the same machine. Three
// configurations:
//  * no storm          — the healthy traffic's goodput baseline,
//  * storm, no supervisor — every faulting message costs the kernel the
//    full ASH budget; demand exceeds CPU capacity and healthy traffic
//    starves behind the backlog,
//  * storm, supervisor — the quarantine state machine pays for a handful
//    of probe runs, then skips the rest at demux cost.
//
// Acceptance (the PR's bar): the supervised configuration spends >= 10x
// fewer kernel cycles on the faulting handler than supervisor-off, while
// healthy goodput stays within 5% of the no-storm baseline.
//
// Deterministic: no RNG anywhere — the storm is a fixed 5 ms schedule and
// healthy pings a fixed 10 ms schedule (see EXPERIMENTS.md).
#include "bench_util.hpp"

#include "ashlib/handlers.hpp"
#include "core/ash.hpp"
#include "vcode/builder.hpp"

namespace ash::bench {
namespace {

using core::AshSystem;
using core::SupervisorConfig;
using sim::Process;
using sim::Task;
using sim::us;
using vcode::Builder;

constexpr double kDeadlineUs = 2e6;       // 2 simulated seconds
constexpr double kPingPeriodUs = 10000.0; // healthy request every 10 ms
constexpr double kStormPeriodUs = 5000.0; // faulting message every 5 ms

/// The nastiest safe handler: verifies and sandboxes cleanly, then spins
/// until the hardware timer kills it (312k cycles per invocation).
vcode::Program evil_handler() {
  Builder b;
  const vcode::Label loop = b.label();
  b.bind(loop);
  b.jmp(loop);
  return b.take();
}

struct StormResult {
  std::uint64_t evil_cycles = 0;    // kernel cycles burned by the evil ASH
  std::uint64_t evil_runs = 0;      // invocations that actually executed
  std::uint64_t evil_skips = 0;     // messages bypassed by the supervisor
  std::uint64_t kernel_cycles = 0;  // receiving node, total
  std::uint64_t healthy_replies = 0;
  const char* evil_state = "-";
};

StormResult run_config(bool storm, bool supervise) {
  An2World w;
  AshSystem ash_sys(*w.b);
  if (supervise) {
    SupervisorConfig sup;  // default policy: 3 faults / 100 ms window,
    sup.enabled = true;    // 50 ms backoff doubling, revoked on trip 4
    ash_sys.set_supervisor(sup);
  }

  int healthy_id = -1, evil_id = -1, evil_vc = -1;
  std::uint64_t replies = 0;

  w.b->kernel().spawn("healthy", [&](Process& self) -> Task {
    const int vc = w.dev_b->bind_vc(self);
    for (int i = 0; i < 64; ++i) {
      w.dev_b->supply_buffer(
          vc, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
    }
    std::string error;
    healthy_id =
        ash_sys.download(self, ashlib::make_remote_increment(), {}, &error);
    ash_sys.attach_an2(*w.dev_b, vc, healthy_id,
                       self.segment().base + 0x8000);
    while (self.node().now() < us(kDeadlineUs)) {
      co_await self.sleep_for(us(50000.0));
    }
  });
  w.b->kernel().spawn("evil", [&](Process& self) -> Task {
    evil_vc = w.dev_b->bind_vc(self);
    // Plenty of buffers: every stormed message lands in one (aborted and
    // skipped messages fall back to the notify ring and keep it).
    for (int i = 0; i < 512; ++i) {
      w.dev_b->supply_buffer(
          evil_vc, self.segment().base + 64u * static_cast<std::uint32_t>(i),
          64);
    }
    std::string error;
    evil_id = ash_sys.download(self, evil_handler(), {}, &error);
    ash_sys.attach_an2(*w.dev_b, evil_vc, evil_id);
    while (self.node().now() < us(kDeadlineUs)) {
      co_await self.sleep_for(us(50000.0));
    }
  });

  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    const int vc = w.dev_a->bind_vc(self);
    for (int i = 0; i < 32; ++i) {
      w.dev_a->supply_buffer(
          vc, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
    }
    co_await self.sleep_for(us(1000.0));
    const std::uint8_t ping[] = {1, 2, 3, 4};
    int tick = 0;
    while (self.node().now() < us(kDeadlineUs)) {
      if (tick % 10 == 0) {
        co_await self.syscall(w.dev_a->config().tx_kernel_work);
        w.dev_a->send(0, ping);
      }
      while (const auto d = w.dev_a->poll(vc)) {
        ++replies;
        w.dev_a->return_buffer(vc, d->addr, d->len);
      }
      co_await self.sleep_for(us(1000.0));
      ++tick;
    }
  });
  if (storm) {
    w.a->kernel().spawn("storm", [&](Process& self) -> Task {
      co_await self.sleep_for(us(1500.0));
      const std::uint8_t m[] = {0xde, 0xad, 0xbe, 0xef};
      while (self.node().now() < us(kDeadlineUs)) {
        co_await self.syscall(w.dev_a->config().tx_kernel_work);
        w.dev_a->send(evil_vc, m);
        co_await self.sleep_for(us(kStormPeriodUs));
      }
    });
  }

  w.sim.run(us(kDeadlineUs));

  StormResult r;
  r.healthy_replies = replies;
  r.kernel_cycles = w.b->kernel_cycles_total();
  if (evil_id >= 0) {
    const core::AshStats& es = ash_sys.stats(evil_id);
    r.evil_cycles = es.cycles;
    r.evil_runs = es.invocations;
    r.evil_skips = es.quarantine_skips + es.revoked_skips;
    r.evil_state = core::to_string(ash_sys.health(evil_id));
  }
  return r;
}

}  // namespace
}  // namespace ash::bench

int main() {
  using namespace ash::bench;

  const StormResult base = run_config(/*storm=*/false, /*supervise=*/false);
  const StormResult off = run_config(/*storm=*/true, /*supervise=*/false);
  const StormResult on = run_config(/*storm=*/true, /*supervise=*/true);

  print_table(
      "fault storm", "faulting-handler storm vs healthy goodput (2 s)",
      {
          {"no storm: healthy replies", static_cast<double>(base.healthy_replies), -1, "msgs"},
          {"storm, supervisor off: healthy replies", static_cast<double>(off.healthy_replies), -1, "msgs"},
          {"storm, supervisor on: healthy replies", static_cast<double>(on.healthy_replies), -1, "msgs"},
          {"storm, supervisor off: evil ASH cycles", static_cast<double>(off.evil_cycles), -1, "cycles"},
          {"storm, supervisor on: evil ASH cycles", static_cast<double>(on.evil_cycles), -1, "cycles"},
          {"storm, supervisor off: kernel cycles", static_cast<double>(off.kernel_cycles), -1, "cycles"},
          {"storm, supervisor on: kernel cycles", static_cast<double>(on.kernel_cycles), -1, "cycles"},
      });
  std::printf("supervised evil handler: %llu run(s), %llu skipped, final "
              "state %s\n",
              static_cast<unsigned long long>(on.evil_runs),
              static_cast<unsigned long long>(on.evil_skips), on.evil_state);

  bool ok = true;

  const double ratio =
      on.evil_cycles > 0
          ? static_cast<double>(off.evil_cycles) /
                static_cast<double>(on.evil_cycles)
          : 0.0;
  const bool contain_ok = ratio >= 10.0;
  std::printf("containment: evil-handler cycles %.3gM (off) vs %.3gM (on) "
              "= %.1fx  [%s >= 10x]\n",
              off.evil_cycles / 1e6, on.evil_cycles / 1e6, ratio,
              contain_ok ? "PASS" : "FAIL");
  ok = ok && contain_ok;

  const double goodput =
      base.healthy_replies > 0
          ? static_cast<double>(on.healthy_replies) /
                static_cast<double>(base.healthy_replies)
          : 0.0;
  const bool goodput_ok = goodput >= 0.95;
  std::printf("goodput: healthy replies %llu (baseline) vs %llu (supervised "
              "storm) = %.1f%%  [%s >= 95%%]\n",
              static_cast<unsigned long long>(base.healthy_replies),
              static_cast<unsigned long long>(on.healthy_replies),
              100.0 * goodput, goodput_ok ? "PASS" : "FAIL");
  ok = ok && goodput_ok;

  std::printf("(unsupervised storm for contrast: %llu healthy replies)\n",
              static_cast<unsigned long long>(off.healthy_replies));
  return ok ? 0 : 1;
}
