// Table VI — TCP on the AN2 with the common-case receive path run as a
// sandboxed ASH, an unsafe ASH, an upcall, or in the user-level library
// (interrupt-driven or polling): 4-byte ping-pong latency, bulk
// throughput (MSS 3072, 8 KB writes), and small-MSS throughput (MSS 536,
// 4 KB writes).
#include "bench_util.hpp"

#include <algorithm>
#include <memory>

#include "ashlib/tcp_fastpath.hpp"
#include "proto/an2_link.hpp"

namespace ash::bench {
namespace {

using proto::An2Link;
using proto::Ipv4Addr;
using proto::TcpConfig;
using proto::TcpConnection;
using sim::Process;
using sim::Task;
using sim::us;

const Ipv4Addr kIpA = Ipv4Addr::of(10, 0, 0, 1);
const Ipv4Addr kIpB = Ipv4Addr::of(10, 0, 0, 2);

enum class Mode { SandboxedAsh, UnsafeAsh, Upcall, UserInterrupt, UserPoll };

bool handler_mode(Mode m) {
  return m == Mode::SandboxedAsh || m == Mode::UnsafeAsh ||
         m == Mode::Upcall;
}

TcpConfig tcp_cfg(bool client, std::uint32_t mss) {
  TcpConfig c;
  c.local_ip = client ? kIpA : kIpB;
  c.remote_ip = client ? kIpB : kIpA;
  c.local_port = client ? 4000 : 5000;
  c.remote_port = client ? 5000 : 4000;
  c.iss = client ? 100 : 900;
  c.mss = mss;
  c.checksum = true;
  return c;
}

struct Side {
  std::unique_ptr<An2Link> link;
  std::unique_ptr<TcpConnection> conn;
};

/// Build one side's link+connection and install the fast path per mode.
Side make_side(Process& self, net::An2Device& dev, core::AshSystem& ash_sys,
               core::UpcallManager& upcalls, Mode mode, bool client,
               std::uint32_t mss) {
  Side s;
  An2Link::Config cfg;
  cfg.rx_buffers = 32;
  cfg.mode = mode == Mode::UserInterrupt ? proto::RecvMode::Interrupt
                                         : proto::RecvMode::Polling;
  s.link = std::make_unique<An2Link>(self, dev, cfg);
  s.conn = std::make_unique<TcpConnection>(*s.link, tcp_cfg(client, mss));
  if (mode == Mode::Upcall) {
    ashlib::install_tcp_fastpath_upcall(upcalls, dev, s.link->vc(), *s.conn);
  } else if (mode == Mode::SandboxedAsh || mode == Mode::UnsafeAsh) {
    core::AshOptions opts;
    opts.sandboxed = mode == Mode::SandboxedAsh;
    std::string error;
    const auto fp = ashlib::install_tcp_fastpath(ash_sys, dev, s.link->vc(),
                                                 *s.conn, opts, &error);
    if (!fp.has_value()) std::fprintf(stderr, "install: %s\n", error.c_str());
  }
  return s;
}

double latency_us(Mode mode) {
  constexpr int kIters = 16;
  An2World w;
  core::AshSystem ash_a(*w.a), ash_b(*w.b);
  core::UpcallManager up_a(*w.a), up_b(*w.b);
  sim::Cycles t0 = 0, t1 = 0;

  w.b->kernel().spawn("server", [&](Process& self) -> Task {
    Side s = make_side(self, *w.dev_b, ash_b, up_b, mode, false, 3072);
    const bool ok = co_await s.conn->accept();
    (void)ok;
    const std::uint32_t app = self.segment().base;
    for (int i = 0; i < kIters; ++i) {
      const std::uint32_t n = co_await s.conn->read_into(app, 64);
      const bool sent = co_await s.conn->write_from(app, n);
      (void)sent;
    }
  });
  w.a->kernel().spawn("client", [&](Process& self) -> Task {
    Side s = make_side(self, *w.dev_a, ash_a, up_a, mode, true, 3072);
    co_await self.sleep_for(us(500.0));
    const bool ok = co_await s.conn->connect();
    (void)ok;
    const std::uint32_t app = self.segment().base;
    fill_pattern(self.node(), app, 4, 9);
    t0 = self.node().now();
    for (int i = 0; i < kIters; ++i) {
      const bool sent = co_await s.conn->write_from(app, 4);
      (void)sent;
      (void)co_await s.conn->read_into(app + 32, 64);
    }
    t1 = self.node().now();
  });
  w.sim.run(us(5e6));
  return sim::to_us(t1 - t0) / kIters;
}

double throughput_mbps(Mode mode, std::uint32_t mss, std::uint32_t chunk,
                       std::uint32_t total) {
  An2World w;
  core::AshSystem ash_a(*w.a), ash_b(*w.b);
  core::UpcallManager up_a(*w.a), up_b(*w.b);
  sim::Cycles t0 = 0, t1 = 0;

  w.b->kernel().spawn("sink", [&](Process& self) -> Task {
    Side s = make_side(self, *w.dev_b, ash_b, up_b, mode, false, mss);
    const bool ok = co_await s.conn->accept();
    (void)ok;
    const std::uint32_t app = self.segment().base;
    std::uint32_t got = 0;
    while (got < total) {
      const std::uint32_t n = co_await s.conn->read_into(app, total - got);
      if (n == 0) break;
      got += n;
    }
    t1 = self.node().now();
  });
  w.a->kernel().spawn("source", [&](Process& self) -> Task {
    Side s = make_side(self, *w.dev_a, ash_a, up_a, mode, true, mss);
    co_await self.sleep_for(us(500.0));
    const bool ok = co_await s.conn->connect();
    (void)ok;
    const std::uint32_t app = self.segment().base;
    fill_pattern(self.node(), app, chunk, 11);
    t0 = self.node().now();
    for (std::uint32_t off = 0; off < total; off += chunk) {
      const bool sent =
          co_await s.conn->write_from(app, std::min(chunk, total - off));
      (void)sent;
    }
  });
  w.sim.run(us(6e7));
  const double seconds = sim::to_us(t1 - t0) / 1e6;
  return static_cast<double>(total) / seconds / 1e6;
}

}  // namespace
}  // namespace ash::bench

int main(int argc, char** argv) {
  using namespace ash::bench;
  std::uint32_t total = 2u << 20;  // paper: 10 MB; --full restores it
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--full") total = 10u << 20;
  }

  const struct {
    const char* name;
    Mode mode;
    double paper_lat, paper_thr, paper_small;
  } spec[] = {
      {"Sandboxed ASH", Mode::SandboxedAsh, 394, 4.32, 2.66},
      {"Unsafe ASH", Mode::UnsafeAsh, 348, 4.53, 3.05},
      {"Upcall", Mode::Upcall, 382, 4.27, 2.78},
      {"User-level (interrupt)", Mode::UserInterrupt, 459, 3.92, 2.32},
      {"User-level (polling)", Mode::UserPoll, 384, 4.11, 2.56},
  };

  std::vector<Row> rows;
  for (const auto& s : spec) {
    rows.push_back({std::string(s.name) + "  latency", latency_us(s.mode),
                    s.paper_lat, "us/RTT"});
  }
  for (const auto& s : spec) {
    rows.push_back({std::string(s.name) + "  throughput",
                    throughput_mbps(s.mode, 3072, 8192, total), s.paper_thr,
                    "MB/s"});
  }
  for (const auto& s : spec) {
    rows.push_back({std::string(s.name) + "  throughput (small MSS)",
                    throughput_mbps(s.mode, 536, 4096, total / 2),
                    s.paper_small, "MB/s"});
  }
  print_table("Table VI", "TCP with the fast path as ASH/upcall/library",
              rows);
  return 0;
}
