// bench_rules — compiled declarative rules vs hand-written ASHs.
//
// Four rule-built scenarios (the ashc::scenarios quartet: L4 load
// balancer, KV request handler, telemetry sampler, firewall) each run
// twice over the same deterministic workload: once as ashc::compile()d
// rules through download_rules(), once as a hand-written VCODE twin a
// careful ASH author would produce. The harness asserts the two legs are
// byte-identical (decisions, send bytes, final state) — the twin IS the
// rule set, written by hand — and then compares simulated cycles per
// message.
//
// The acceptance gate (--smoke, registered as a ctest): compiled rules
// must reach >= 80% of the hand-written throughput on every scenario,
// i.e. rules_cycles <= hand_cycles / 0.8. The DPF-style preload
// coalescing in the compiler is what keeps this true.
//
// Flags: --smoke   run the gate and exit nonzero on a miss
//        --json    emit the BENCH_rules.json shape on stdout
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ashc/compile.hpp"
#include "ashc/rule.hpp"
#include "ashc/scenarios.hpp"
#include "bench_util.hpp"
#include "core/ash.hpp"
#include "util/byteorder.hpp"
#include "vcode/builder.hpp"

namespace ash::bench {
namespace {

using sim::Process;
using sim::Simulator;
using sim::Task;
using sim::us;
using vcode::Builder;
using vcode::kRegArg0;
using vcode::kRegArg1;
using vcode::kRegArg2;
using vcode::kRegArg3;
using vcode::kRegZero;
using vcode::Reg;

// ------------------------------------------------- hand-written twins
//
// Each twin implements its scenario's RuleSet exactly (same decisions,
// same sends, same state writes) the way a hand author would: one
// t_msgload per header word, short-circuit branches, state arithmetic
// against r3, reply templates sent from state.

vcode::Program hand_lb() {
  Builder b;
  const Reg p = b.reg(), t = b.reg(), c = b.reg();
  vcode::Label deliver = b.label(), s1 = b.label(), s2 = b.label(),
               s3 = b.label();
  b.movi(t, 40);
  b.bltu(kRegArg1, t, deliver);
  b.t_msgload(p, kRegZero, 36);
  b.bswap16(p, p);
  b.movi(t, 8000);
  b.bltu(p, t, deliver);
  b.movi(t, 8100);
  b.bltu(p, t, s1);
  b.movi(t, 8200);
  b.bltu(p, t, s2);
  b.movi(t, 8300);
  b.bltu(p, t, s3);
  b.jmp(deliver);
  b.bind(s1);
  b.movi(c, 1);
  b.t_send(c, kRegArg0, kRegArg1);
  b.halt();
  b.bind(s2);
  b.movi(c, 2);
  b.t_send(c, kRegArg0, kRegArg1);
  b.halt();
  b.bind(s3);
  b.movi(c, 3);
  b.t_send(c, kRegArg0, kRegArg1);
  b.halt();
  b.bind(deliver);
  b.abort(0);
  return b.take();
}

vcode::Program hand_kv() {
  Builder b;
  const Reg w0 = b.reg(), w4 = b.reg(), op = b.reg(), t = b.reg(),
            v = b.reg(), a = b.reg(), l = b.reg();
  vcode::Label try_put = b.label(), deliver = b.label();
  b.t_msgload(w0, kRegZero, 0);
  b.bswap32(op, w0);
  b.movi(v, 1);
  b.bne(op, v, try_put);
  b.movi(v, 12);
  b.bltu(kRegArg1, v, deliver);  // op==1, so no later rule can match
  // GET: count, splice key + cached value into the template, reply.
  b.lw(v, kRegArg2, 0);
  b.addiu(v, v, 1);
  b.sw(v, kRegArg2, 0);
  b.t_msgload(w4, kRegZero, 4);
  b.sb(w4, kRegArg2, 20);
  b.srli(t, w4, 8);
  b.sb(t, kRegArg2, 21);
  b.srli(t, w4, 16);
  b.sb(t, kRegArg2, 22);
  b.srli(t, w4, 24);
  b.sb(t, kRegArg2, 23);
  b.lbu(t, kRegArg2, 8);
  b.sb(t, kRegArg2, 24);
  b.lbu(t, kRegArg2, 9);
  b.sb(t, kRegArg2, 25);
  b.lbu(t, kRegArg2, 10);
  b.sb(t, kRegArg2, 26);
  b.lbu(t, kRegArg2, 11);
  b.sb(t, kRegArg2, 27);
  b.addiu(a, kRegArg2, 16);
  b.movi(l, 12);
  b.t_send(kRegArg3, a, l);
  b.halt();
  b.bind(try_put);
  b.movi(v, 2);
  b.bne(op, v, deliver);
  b.movi(v, 12);
  b.bltu(kRegArg1, v, deliver);
  // PUT: count, cache the value bytes.
  b.lw(v, kRegArg2, 4);
  b.addiu(v, v, 1);
  b.sw(v, kRegArg2, 4);
  b.addiu(a, kRegArg2, 8);
  b.addiu(t, kRegArg0, 8);
  b.movi(l, 4);
  b.t_usercopy(a, t, l);
  b.halt();
  b.bind(deliver);
  b.abort(0);
  return b.take();
}

vcode::Program hand_sampler() {
  Builder b;
  const Reg w0 = b.reg(), w = b.reg(), t = b.reg(), v = b.reg(),
            acc = b.reg(), a = b.reg(), l = b.reg();
  vcode::Label done = b.label(), deliver = b.label();
  b.t_msgload(w0, kRegZero, 0);
  b.bswap16(t, w0);
  b.movi(v, 0x5454);
  b.bne(t, v, deliver);
  b.lw(v, kRegArg2, 0);
  b.addiu(v, v, 1);
  b.sw(v, kRegArg2, 0);
  // Digest: ones'-complement accumulate of message words 0..12.
  b.movi(acc, 0);
  b.cksum32(acc, w0);
  b.t_msgload(w, kRegZero, 4);
  b.cksum32(acc, w);
  b.t_msgload(w, kRegZero, 8);
  b.cksum32(acc, w);
  b.t_msgload(w, kRegZero, 12);
  b.cksum32(acc, w);
  b.sw(acc, kRegArg2, 4);
  // 1-in-8 sample gate; off-modulus frames still commit.
  b.lw(v, kRegArg2, 8);
  b.addiu(v, v, 1);
  b.sw(v, kRegArg2, 8);
  b.movi(t, 8);
  b.remu(v, v, t);
  b.bne(v, kRegZero, done);
  // Splice the digest into the template and reply.
  b.lbu(t, kRegArg2, 4);
  b.sb(t, kRegArg2, 20);
  b.lbu(t, kRegArg2, 5);
  b.sb(t, kRegArg2, 21);
  b.lbu(t, kRegArg2, 6);
  b.sb(t, kRegArg2, 22);
  b.lbu(t, kRegArg2, 7);
  b.sb(t, kRegArg2, 23);
  b.addiu(a, kRegArg2, 16);
  b.movi(l, 8);
  b.t_send(kRegArg3, a, l);
  b.bind(done);
  b.halt();
  b.bind(deliver);
  b.abort(0);
  return b.take();
}

vcode::Program hand_firewall() {
  Builder b;
  const Reg p = b.reg(), q = b.reg(), t = b.reg(), v = b.reg();
  vcode::Label udp = b.label(), runt = b.label(), rest = b.label(),
               deliver = b.label();
  b.t_msgload(p, kRegZero, 23);
  b.andi(p, p, 0xff);
  b.t_msgload(q, kRegZero, 36);
  b.bswap16(q, q);
  // tcp-http: proto 6, port 80 or 443 -> deliver
  b.movi(t, 6);
  b.bne(p, t, udp);
  b.movi(t, 80);
  b.beq(q, t, deliver);
  b.movi(t, 443);
  b.beq(q, t, deliver);
  b.bind(udp);  // udp-media: proto 17, port 5000..5100 -> deliver
  b.movi(t, 17);
  b.bne(p, t, runt);
  b.movi(t, 5000);
  b.bltu(q, t, runt);
  b.movi(t, 5101);
  b.bltu(q, t, deliver);
  b.bind(runt);  // len < 20: counted silent drop
  b.movi(t, 20);
  b.bgeu(kRegArg1, t, rest);
  b.lw(v, kRegArg2, 0);
  b.addiu(v, v, 1);
  b.sw(v, kRegArg2, 0);
  b.halt();
  b.bind(rest);  // counted policy drop
  b.lw(v, kRegArg2, 4);
  b.addiu(v, v, 1);
  b.sw(v, kRegArg2, 4);
  b.halt();
  b.bind(deliver);
  b.abort(0);
  return b.take();
}

vcode::Program hand_twin(const std::string& name) {
  if (name == "lb") return hand_lb();
  if (name == "kv") return hand_kv();
  if (name == "sampler") return hand_sampler();
  return hand_firewall();
}

// ------------------------------------------------------- the workload

/// A deterministic per-scenario workload: demo-frame shapes with varied
/// header values, so every rule (and every miss path) fires many times.
std::vector<std::vector<std::uint8_t>> workload(const std::string& name,
                                                std::size_t n) {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (name == "lb") {
      const std::size_t len = i % 7 == 6 ? 38 : 64;
      std::vector<std::uint8_t> f(len, 0);
      util::store_be16(f.data() + 36,
                       static_cast<std::uint16_t>(7900 + (i * 37) % 500));
      out.push_back(std::move(f));
    } else if (name == "kv") {
      std::vector<std::uint8_t> f(12, 0);
      const std::uint32_t op = i % 3 == 0 ? 2 : i % 3 == 1 ? 1 : 7;
      util::store_be32(f.data() + 0, op);
      util::store_be32(f.data() + 4, 0xabcd0000u + static_cast<std::uint32_t>(i));
      util::store_be32(f.data() + 8, 0x11220000u + static_cast<std::uint32_t>(i));
      out.push_back(std::move(f));
    } else if (name == "sampler") {
      std::vector<std::uint8_t> f(32, 0);
      util::store_be16(f.data(), i % 5 == 4 ? 0x1111 : 0x5454);
      f[4] = static_cast<std::uint8_t>(i);
      f[9] = static_cast<std::uint8_t>(i * 3);
      out.push_back(std::move(f));
    } else {  // firewall
      const std::size_t len = i % 6 == 5 ? 8 : 64;
      std::vector<std::uint8_t> f(len, 0);
      if (len >= 40) {
        const std::uint8_t protos[] = {6, 17, 1};
        f[23] = protos[i % 3];
        const std::uint16_t ports[] = {80, 443, 22, 5050, 5200};
        util::store_be16(f.data() + 36, ports[i % 5]);
      }
      out.push_back(std::move(f));
    }
  }
  return out;
}

// ----------------------------------------------------------- one leg

struct LegOut {
  bool ok = false;
  std::string error;
  std::vector<char> consumed;
  std::vector<std::vector<std::pair<int, std::vector<std::uint8_t>>>> sends;
  std::vector<std::uint8_t> state;
  double cycles_per_msg = 0.0;
};

LegOut run_leg(const ashc::RuleSet& rs, bool use_rules,
               const std::vector<std::vector<std::uint8_t>>& frames) {
  Simulator sim;
  sim::Node& n = sim.add_node("n");
  core::AshSystem ash(n);

  LegOut out;
  out.consumed.assign(frames.size(), 0);
  out.sends.resize(frames.size());

  std::uint32_t state_addr = 0, frame_addr = 0;
  int id = -1;
  n.kernel().spawn("owner", [&](Process& self) -> Task {
    state_addr = self.segment().base + 0x1000;
    frame_addr = self.segment().base + 0x8000;
    if (use_rules) {
      id = ash.download_rules(self, rs, state_addr, {}, &out.error);
    } else {
      id = ash.download(self, hand_twin(rs.name), {}, &out.error);
      if (id >= 0) {
        const auto image = ashc::init_state(rs);
        std::memcpy(n.mem(state_addr, rs.limits.state_bytes), image.data(),
                    image.size());
      }
    }
    out.ok = id >= 0;
    co_await self.sleep_for(us(1e6));
  });
  for (std::size_t i = 0; i < frames.size(); ++i) {
    sim.queue().schedule_at(us(100.0 + 20.0 * static_cast<double>(i)),
                            [&, i] {
      if (id < 0) return;
      const auto& f = frames[i];
      std::memcpy(n.mem(frame_addr, static_cast<std::uint32_t>(f.size())),
                  f.data(), f.size());
      core::MsgContext m;
      m.addr = frame_addr;
      m.len = static_cast<std::uint32_t>(f.size());
      m.channel = 4;
      m.user_arg = state_addr;
      out.consumed[i] =
          ash.invoke(id, m,
                     [&out, i](int ch, std::span<const std::uint8_t> bs) {
                       out.sends[i].emplace_back(
                           ch,
                           std::vector<std::uint8_t>(bs.begin(), bs.end()));
                       return true;
                     },
                     0)
              ? 1
              : 0;
    });
  }
  sim.run(us(1e9));
  if (id >= 0) {
    const std::uint8_t* p = n.mem(state_addr, rs.limits.state_bytes);
    out.state.assign(p, p + rs.limits.state_bytes);
    out.cycles_per_msg = static_cast<double>(ash.stats(id).cycles) /
                         static_cast<double>(frames.size());
  }
  return out;
}

struct ScenarioResult {
  double rules_cpm = 0.0;
  double hand_cpm = 0.0;
  double ratio = 0.0;  // hand/rules = rules throughput vs hand (1.0 = parity)
  bool identical = false;
};

ScenarioResult run_scenario(const std::string& name, std::size_t msgs) {
  const ashc::RuleSet rs = ashc::scenario(name);
  const auto frames = workload(name, msgs);
  const LegOut rules = run_leg(rs, true, frames);
  const LegOut hand = run_leg(rs, false, frames);
  ScenarioResult r;
  if (!rules.ok || !hand.ok) {
    std::fprintf(stderr, "bench_rules: %s download failed: %s%s\n",
                 name.c_str(), rules.error.c_str(), hand.error.c_str());
    return r;
  }
  r.identical = rules.consumed == hand.consumed &&
                rules.sends == hand.sends && rules.state == hand.state;
  r.rules_cpm = rules.cycles_per_msg;
  r.hand_cpm = hand.cycles_per_msg;
  r.ratio = r.rules_cpm > 0 ? r.hand_cpm / r.rules_cpm : 0.0;
  return r;
}

}  // namespace
}  // namespace ash::bench

int main(int argc, char** argv) {
  using namespace ash::bench;
  bool smoke = false, json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  const std::size_t msgs = smoke ? 200 : 400;

  std::map<std::string, ScenarioResult> results;
  bool all_identical = true, gate_ok = true;
  for (const std::string& name : ash::ashc::scenario_names()) {
    const ScenarioResult r = run_scenario(name, msgs);
    results[name] = r;
    all_identical = all_identical && r.identical;
    gate_ok = gate_ok && r.ratio >= 0.8;
  }

  if (smoke) {
    for (const auto& [name, r] : results) {
      std::printf("bench_rules --smoke: %-9s rules=%.1f hand=%.1f cyc/msg "
                  "(%.0f%% of hand throughput)%s\n",
                  name.c_str(), r.rules_cpm, r.hand_cpm, 100.0 * r.ratio,
                  r.identical ? "" : "  OUTPUT MISMATCH");
    }
    if (!all_identical) {
      std::printf("FAIL: compiled rules and hand-written twin diverged\n");
      return 1;
    }
    if (!gate_ok) {
      std::printf("FAIL: a scenario fell below 80%% of hand-written "
                  "throughput\n");
      return 1;
    }
    std::printf("PASS\n");
    return 0;
  }

  if (json) {
    std::printf("{\n  \"bench\": \"rules\",\n  \"unit\": \"cycles/msg\",\n"
                "  \"messages\": %zu,\n  \"scenarios\": {\n",
                msgs);
    bool first = true;
    for (const auto& [name, r] : results) {
      std::printf("%s    \"%s\": {\"rules\": %.1f, \"hand\": %.1f, "
                  "\"throughput_vs_hand\": %.3f, \"identical\": %s}",
                  first ? "" : ",\n", name.c_str(), r.rules_cpm, r.hand_cpm,
                  r.ratio, r.identical ? "true" : "false");
      first = false;
    }
    std::printf("\n  }\n}\n");
    return all_identical && gate_ok ? 0 : 1;
  }

  std::vector<Row> rows;
  for (const auto& [name, r] : results) {
    rows.push_back({name + " (compiled rules)", r.rules_cpm, -1,
                    "cyc/msg"});
    rows.push_back({name + " (hand-written ASH)", r.hand_cpm, -1,
                    "cyc/msg"});
    rows.push_back({name + " throughput vs hand", r.ratio, -1,
                    std::string("x") +
                        (r.identical ? "" : "  OUTPUT MISMATCH")});
  }
  print_table("rules", "declarative rules vs hand-written ASHs", rows);
  std::printf("\ngate: every scenario >= 0.80x hand throughput, outputs "
              "byte-identical: %s\n",
              all_identical && gate_ok ? "OK" : "FAILED");
  return all_identical && gate_ok ? 0 : 1;
}
